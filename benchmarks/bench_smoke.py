"""Tier-1 throughput smoke check (~2 seconds).

A miniature version of ``bench_emulator_throughput`` that runs with the
regular test suite: replays one app through both engines and asserts
the compiled fast path is comfortably faster than the interpreter and
still bit-identical on aggregate stats. Catches perf regressions (a
fast path slower than 2x means someone broke the compilation) without
the full benchmark's runtime.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.apps import l2l3_acl
from repro.core import Deployment
from repro.nic.targets import BLUEFIELD2
from repro.telemetry import Telemetry
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator

pytestmark = pytest.mark.tier1

N_PACKETS = 4000


def _packets():
    generator = TrafficGenerator(1)
    flows = synth_flows(64) + synth_flows(16, dport=6666)
    return list(generator.stream(flows, N_PACKETS, locality="zipf"))


def test_fastpath_throughput_smoke():
    deployment = Deployment(l2l3_acl.build_program(), BLUEFIELD2)
    l2l3_acl.install_base_entries(deployment.control_plane)
    emulator = deployment.emulator
    # Processing mutates packets (route rewrites), so each engine gets
    # its own same-seed stream, pre-built outside the timed region.
    interp_packets = _packets()
    fast_packets = _packets()
    emulator.run(_packets()[:200])  # warm-up
    emulator.fastpath  # compile outside the timed region

    start = time.perf_counter()
    interp = emulator.run(iter(interp_packets))
    interp_s = time.perf_counter() - start

    start = time.perf_counter()
    fast = emulator.replay(iter(fast_packets))
    fast_s = time.perf_counter() - start

    # Same traffic, same state machine: aggregates must agree exactly.
    assert fast.packets == interp.packets
    assert fast.dropped == interp.dropped
    assert fast.total_latency_ns == interp.total_latency_ns
    assert fast._busy_ns == interp._busy_ns

    # Loose margin vs the benchmark's 5x headline to avoid flaking on
    # loaded CI machines.
    speedup = interp_s / fast_s
    assert speedup >= 2.0, (
        f"fast path only {speedup:.2f}x the interpreter "
        f"({N_PACKETS / fast_s:,.0f} vs {N_PACKETS / interp_s:,.0f} pps)"
    )


def test_disabled_telemetry_overhead_smoke():
    """Telemetry wired but off must cost within 3% of no telemetry.

    A Telemetry hub without tracing leaves ``emulator.tracer`` None, so
    the fast path's replay loop pays exactly the branch it already paid
    — this pins the subsystem's headline overhead claim. Timings are
    min-of-5, interleaved, to shrug off CI scheduler noise.
    """

    def build(telemetry):
        deployment = Deployment(
            l2l3_acl.build_program(), BLUEFIELD2, telemetry=telemetry
        )
        l2l3_acl.install_base_entries(deployment.control_plane)
        return deployment

    plain = build(None)
    telemetered = build(Telemetry())  # metrics + events, tracing off
    assert telemetered.tracer is None
    for deployment in (plain, telemetered):
        deployment.emulator.replay(_packets()[:200])  # warm + compile

    best = {"plain": float("inf"), "telemetered": float("inf")}
    for _ in range(5):
        for name, deployment in (
            ("plain", plain),
            ("telemetered", telemetered),
        ):
            # Fresh same-seed stream each round: replay mutates packets.
            packets = _packets()
            start = time.perf_counter()
            deployment.emulator.replay(iter(packets))
            best[name] = min(
                best[name], time.perf_counter() - start
            )

    ratio = best["telemetered"] / best["plain"]
    assert ratio <= 1.03, (
        f"disabled telemetry costs {100 * (ratio - 1):.1f}% "
        f"({best['telemetered']:.4f}s vs {best['plain']:.4f}s)"
    )


def test_live_telemetry_overhead_smoke():
    """Live telemetry at the default 1s interval must cost within 5%.

    The live plane's steady-state cost is one wall-clock check per
    replay batch in each worker plus an aggregator thread that mostly
    sleeps: at a 1s snapshot interval a ~1s replay sends roughly one
    snapshot per shard. Same min-of-5 interleaved discipline as the
    disabled-telemetry gate above; the bound is looser (5%) because the
    sharded path adds process scheduling noise the single-core gate
    doesn't see.
    """
    from repro.core.sharded import ShardedDeployment
    from repro.telemetry.live import LiveOptions

    def build(live):
        deployment = ShardedDeployment(
            l2l3_acl.build_program(),
            BLUEFIELD2,
            n_workers=2,
            live=live,
        )
        l2l3_acl.install_base_entries(deployment.control_plane)
        return deployment

    plain = build(None)
    live = build(LiveOptions(interval_s=1.0))
    try:
        assert live.live is not None and plain.live is None
        for deployment in (plain, live):
            deployment.replay(_packets()[:200])  # warm + compile

        best = {"plain": float("inf"), "live": float("inf")}
        for _ in range(5):
            for name, deployment in (("plain", plain), ("live", live)):
                packets = _packets()
                start = time.perf_counter()
                deployment.replay(iter(packets))
                best[name] = min(
                    best[name], time.perf_counter() - start
                )
    finally:
        plain.close()
        live.close()

    ratio = best["live"] / best["plain"]
    assert ratio <= 1.05, (
        f"live telemetry costs {100 * (ratio - 1):.1f}% "
        f"({best['live']:.4f}s vs {best['plain']:.4f}s)"
    )


GATE_KEYS = {"gated", "reason", "threshold", "measured"}


def _gate_blocks(node, path=""):
    """Yield every dict carrying a ``gated`` key, with its JSON path."""
    if isinstance(node, dict):
        if "gated" in node:
            yield path or "$", node
        for key, value in node.items():
            yield from _gate_blocks(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from _gate_blocks(value, f"{path}[{i}]")


def test_bench_gate_shape():
    """Every gate in every committed BENCH_*.json has the one shape.

    The loud-skip contract (``figutil.make_gate``) only works if
    dashboards can rely on the same four keys everywhere: ``gated``,
    ``reason`` (non-null exactly when skipped), ``threshold``,
    ``measured``. A writer drifting back to ad-hoc keys fails here.
    """
    repo_root = Path(__file__).parent.parent
    bench_files = sorted(repo_root.glob("BENCH_*.json"))
    assert bench_files, "no BENCH_*.json at the repo root"
    gates_seen = 0
    for bench in bench_files:
        payload = json.loads(bench.read_text())
        for path, gate in _gate_blocks(payload):
            gates_seen += 1
            assert set(gate) == GATE_KEYS, (
                f"{bench.name}:{path} gate keys {sorted(gate)} != "
                f"{sorted(GATE_KEYS)}"
            )
            assert isinstance(gate["gated"], bool), f"{bench.name}:{path}"
            if gate["gated"]:
                assert gate["reason"] is None, (
                    f"{bench.name}:{path}: armed gate carries a reason"
                )
            else:
                assert isinstance(gate["reason"], str) and gate["reason"], (
                    f"{bench.name}:{path}: skipped gate must say why"
                )
    # The sharded + columnar benches commit gates today; if they all
    # vanish this test is vacuously green, which would hide a writer
    # silently dropping its gate.
    assert gates_seen >= 2, "expected committed BENCH gates to exist"
