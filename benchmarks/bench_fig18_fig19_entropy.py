"""Figures 18 and 19 (Appendix A.3): traffic distributions and ESearch.

Figure 18 visualises pipelet traffic distributions at the 10th/50th/90th
entropy percentiles of 2000 random profiles (we synthesize a smaller
pool; the percentile structure is identical). Figure 19 shows that
ESearch's throughput improvement is similar across those entropy levels
(paper: 1.32x / 1.37x / 1.43x average).
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.core import CostModel, partition
from repro.core.costmodel import CostModel as _CostModel
from repro.core.hotspots import traffic_entropy
from repro.core.pipelets import pipelet_probability
from repro.core.search import SearchOptions, optimize
from repro.nic.targets import BLUEFIELD2
from repro.synthesis import (
    profiles_by_entropy,
    synthesize_corpus,
    synthesize_profiles,
)

PERCENTILES = (10.0, 50.0, 90.0)
N_PROFILES = 300
N_PROGRAMS = 6


def _distribution_rows(program, model, profiles):
    pipelets = partition(program)
    rows = []
    for percentile, entropy, profile in profiles_by_entropy(
        program, profiles, model, percentiles=PERCENTILES
    ):
        reach = model.reach_probs(program, profile)
        shares = [
            pipelet_probability(program, p, reach) for p in pipelets
        ]
        total = sum(shares) or 1.0
        shares = [s / total for s in shares]
        rows.append((percentile, entropy, shares))
    return pipelets, rows


def test_fig18_traffic_distributions(benchmark):
    def run():
        model = CostModel.for_target(BLUEFIELD2)
        program = synthesize_corpus(
            1, n_pipelets=12, pipelet_len_min=2, pipelet_len_max=2,
            base_seed=91,
        )[0]
        profiles = synthesize_profiles(program, N_PROFILES, base_seed=7)
        return _distribution_rows(program, model, profiles)

    pipelets, rows = run_once(benchmark, run)
    lines = []
    for percentile, entropy, shares in rows:
        lines.append(
            f"{percentile:.0f}th entropy profile "
            f"(H={entropy:.2f} bits):"
        )
        lines.extend(
            f"  pipelet {i + 1:>2}: "
            f"{'#' * max(1, int(share * 60))} {share * 100:.1f}%"
            for i, share in enumerate(shares)
        )
    emit("fig18_entropy_distributions", lines)

    entropies = [entropy for _pct, entropy, _s in rows]
    # Percentile selection is ordered by construction.
    assert entropies == sorted(entropies)
    # Low entropy: traffic concentrated (max share dominates); high
    # entropy: spread more evenly.
    low_max = max(rows[0][2])
    high_max = max(rows[2][2])
    assert low_max > high_max
    # The first pipelet always carries 100% of traffic (paper's remark
    # that a fully even distribution is impossible).
    for _pct, _entropy, shares in rows:
        assert shares[0] == pytest.approx(
            max(shares), rel=1e-6
        ) or shares[0] > 0.9 * max(shares)


def test_fig19_esearch_across_entropies(benchmark):
    def run():
        model = CostModel.for_target(BLUEFIELD2)
        programs = synthesize_corpus(
            N_PROGRAMS, n_pipelets=12, pipelet_len_min=2,
            pipelet_len_max=2, base_seed=91,
        )
        improvements: dict[float, list[float]] = {
            p: [] for p in PERCENTILES
        }
        for index, program in enumerate(programs):
            profiles = synthesize_profiles(
                program,
                120,
                base_seed=3000 + 100 * index,
                max_update_rate=0.1,
            )
            for percentile, _entropy, profile in profiles_by_entropy(
                program, profiles, model, percentiles=PERCENTILES
            ):
                baseline = model.expected_latency(program, profile)
                plan = optimize(
                    program, profile, model,
                    options=SearchOptions(k=1.0),
                )
                optimized = baseline - plan.total_gain_ns
                if optimized > 0:
                    improvements[percentile].append(
                        baseline / optimized
                    )
        return improvements

    improvements = run_once(benchmark, run)
    rows = [
        (
            f"{pct:.0f}th",
            min(vals),
            sum(vals) / len(vals),
            max(vals),
        )
        for pct, vals in improvements.items()
    ]
    emit(
        "fig19_esearch_entropy",
        fmt_table(
            ["entropy", "min_improvement_x", "mean_improvement_x",
             "max_improvement_x"],
            rows,
        ),
    )
    means = {
        pct: sum(vals) / len(vals)
        for pct, vals in improvements.items()
    }
    # ESearch improves throughput at every entropy level...
    for mean in means.values():
        assert mean > 1.05
    # ...and by a similar factor (the paper's point: 1.32-1.43x).
    assert max(means.values()) / min(means.values()) < 1.5
