"""Figure 17 (Appendix A.2): table copying vs packet migration.

A program interleaves ASIC-supported and CPU-only tables; the naive
partition migrates packets at every boundary. Copying the sandwiched
ASIC tables onto the CPU removes migrations for software-bound traffic.
(a) sweeps the migration latency; (b) sweeps the share of traffic that
needs software processing (the remainder takes an ASIC-only path).
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.apps import migration
from repro.core import Deployment
from repro.nic.packet import make_packet
from repro.nic.targets import EMULATED_NIC

N_PAIRS = 5
COPY_COUNTS = list(range(0, 5))
MIGRATION_LATENCIES = [200.0, 500.0, 800.0]
SOFTWARE_RATIOS = [0.3, 0.5, 0.7]
N_PACKETS = 60


def _mean_latency(program, target):
    deployment = Deployment(program, target, instrument=False)
    stats = deployment.run(
        [make_packet() for _ in range(N_PACKETS)]
    )
    return stats.mean_latency_ns


def _sweep_migration_latency():
    rows = []
    for n_copies in COPY_COUNTS:
        hetero = migration.partitioned_program(N_PAIRS, n_copies)
        row = [n_copies]
        for migration_ns in MIGRATION_LATENCIES:
            target = EMULATED_NIC.replace(migration_ns=migration_ns)
            row.append(_mean_latency(hetero, target))
        rows.append(row)
    return rows


def _sweep_software_ratio():
    asic_only = migration.asic_only_program(N_PAIRS)
    asic_latency = _mean_latency(asic_only, EMULATED_NIC)
    rows = []
    for n_copies in COPY_COUNTS:
        hetero = migration.partitioned_program(N_PAIRS, n_copies)
        hetero_latency = _mean_latency(hetero, EMULATED_NIC)
        row = [n_copies]
        for ratio in SOFTWARE_RATIOS:
            row.append(
                ratio * hetero_latency + (1 - ratio) * asic_latency
            )
        rows.append(row)
    return rows


def test_fig17a_copying_vs_migration_latency(benchmark):
    rows = run_once(benchmark, _sweep_migration_latency)
    emit(
        "fig17a_migration_latency",
        fmt_table(
            ["copies"]
            + [f"mig={int(m)}ns" for m in MIGRATION_LATENCIES],
            rows,
        ),
    )
    by_copies = {row[0]: row[1:] for row in rows}
    # Copying tables reduces latency monotonically for every
    # migration-latency setting.
    for column in range(len(MIGRATION_LATENCIES)):
        series = [by_copies[c][column] for c in COPY_COUNTS]
        assert series == sorted(series, reverse=True)
    # The benefit of copying grows with the migration latency.
    saving_small = by_copies[0][0] - by_copies[4][0]
    saving_large = by_copies[0][2] - by_copies[4][2]
    assert saving_large > saving_small


def test_fig17b_copying_vs_software_ratio(benchmark):
    rows = run_once(benchmark, _sweep_software_ratio)
    emit(
        "fig17b_software_ratio",
        fmt_table(
            ["copies"]
            + [f"{int(r * 100)}%_software" for r in SOFTWARE_RATIOS],
            rows,
        ),
    )
    by_copies = {row[0]: row[1:] for row in rows}
    # More software-bound traffic -> more benefit from copying.
    saving_30 = by_copies[0][0] - by_copies[4][0]
    saving_70 = by_copies[0][2] - by_copies[4][2]
    assert saving_70 > saving_30
    # Copying always helps the mixed workload.
    for column in range(len(SOFTWARE_RATIOS)):
        series = [by_copies[c][column] for c in COPY_COUNTS]
        assert series == sorted(series, reverse=True)
