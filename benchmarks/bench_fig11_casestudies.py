"""Figure 11: the three runtime-adaptation case studies (§5.3).

(a) service load balancing on BlueField2 — insertion burst then a
    packet-dropping-rate change; baseline = cache-everything, static.
(b) DASH-style packet routing on Agilio CX — small static tables and
    biased ACL drop rates, then long-lived flows with even drop rates;
    baseline = unoptimized program.
(c) network-function composition on the BMv2-style emulated NIC —
    dynamic top-30% pipelet selection under shifting traffic; reported
    as emulated latency like the paper.
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.apps import dash_routing, load_balancer, nf_composition
from repro.core import (
    CostModel,
    PipeleonController,
    ResourceBudget,
    optimize,
    uniform_profile,
)
from repro.core.controller import ControllerOptions
from repro.core.search import SearchOptions
from repro.nic.targets import AGILIO_CX, BLUEFIELD2, EMULATED_NIC
from repro.traffic import Scenario, TrafficGenerator, synth_flows


def _timeline_rows(pipeleon, baseline):
    return [
        (p.time_s, p.phase, b.throughput_gbps, p.throughput_gbps,
         "*" if p.reoptimized else "")
        for p, b in zip(pipeleon, baseline)
    ]


# ---------------------------------------------------------------------------
# (a) Load balancer on BlueField2
# ---------------------------------------------------------------------------


def _lb_scenario(generator):
    # Enough concurrent flows that every whole-cache invalidation
    # forces a full re-warm (the paper's 20 Gbps collapse).
    flows = synth_flows(300)
    deny_tos = [f.with_fields(**{"ipv4.tos": 1}) for f in flows[:40]]
    deny_port = synth_flows(16, dport=6666)
    burst_state = {"port": 40000}

    def steady(n):
        return generator.mixed_stream(
            [(flows, 0.85), (deny_tos, 0.15)], n
        )

    def insertion_burst(deployment, time_s):
        load_balancer.insertion_burst(
            deployment.control_plane, burst_state["port"], 40
        )
        burst_state["port"] += 40

    def acl2_heavy(n):
        return generator.mixed_stream(
            [(flows, 0.3), (deny_port, 0.7)], n
        )

    return (
        Scenario("fig11a")
        .add_phase("steady", 16, steady)
        .add_phase("insertion-burst", 16, steady, insertion_burst)
        .add_phase("drop-rate-change", 16, acl2_heavy)
    )


def _run_lb(enabled: bool):
    program = load_balancer.build_program()
    search = SearchOptions(k=0.5, max_pipelet_len=12)
    baseline_plan = None
    if not enabled:
        # The paper's baseline "caches the whole program without
        # runtime adaptation".
        model = CostModel.for_target(BLUEFIELD2)
        baseline_plan = optimize(
            program,
            uniform_profile(program),
            model,
            options=SearchOptions(
                k=1.0,
                enable_reorder=False,
                enable_merge=False,
                enable_groups=False,
                max_pipelet_len=12,
            ),
        )
    controller = PipeleonController(
        program,
        BLUEFIELD2,
        budget=ResourceBudget(memory_bytes=4e6, update_pps=2e4),
        search=search,
        options=ControllerOptions(profile_period_s=5.0),
        enabled=enabled,
        baseline_plan=baseline_plan,
    )
    load_balancer.install_base_entries(controller.control_plane)
    controller.clock.advance(controller.options.update_window_s)
    return controller.run_scenario(
        _lb_scenario(TrafficGenerator(seed=7)), packets_per_tick=200
    )


def test_fig11a_load_balancer_bluefield2(benchmark):
    pipeleon, baseline = run_once(
        benchmark, lambda: (_run_lb(True), _run_lb(False))
    )
    emit(
        "fig11a_load_balancer",
        fmt_table(
            ["t_s", "phase", "baseline_gbps", "pipeleon_gbps", "reopt"],
            _timeline_rows(pipeleon, baseline),
        ),
    )
    burst = [p for p in pipeleon if p.phase == "insertion-burst"]
    burst_base = [p for p in baseline if p.phase == "insertion-burst"]
    # The insertion burst degrades the static whole-program cache; the
    # adaptive pipeline recovers within the phase.
    assert max(p.throughput_gbps for p in burst[8:]) > 1.3 * min(
        p.throughput_gbps for p in burst_base
    )
    # Over the whole run Pipeleon clearly beats the static baseline.
    mean_p = sum(p.throughput_gbps for p in pipeleon) / len(pipeleon)
    mean_b = sum(p.throughput_gbps for p in baseline) / len(baseline)
    assert mean_p > mean_b
    # Steady state reaches line rate.
    steady = [p for p in pipeleon if p.phase == "steady"]
    assert max(p.throughput_gbps for p in steady) == pytest.approx(
        100.0, rel=0.02
    )


# ---------------------------------------------------------------------------
# (b) DASH-style routing on Agilio CX
# ---------------------------------------------------------------------------


def _dash_scenario(generator):
    flows = synth_flows(64)
    deny_heavy = synth_flows(16, dport=6666)
    few_flows = synth_flows(6)

    def biased(n):
        return generator.mixed_stream(
            [(flows, 0.5), (deny_heavy, 0.5)], n
        )

    def long_lived(n):
        return generator.stream(few_flows, n, locality="zipf")

    return (
        Scenario("fig11b")
        .add_phase("biased-acl-drops", 40, biased)
        .add_phase("long-lived-flows", 40, long_lived)
    )


def _run_dash(enabled: bool):
    program = dash_routing.build_program()
    controller = PipeleonController(
        program,
        AGILIO_CX,
        budget=ResourceBudget(memory_bytes=8e6, update_pps=2e4),
        search=SearchOptions(k=0.6, max_pipelet_len=10),
        options=ControllerOptions(profile_period_s=10.0),
        enabled=enabled,
        native_cache=False,  # conntrack is cache-incompatible (§5.3.2)
    )
    dash_routing.install_base_entries(controller.control_plane)
    controller.clock.advance(controller.options.update_window_s)
    return controller.run_scenario(
        _dash_scenario(TrafficGenerator(seed=11)),
        packets_per_tick=150,
    )


def test_fig11b_dash_routing_agilio(benchmark):
    pipeleon, baseline = run_once(
        benchmark, lambda: (_run_dash(True), _run_dash(False))
    )
    emit(
        "fig11b_dash_routing",
        fmt_table(
            ["t_s", "phase", "baseline_gbps", "pipeleon_gbps", "reopt"],
            _timeline_rows(pipeleon, baseline),
        ),
    )
    # Phase 1 improvement (paper: +43.5% from merge + ACL reorder).
    phase1_p = [
        p.throughput_gbps
        for p in pipeleon
        if p.phase == "biased-acl-drops" and p.time_s >= 15
    ]
    phase1_b = [
        p.throughput_gbps
        for p in baseline
        if p.phase == "biased-acl-drops" and p.time_s >= 15
    ]
    improvement1 = sum(phase1_p) / len(phase1_p) / (
        sum(phase1_b) / len(phase1_b)
    )
    assert improvement1 > 1.25
    # Phase 2 improvement (paper: +35.2% from caching the pipeline).
    phase2_p = [
        p.throughput_gbps
        for p in pipeleon
        if p.phase == "long-lived-flows" and p.time_s >= 55
    ]
    phase2_b = [
        p.throughput_gbps
        for p in baseline
        if p.phase == "long-lived-flows" and p.time_s >= 55
    ]
    improvement2 = sum(phase2_p) / len(phase2_p) / (
        sum(phase2_b) / len(phase2_b)
    )
    assert improvement2 > 1.2


# ---------------------------------------------------------------------------
# (c) NF composition on the emulated NIC
# ---------------------------------------------------------------------------


def _nf_scenario(generator):
    lb_flows = [
        f.with_fields(**{"ipv4.tos": nf_composition.TOS_LB})
        for f in synth_flows(24)
    ]
    routing_flows = [
        f.with_fields(**{"ipv4.tos": nf_composition.TOS_ROUTING})
        for f in synth_flows(24)
    ]
    l2_flows = [
        f.with_fields(**{"ipv4.tos": 0}) for f in synth_flows(24)
    ]

    def mostly(primary):
        groups = {
            "nf1": [(lb_flows, 0.8), (routing_flows, 0.1),
                    (l2_flows, 0.1)],
            "nf2": [(lb_flows, 0.1), (routing_flows, 0.8),
                    (l2_flows, 0.1)],
            "nf3": [(lb_flows, 0.1), (routing_flows, 0.1),
                    (l2_flows, 0.8)],
        }[primary]
        return lambda n: generator.mixed_stream(groups, n)

    return (
        Scenario("fig11c")
        .add_phase("NF1-heavy", 34, mostly("nf1"))
        .add_phase("NF2-heavy", 34, mostly("nf2"))
        .add_phase("NF3-heavy", 34, mostly("nf3"))
    )


def _run_nf(enabled: bool):
    program = nf_composition.build_program()
    controller = PipeleonController(
        program,
        EMULATED_NIC,
        budget=ResourceBudget(memory_bytes=8e6, update_pps=2e4),
        search=SearchOptions(k=0.3, max_pipelet_len=3),  # top-30%
        options=ControllerOptions(profile_period_s=8.0),
        enabled=enabled,
    )
    nf_composition.install_base_entries(controller.control_plane)
    controller.clock.advance(controller.options.update_window_s)
    return controller.run_scenario(
        _nf_scenario(TrafficGenerator(seed=13)),
        packets_per_tick=150,
    )


def test_fig11c_nf_composition_emulator(benchmark):
    pipeleon, baseline = run_once(
        benchmark, lambda: (_run_nf(True), _run_nf(False))
    )
    rows = [
        (p.time_s, p.phase, b.mean_latency_ns, p.mean_latency_ns,
         "*" if p.reoptimized else "")
        for p, b in zip(pipeleon, baseline)
    ]
    emit(
        "fig11c_nf_composition",
        fmt_table(
            ["t_s", "phase", "baseline_lat_ns", "pipeleon_lat_ns",
             "reopt"],
            rows,
        ),
    )
    mean_p = sum(p.mean_latency_ns for p in pipeleon) / len(pipeleon)
    mean_b = sum(p.mean_latency_ns for p in baseline) / len(baseline)
    reduction = 1.0 - mean_p / mean_b
    print(f"average latency reduction: {reduction * 100:.1f}% "
          f"(paper: 49%)")
    # The paper reports a 49% average latency reduction; we accept a
    # broad band around the same headline.
    assert reduction > 0.25
    # Pipeleon adapts at least once per traffic phase.
    reopts = sum(1 for p in pipeleon if p.reoptimized)
    assert reopts >= 3
