"""Figure 9: the three optimizations on BlueField2 and Agilio CX.

(a)/(b) table reordering — ACL position sweep at 25/50/75% drop rates;
(c) table caching — strategies from four per-table caches to one
    whole-pipelet cache under independently-varying match fields;
(d) table merging — merging 2..4 small static exact tables.
"""

from __future__ import annotations

import random

import pytest

from figutil import emit, fmt_table, run_once

from repro.apps import microbench
from repro.core import Deployment
from repro.core.plan import Candidate, OptimizationPlan, Segment
from repro.core.pipelets import partition
from repro.nic.packet import make_packet
from repro.nic.targets import AGILIO_CX, BLUEFIELD2
from repro.traffic import TrafficGenerator, drop_rate_stream, synth_flows

ACL_POSITIONS = [21, 18, 15, 12, 9, 6, 3, 0]
DROP_RATES = [0.25, 0.50, 0.75]
N_PACKETS = 600


def _measure_reorder(target, position, drop_rate, seed=3):
    program = microbench.reorder_benchmark_program(22, position)
    deployment = Deployment(
        program, target, instrument=False, native_cache=False
    )
    microbench.install_acl_deny_entry(deployment.control_plane)
    generator = TrafficGenerator(seed=seed)
    packets = drop_rate_stream(generator, N_PACKETS, drop_rate)
    stats = deployment.run(packets)
    return stats.throughput_gbps(target)


def _reorder_rows(target):
    rows = []
    for position in ACL_POSITIONS:
        row = [position]
        for drop_rate in DROP_RATES:
            row.append(_measure_reorder(target, position, drop_rate))
        rows.append(row)
    return rows


@pytest.mark.parametrize(
    "target,figure",
    [(BLUEFIELD2, "fig09a"), (AGILIO_CX, "fig09b")],
    ids=["bluefield2", "agilio_cx"],
)
def test_fig09ab_table_reordering(benchmark, target, figure):
    rows = run_once(benchmark, lambda: _reorder_rows(target))
    emit(
        f"{figure}_reordering_{target.name}",
        fmt_table(
            ["acl_position", "drop25_gbps", "drop50_gbps", "drop75_gbps"],
            rows,
        ),
    )
    by_position = {row[0]: row[1:] for row in rows}
    # Promoting the ACL earlier never hurts and helps monotonically.
    for drop_index in range(3):
        back = by_position[21][drop_index]
        front = by_position[0][drop_index]
        assert front >= back
    # Higher drop rates benefit more from promotion (paper's headline).
    gain25 = by_position[0][0] / by_position[21][0]
    gain75 = by_position[0][2] / by_position[21][2]
    assert gain75 >= gain25
    # BlueField2 reaches line rate with the ACL at the front at 75%.
    if target is BLUEFIELD2:
        assert by_position[0][2] == pytest.approx(100.0, rel=0.02)


# ---------------------------------------------------------------------------
# (c) table caching
# ---------------------------------------------------------------------------

CACHE_OPTIONS = {
    "no_cache": None,
    "[1][2][3][4]": [("cache", 1)] * 4,
    "[1,2][3][4]": [("cache", 2), ("cache", 1), ("cache", 1)],
    "[1,2,3][4]": [("cache", 3), ("cache", 1)],
    "[1,2,3,4]": [("cache", 4)],
}


def _cache_plan(program, labels):
    """Apply the same caching labels to every 4-table replica."""
    candidates = []
    for pipelet in partition(program, max_len=4):
        segments = []
        position = 0
        for op, length in labels:
            segments.append(
                Segment(
                    op,
                    tuple(
                        pipelet.table_names[position:position + length]
                    ),
                )
            )
            position += length
        candidates.append(
            Candidate(
                pipelet_id=pipelet.pipelet_id,
                run=pipelet.table_names,
                order=pipelet.table_names,
                segments=tuple(segments),
                gain_ns=0.0,
                memory_bytes=0.0,
                update_pps=0.0,
            )
        )
    return OptimizationPlan(candidates=candidates)


def _independent_field_packets(n_packets, values_per_field=10, seed=5):
    """Fields vary independently: per-field caches see ~10 distinct
    values while a whole-pipelet cache needs the cross product (the
    paper's 54-entries-vs-36k contrast)."""
    rng = random.Random(seed)
    packets = []
    for _ in range(n_packets):
        packets.append(
            make_packet(
                src=rng.randrange(values_per_field),
                dst=rng.randrange(values_per_field),
                sport=rng.randrange(values_per_field),
                dport=rng.randrange(values_per_field),
            )
        )
    return packets


def _measure_caching(target):
    results = {}
    cache_sizes = {}
    for label, option in CACHE_OPTIONS.items():
        program = microbench.pipelet_benchmark_program(n_copies=4)
        plan = _cache_plan(program, option) if option else None
        deployment = Deployment(
            program,
            target,
            plan=plan,
            instrument=False,
            native_cache=False,
            cache_capacity=4096,
            cache_insertion_limit_pps=1e9,
        )
        microbench.install_ternary_mask_entries(
            deployment.control_plane, program, n_masks=2
        )
        packets = _independent_field_packets(9000)
        deployment.run(packets[:6000])  # warm the caches
        stats = deployment.run(packets[6000:])
        results[label] = stats.throughput_gbps(target)
        cache_sizes[label] = sum(
            len(c) for c in deployment.emulator.flow_caches.values()
        )
    return results, cache_sizes


@pytest.mark.parametrize(
    "target", [BLUEFIELD2, AGILIO_CX], ids=["bluefield2", "agilio_cx"]
)
def test_fig09c_table_caching(benchmark, target):
    results, cache_sizes = run_once(
        benchmark, lambda: _measure_caching(target)
    )
    emit(
        f"fig09c_caching_{target.name}",
        fmt_table(
            ["option", "throughput_gbps", "cache_entries"],
            [
                (label, results[label], cache_sizes.get(label, 0))
                for label in CACHE_OPTIONS
            ],
        ),
    )
    # Caching more tables together with fewer caches performs better...
    assert results["[1,2,3][4]"] > results["[1][2][3][4]"]
    assert results["[1][2][3][4]"] > results["no_cache"]
    # ...until the cross-product problem kills the hit rate: the single
    # whole-pipelet cache is NOT the best option under independent keys.
    assert results["[1,2,3][4]"] > results["[1,2,3,4]"]
    # Headline: the best strategy is >= 2x no-cache (paper: 2.5x).
    assert results["[1,2,3][4]"] / results["no_cache"] >= 2.0
    # Per-table caches stay tiny; the joint cache needs the product.
    assert cache_sizes["[1][2][3][4]"] < cache_sizes["[1,2,3,4]"]


# ---------------------------------------------------------------------------
# (d) table merging
# ---------------------------------------------------------------------------

MERGE_OPTIONS = {
    "no_merge": 0,
    "[1,2]": 2,
    "[1,2,3]": 3,
    "[1,2,3,4]": 4,
}


def _merge_plan(program, n_merged):
    candidates = []
    for pipelet in partition(program, max_len=4):
        segments = [Segment("merge", pipelet.table_names[:n_merged])]
        segments += [
            Segment("none", (name,))
            for name in pipelet.table_names[n_merged:]
        ]
        candidates.append(
            Candidate(
                pipelet_id=pipelet.pipelet_id,
                run=pipelet.table_names,
                order=pipelet.table_names,
                segments=tuple(segments),
                gain_ns=0.0,
                memory_bytes=0.0,
                update_pps=0.0,
            )
        )
    return OptimizationPlan(candidates=candidates)


def _measure_merging(target):
    results = {}
    merged_entries = {}
    rng = random.Random(9)
    for label, n_merged in MERGE_OPTIONS.items():
        program = microbench.pipelet_benchmark_program(
            n_copies=5,
            match_type=__import__(
                "repro.ir.tables", fromlist=["MatchType"]
            ).MatchType.EXACT,
        )
        plan = _merge_plan(program, n_merged) if n_merged else None
        deployment = Deployment(
            program, target, plan=plan, instrument=False,
            native_cache=False,
        )
        microbench.install_small_exact_entries(
            deployment.control_plane, program, values=(1, 2, 3)
        )
        packets = [
            make_packet(
                src=rng.choice((1, 2, 3)),
                dst=rng.choice((1, 2, 3)),
                sport=rng.choice((1, 2, 3)),
                dport=rng.choice((1, 2, 3)),
            )
            for _ in range(N_PACKETS)
        ]
        stats = deployment.run(packets)
        results[label] = stats.throughput_gbps(target)
        merged_entries[label] = sum(
            len(runtime)
            for name, runtime in (
                deployment.emulator.runtime_tables.items()
            )
            if name.startswith("merged__")
        )
    return results, merged_entries


@pytest.mark.parametrize(
    "target", [BLUEFIELD2, AGILIO_CX], ids=["bluefield2", "agilio_cx"]
)
def test_fig09d_table_merging(benchmark, target):
    results, merged_entries = run_once(
        benchmark, lambda: _measure_merging(target)
    )
    emit(
        f"fig09d_merging_{target.name}",
        fmt_table(
            ["option", "throughput_gbps", "merged_entries"],
            [
                (label, results[label], merged_entries[label])
                for label in MERGE_OPTIONS
            ],
        ),
    )
    # Merging more tables gives more throughput...
    assert (
        results["[1,2,3,4]"] > results["[1,2]"] > results["no_merge"]
    )
    # ...within the paper's observed 1.2x - 2.2x range.
    ratio = results["[1,2,3,4]"] / results["no_merge"]
    assert 1.15 <= ratio <= 2.6
    # ...but the entry cross product grows steeply (19x in the paper).
    assert merged_entries["[1,2,3,4]"] > 3 * merged_entries["[1,2]"]
