"""Figure 14: top-k optimization quality vs ESearch (§5.4.3).

For the first program group, thousands of synthesized runtime profiles
are bucketed by pipelet-traffic entropy; at the 10th/50th/90th entropy
percentiles the ratio (top-k gain / ESearch gain) is computed for
k in {20..50}%. The paper: top-20% achieves >= 70% of ESearch for all
programs at low entropy; top-50% achieves >= 95% for 80% of programs.
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.core import CostModel, optimize
from repro.core.search import SearchOptions
from repro.nic.targets import BLUEFIELD2
from repro.synthesis import (
    profiles_by_entropy,
    synthesize_corpus,
    synthesize_profiles,
)

K_VALUES = [0.2, 0.3, 0.4, 0.5]
N_PROGRAMS = 8  # paper: the full first group
N_PROFILES = 120  # paper: 2000 random profiles per program
PERCENTILES = (10.0, 50.0, 90.0)


def _run():
    model = CostModel.for_target(BLUEFIELD2)
    programs = synthesize_corpus(
        N_PROGRAMS, n_pipelets=12, pipelet_len_min=2,
        pipelet_len_max=2, base_seed=91,
    )
    ratios: dict[tuple[float, float], list[float]] = {}
    for index, program in enumerate(programs):
        profiles = synthesize_profiles(
            program,
            N_PROFILES,
            base_seed=1000 * index,
            max_update_rate=0.1,
        )
        for percentile, _entropy, profile in profiles_by_entropy(
            program, profiles, model, percentiles=PERCENTILES
        ):
            esearch = optimize(
                program, profile, model,
                options=SearchOptions(k=1.0),
            )
            if esearch.total_gain_ns <= 0:
                continue
            for k in K_VALUES:
                plan = optimize(
                    program, profile, model,
                    options=SearchOptions(k=k),
                )
                ratios.setdefault((percentile, k), []).append(
                    plan.total_gain_ns / esearch.total_gain_ns
                )
    return ratios


def test_fig14_topk_effectiveness(benchmark):
    ratios = run_once(benchmark, _run)
    rows = []
    for percentile in PERCENTILES:
        for k in K_VALUES:
            values = ratios.get((percentile, k), [])
            if not values:
                continue
            rows.append(
                (
                    f"{percentile:.0f}th",
                    f"{int(k * 100)}%",
                    min(values),
                    sum(values) / len(values),
                    sum(1 for v in values if v >= 0.95)
                    / len(values),
                )
            )
    emit(
        "fig14_topk_quality",
        fmt_table(
            ["entropy", "k", "min_ratio", "mean_ratio",
             "frac_ge_0.95"],
            rows,
        ),
    )

    def mean_ratio(percentile, k):
        values = ratios[(percentile, k)]
        return sum(values) / len(values)

    # More pipelets optimized -> closer to ESearch, monotonically.
    for percentile in PERCENTILES:
        assert mean_ratio(percentile, 0.5) >= mean_ratio(
            percentile, 0.2
        ) - 1e-9
    # Low-entropy profiles (traffic concentrated on few pipelets) make
    # top-20% nearly as good as ESearch (paper: > 70% of the gain for
    # all programs; our mean lands slightly lower, see EXPERIMENTS.md).
    low = ratios[(10.0, 0.2)]
    assert sum(low) / len(low) > 0.6
    # Concentrated traffic favours top-k more than even traffic does.
    high = ratios[(90.0, 0.2)]
    assert sum(low) / len(low) >= sum(high) / len(high) - 0.05
    # At k=50%, most programs reach >= 95% of the ESearch gain.
    half = ratios[(10.0, 0.5)]
    assert sum(1 for v in half if v >= 0.95) / len(half) >= 0.6
    # Ratios are valid fractions.
    for values in ratios.values():
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)
