"""Fault-recovery overhead: kill-and-respawn vs a fault-free fleet.

Replays the same stream through two identical 2-worker fleets — one
fault-free, one with a scripted mid-replay ``kill`` of shard 0 recovered
by ``recovery="respawn"`` — and writes the comparison to
``BENCH_faults.json`` at the repo root (medians over ``REPEATS`` runs,
plus host metadata).

Reported per run:

- ``wall_s`` for both fleets and the absolute/relative recovery
  overhead — the cost of detecting the death, forking a replacement and
  replaying the shard journal, amortised over the stream;
- a correctness gate: the faulted fleet's merged stats must stay
  bit-identical to the fault-free fleet's (the respawn contract that
  ``tests/test_faults.py`` pins at unit granularity).

The kill lands at batch ``KILL_AT_BATCH`` of shard 0, far enough into
the stream that the journal replay is non-trivial but with plenty of
traffic left after recovery.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from figutil import emit, fmt_table, median
from hostinfo import host_metadata

from repro.apps import l2l3_acl
from repro.core import ShardedDeployment
from repro.nic.faults import FaultPlan, FaultSpec
from repro.nic.sharding import SupervisorOptions
from repro.nic.targets import BLUEFIELD2
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator

BENCH_JSON = Path(__file__).parent.parent / "BENCH_faults.json"

N_PACKETS = 8000
N_FLOWS = 512
REPEATS = 5
BATCH = 64
KILL_AT_BATCH = 20

SUPERVISOR = SupervisorOptions(
    recovery="respawn",
    recv_timeout_s=10.0,
    heartbeat_interval_s=0.01,
    slow_after_s=1.0,
)


def _packets(n: int = N_PACKETS):
    generator = TrafficGenerator(1)
    return list(
        generator.stream(synth_flows(N_FLOWS), n, locality="uniform")
    )


def _make_fleet(fault_plan=None) -> ShardedDeployment:
    deployment = ShardedDeployment(
        l2l3_acl.build_program(),
        BLUEFIELD2,
        n_workers=2,
        supervisor=SUPERVISOR,
        fault_plan=fault_plan,
    )
    l2l3_acl.install_base_entries(deployment.control_plane)
    return deployment


def _fingerprint(stats) -> tuple:
    return (
        stats.packets,
        stats.dropped,
        stats.total_latency_ns,
        stats.total_bytes,
        sorted(stats._latencies),
    )


def test_bench_fault_recovery():
    clean_wall, faulted_wall = [], []
    for _ in range(REPEATS):
        # Fresh fleets every repeat: a FaultSpec is one-shot per worker
        # lifetime, and the respawned worker must start cold like its
        # fault-free twin.
        clean = _make_fleet()
        faulted = _make_fleet(
            FaultPlan(
                (FaultSpec("kill", shard=0, at_batch=KILL_AT_BATCH),)
            )
        )
        try:
            packets = _packets()
            wall0 = time.perf_counter()
            reference = clean.replay(packets, batch=BATCH)
            clean_wall.append(time.perf_counter() - wall0)
            packets = _packets()
            wall0 = time.perf_counter()
            recovered = faulted.replay(packets, batch=BATCH)
            faulted_wall.append(time.perf_counter() - wall0)
            # Correctness gate: recovery is exact, not approximate.
            assert faulted.worker_respawns == [1, 0]
            assert _fingerprint(recovered) == _fingerprint(reference)
        finally:
            clean.close()
            faulted.close()

    clean_s = median(clean_wall)
    faulted_s = median(faulted_wall)
    overhead_s = faulted_s - clean_s
    payload = {
        "host": host_metadata(),
        "app": "l2l3_acl",
        "n_packets": N_PACKETS,
        "n_flows": N_FLOWS,
        "repeats": REPEATS,
        "batch": BATCH,
        "kill_at_batch": KILL_AT_BATCH,
        "clean_wall_s": round(clean_s, 4),
        "faulted_wall_s": round(faulted_s, 4),
        "recovery_overhead_s": round(overhead_s, 4),
        "recovery_overhead_pct": round(100.0 * overhead_s / clean_s, 1),
        "stats_identical": True,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    emit(
        "BENCH_faults",
        fmt_table(
            ["config", "wall_s", "overhead_s", "overhead_pct"],
            [
                ("fault-free", payload["clean_wall_s"], 0.0, 0.0),
                (
                    "kill+respawn",
                    payload["faulted_wall_s"],
                    payload["recovery_overhead_s"],
                    payload["recovery_overhead_pct"],
                ),
            ],
        ),
    )


if __name__ == "__main__":
    test_bench_fault_recovery()
