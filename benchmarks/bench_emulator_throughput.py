"""Replay throughput: interpreter vs the compiled fast path.

Replays the same pre-generated stream through ``NicEmulator.run``
(reference interpreter) and ``NicEmulator.replay`` (compiled fast path)
for each of the five example applications, and writes the packets-per-
second comparison — medians over ``REPEATS`` runs, plus host metadata
so the trajectory is comparable across PRs — to ``BENCH_emulator.json``
at the repo root (plus the usual text block under
``benchmarks/results/``).

The headline target is >=5x on ``l2l3_acl``; the differential tests
(``tests/test_nic_fastpath.py``) prove the speedup changes nothing
observable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from figutil import emit, fmt_table, median
from hostinfo import host_metadata

from repro.apps import (
    acl_chain,
    dash_routing,
    l2l3_acl,
    load_balancer,
    nf_composition,
)
from repro.core import Deployment
from repro.nic.targets import BLUEFIELD2
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator

BENCH_JSON = Path(__file__).parent.parent / "BENCH_emulator.json"

APPS = {
    "l2l3_acl": (l2l3_acl.build_program, l2l3_acl.install_base_entries),
    "acl_chain": (
        acl_chain.build_program,
        acl_chain.install_acl_entries,
    ),
    "dash_routing": (
        dash_routing.build_program,
        dash_routing.install_base_entries,
    ),
    "load_balancer": (
        load_balancer.build_program,
        load_balancer.install_base_entries,
    ),
    "nf_composition": (
        nf_composition.build_program,
        nf_composition.install_base_entries,
    ),
}

N_PACKETS = 20000
REPEATS = 3


def _packets(n: int = N_PACKETS):
    generator = TrafficGenerator(1)
    flows = synth_flows(64) + synth_flows(16, dport=6666)
    return list(generator.stream(flows, n, locality="zipf"))


def _measure(app: str) -> dict[str, float]:
    build, install = APPS[app]
    deployment = Deployment(build(), BLUEFIELD2)
    install(deployment.control_plane)
    emulator = deployment.emulator
    emulator.run(_packets(500))  # warm caches + counters
    emulator.fastpath  # compile outside the timed region

    interp_samples, fast_samples = [], []
    for _ in range(REPEATS):
        # Processing mutates packets (header rewrites), so each engine
        # gets its own same-seed stream, built outside the timed region.
        interp_packets = _packets()
        fast_packets = _packets()

        start = time.perf_counter()
        emulator.run(iter(interp_packets))
        interp_samples.append(time.perf_counter() - start)

        start = time.perf_counter()
        emulator.replay(iter(fast_packets))
        fast_samples.append(time.perf_counter() - start)

    interp_pps = N_PACKETS / median(interp_samples)
    fast_pps = N_PACKETS / median(fast_samples)
    return {
        "interpreter_pps": round(interp_pps),
        "fastpath_pps": round(fast_pps),
        "speedup": round(fast_pps / interp_pps, 2),
    }


def test_bench_emulator_throughput():
    results = {app: _measure(app) for app in APPS}
    payload = {
        "host": host_metadata(),
        "n_packets": N_PACKETS,
        "repeats": REPEATS,
        "apps": results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    rows = [
        (
            app,
            data["interpreter_pps"],
            data["fastpath_pps"],
            data["speedup"],
        )
        for app, data in results.items()
    ]
    emit(
        "BENCH_emulator",
        fmt_table(
            ["app", "interp_pps", "fastpath_pps", "speedup"], rows
        ),
    )
    # Headline acceptance target; the other apps just need to be faster.
    assert results["l2l3_acl"]["speedup"] >= 5.0
    for app, data in results.items():
        assert data["speedup"] > 1.0, app


if __name__ == "__main__":
    test_bench_emulator_throughput()
