"""Figure 2: profile-guided ACL reordering vs a static order.

The ACL-cascade program runs on the BlueField2 model. Mid-experiment the
traffic composition flips so a *different* ACL level drops most packets;
the static order stays slow while the dynamic (Pipeleon) order recovers
to line rate.
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.apps import acl_chain
from repro.core import PipeleonController, ResourceBudget
from repro.core.controller import ControllerOptions
from repro.core.search import SearchOptions
from repro.nic.packet import ipv4
from repro.nic.targets import BLUEFIELD2
from repro.traffic import Scenario, TrafficGenerator, synth_flows

PHASE_S = 36
PACKETS_PER_TICK = 150


def _scenario(generator: TrafficGenerator) -> Scenario:
    clean = synth_flows(48)
    # Phase 1: most drops happen at the LAST ACL level (acl_vm).
    vm_denied = [
        f.with_fields(**{"ipv4.dst": ipv4(192, 168, 1, 1)})
        for f in synth_flows(16)
    ]
    vm_denied = [
        flow.with_fields(**{"ipv4.dst": acl_chain.ACL_LEVELS[3][2]})
        for flow in vm_denied
    ]
    # Phase 2: drops move to the FIRST level's field via heavy ToS hits.
    cloud_denied = [
        f.with_fields(**{"ipv4.tos": acl_chain.ACL_LEVELS[0][2]})
        for f in synth_flows(16)
    ]

    def vm_heavy(n):
        return generator.mixed_stream(
            [(clean, 0.3), (vm_denied, 0.7)], n
        )

    def cloud_heavy(n):
        return generator.mixed_stream(
            [(clean, 0.3), (cloud_denied, 0.7)], n
        )

    # Phase 1 favours the static front-of-pipeline ACL; the change at
    # t=36s moves the heavy dropping to the last level, where only the
    # dynamically reordered pipeline keeps up (the figure's shape).
    return (
        Scenario("fig02")
        .add_phase("cloud-drops", PHASE_S, cloud_heavy)
        .add_phase("vm-drops", PHASE_S, vm_heavy)
    )


def _run(dynamic: bool):
    # 16 regular processing tables after the ACLs: realistic pipeline
    # depth, so the position of the dropping ACL actually matters.
    program = acl_chain.build_program(n_regular=16)
    controller = PipeleonController(
        program,
        BLUEFIELD2,
        budget=ResourceBudget(memory_bytes=0.0, update_pps=0.0),
        # Reordering only: the motivating experiment isolates it.
        search=SearchOptions(
            k=1.0,
            enable_cache=False,
            enable_merge=False,
            enable_groups=False,
            max_pipelet_len=21,
        ),
        options=ControllerOptions(profile_period_s=4.0),
        enabled=dynamic,
    )
    acl_chain.install_acl_entries(controller.control_plane)
    controller.clock.advance(controller.options.update_window_s)
    timeline = controller.run_scenario(
        _scenario(TrafficGenerator(seed=2)),
        packets_per_tick=PACKETS_PER_TICK,
    )
    return timeline


def test_fig02_dynamic_vs_static_acl_order(benchmark):
    dynamic, static = run_once(
        benchmark, lambda: (_run(True), _run(False))
    )
    rows = [
        (
            point.time_s,
            point.phase,
            static_point.throughput_gbps,
            point.throughput_gbps,
        )
        for point, static_point in zip(dynamic, static)
    ]
    emit(
        "fig02_motivation",
        fmt_table(
            ["t_s", "phase", "static_gbps", "dynamic_gbps"], rows
        ),
    )
    half = PHASE_S
    # After the drop-rate change, the dynamic order re-optimizes and
    # clearly beats the static order (the figure's second half).
    dyn_tail = [p.throughput_gbps for p in dynamic[half + 10:]]
    stat_tail = [p.throughput_gbps for p in static[half + 10:]]
    assert sum(dyn_tail) / len(dyn_tail) > 1.1 * (
        sum(stat_tail) / len(stat_tail)
    )
    # The dynamic order reaches (close to) line rate in steady state.
    assert max(dyn_tail) >= 0.95 * BLUEFIELD2.line_rate_gbps
    # And it never does worse than static for long.
    dyn_mean = sum(p.throughput_gbps for p in dynamic) / len(dynamic)
    stat_mean = sum(p.throughput_gbps for p in static) / len(static)
    assert dyn_mean >= stat_mean
