"""Extension bench: hierarchical-memory table placement (§6).

Not a paper figure — the paper lists hierarchical memory as future work
("Pipeleon could explore the benefits of hierarchical memory by
enhancing the cost model and the optimization constraints"). This bench
quantifies the extension: promoting the hottest tables into IMEM/LMEM
under a fast-memory budget, swept over budget sizes.
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.core import (
    CostModel,
    Deployment,
    TierBudget,
    apply_placement,
    plan_placement,
)
from repro.core.profiling import uniform_profile
from repro.ir import exact_entry, linear_program
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2

N_TABLES = 30
BUDGET_FRACTIONS = [0.0, 0.1, 0.25, 0.5, 1.0]


def _program_with_entries():
    program = linear_program("mem", N_TABLES)
    entries = {
        f"mem_t{i}": [
            exact_entry(v, f"mem_t{i}_a0") for v in range(8)
        ]
        for i in range(N_TABLES)
    }
    return program, entries


def _measure(program, entries):
    deployment = Deployment(program, BLUEFIELD2, instrument=False)
    for table, rows in entries.items():
        deployment.insert_entries(
            table, (r.clone() for r in rows)
        )
    stats = deployment.run([make_packet() for _ in range(60)])
    return stats.throughput_gbps(BLUEFIELD2)


def _run():
    model = CostModel.for_target(BLUEFIELD2)
    program, entries = _program_with_entries()
    profile = uniform_profile(program)
    for name in entries:
        profile.entry_counts[name] = len(entries[name])
    total_bytes = sum(
        model.table_memory_bytes(t, profile) for t in program.tables()
    )
    rows = []
    for fraction in BUDGET_FRACTIONS:
        budget = TierBudget(
            imem_bytes=fraction * total_bytes * 0.7,
            lmem_bytes=fraction * total_bytes * 0.3,
        )
        plan = plan_placement(program, profile, model, budget)
        placed = apply_placement(program, plan).program
        promoted = sum(
            1
            for tier in plan.assignments.values()
            if tier.value != "emem"
        )
        rows.append(
            (
                f"{int(fraction * 100)}%",
                promoted,
                plan.gain_ns,
                _measure(placed, entries),
            )
        )
    return rows


def test_ext_memory_placement(benchmark):
    rows = run_once(benchmark, _run)
    emit(
        "ext_memory_placement",
        fmt_table(
            ["fast_mem_budget", "tables_promoted", "est_gain_ns",
             "throughput_gbps"],
            rows,
        ),
    )
    throughputs = [row[3] for row in rows]
    promoted = [row[1] for row in rows]
    # No budget -> nothing promoted, baseline throughput.
    assert promoted[0] == 0
    # More fast memory -> more tables promoted, more throughput,
    # monotonically.
    assert promoted == sorted(promoted)
    assert throughputs == sorted(throughputs)
    # Full promotion roughly halves/quarters lookup time: >= 1.5x.
    assert throughputs[-1] / throughputs[0] >= 1.5
