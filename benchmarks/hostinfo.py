"""Benchmarks-facing re-export of the shared host/git provenance.

The canonical implementation lives in :mod:`repro.dse.hostinfo` so the
DSE run database and the ``BENCH_*.json`` writers stamp records with the
same block. Benches run with ``PYTHONPATH=src`` (see ROADMAP.md's tier-1
verify line), so the package import always resolves here.
"""

from repro.dse.hostinfo import git_sha, host_metadata

__all__ = ["git_sha", "host_metadata"]
