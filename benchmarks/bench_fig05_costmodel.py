"""Figure 5: cost-model predictions vs measurement on BlueField2.

Runs the §3.1 calibration methodology (benchmark sweeps, reciprocal-
throughput latency proxy, linear regression for Lmat/Lact, slope ratios
for LPM/ternary m), then validates the fitted model on the paper's 16
held-out scenarios. The paper reports ~5% mean deviation.
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.core.calibration import (
    calibrate,
    mean_deviation,
    validate,
)
from repro.nic.targets import BLUEFIELD2


def _run():
    fitted = calibrate(BLUEFIELD2, n_packets=120)
    rows = validate(fitted, BLUEFIELD2, n_packets=120)
    return fitted, rows


def test_fig05_cost_model_validation(benchmark):
    fitted, rows = run_once(benchmark, _run)
    lines = fmt_table(
        ["scenario", "x", "measured_gbps", "predicted/measured"],
        [
            (r.scenario, r.x, r.measured_gbps, r.predicted_norm)
            for r in rows
        ],
    )
    lines.append("")
    lines.append(
        f"fitted: Lmat={fitted.lmat:.5f} Lact={fitted.lact:.5f} "
        f"m_lpm={fitted.m_lpm:.2f} m_ternary={fitted.m_ternary:.2f}"
    )
    deviation = mean_deviation(rows)
    lines.append(f"mean deviation: {deviation * 100:.1f}% "
                 f"(paper: ~5%)")
    emit("fig05_costmodel", lines)

    assert len(rows) == 16  # the paper's 16 validation scenarios
    # Paper: "within a 5% deviation on average"; we allow 10% slack for
    # the line-rate saturation points.
    assert deviation < 0.10
    # Every individual scenario stays within 25%.
    assert all(r.deviation < 0.25 for r in rows)
    # The fitted m values recover the installed 3 prefixes / 5 masks.
    assert 2.0 <= fitted.m_lpm <= 4.5
    assert 3.5 <= fitted.m_ternary <= 7.0
