"""Tier comparison: interpreter vs closure fast path vs columnar.

Replays the same pre-generated stream through all three execution
tiers for each of the five example applications on a single core, then
measures the columnar tier over the sharded shm transport at 4
workers, and writes the packets-per-second comparison — medians over
``REPEATS`` runs, plus host metadata — to ``BENCH_columnar.json`` at
the repo root (plus the usual text block under ``benchmarks/results``).

The columnar tier amortises per-packet Python dispatch over whole
batches, so unlike the closure tier its advantage grows with batch
size; the single-core comparison runs at ``BATCH`` = 4096 where the
numpy kernels dominate. The headline bar is >=``COLUMNAR_FLOOR``x over
the *closure fast path* (not the interpreter) on ``l2l3_acl``. The bar
only applies when the measured run retired every packet columnar —
demotions mean the run timed the closure tier, not the kernels — and
the skip is loud: a ``"gated": false`` marker with the reason lands in
the JSON and on stderr instead of a silently misleading number. The
4-worker shm section is gated the same way as ``BENCH_sharded``: on
hosts with < 4 CPUs the workers time-share cores and wall-clock
measures the scheduler, so the number is recorded but not asserted.

The differential tests (``tests/test_columnar.py``) prove the speedup
changes nothing observable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from figutil import emit, fmt_table, make_gate, median
from hostinfo import host_metadata

from repro.apps import (
    acl_chain,
    dash_routing,
    l2l3_acl,
    load_balancer,
    nf_composition,
)
from repro.core import Deployment, ShardedDeployment
from repro.nic.targets import BLUEFIELD2
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator

BENCH_JSON = Path(__file__).parent.parent / "BENCH_columnar.json"

APPS = {
    "l2l3_acl": (l2l3_acl.build_program, l2l3_acl.install_base_entries),
    "acl_chain": (
        acl_chain.build_program,
        acl_chain.install_acl_entries,
    ),
    "dash_routing": (
        dash_routing.build_program,
        dash_routing.install_base_entries,
    ),
    "load_balancer": (
        load_balancer.build_program,
        load_balancer.install_base_entries,
    ),
    "nf_composition": (
        nf_composition.build_program,
        nf_composition.install_base_entries,
    ),
}

N_PACKETS = 20000
REPEATS = 3
#: Large batches are the columnar tier's operating point: per-node
#: kernel overhead is paid once per (batch, partition), so the numpy
#: work has to be wide enough to bury it.
BATCH = 4096
#: Headline bar: columnar over the *closure* tier on l2l3_acl.
COLUMNAR_FLOOR = 3.0
N_WORKERS = 4
#: CPUs the process must be allowed on before the shm wall bar applies.
WALL_GATE_MIN_CPUS = 4


def _packets(n: int = N_PACKETS):
    generator = TrafficGenerator(1)
    flows = synth_flows(64) + synth_flows(16, dport=6666)
    return list(generator.stream(flows, n, locality="zipf"))


def _measure(app: str) -> dict:
    build, install = APPS[app]
    deployment = Deployment(build(), BLUEFIELD2)
    install(deployment.control_plane)
    emulator = deployment.emulator
    emulator.run(_packets(500))  # warm caches + counters
    emulator.fastpath  # compile both tiers outside the timed region
    emulator.columnar

    tiers = {
        "interp": lambda packets: emulator.run(iter(packets)),
        "fastpath": lambda packets: emulator.replay(
            iter(packets), batch=BATCH, engine="fastpath"
        ),
        "columnar": lambda packets: emulator.replay(
            iter(packets), batch=BATCH, engine="columnar"
        ),
    }
    samples: dict[str, list[float]] = {tier: [] for tier in tiers}
    demoted_before = sum(emulator.columnar_demotions.values())
    for _ in range(REPEATS):
        for tier, replay in tiers.items():
            # Processing mutates packets (header rewrites), so every
            # tier gets its own same-seed stream, built outside the
            # timed region.
            packets = _packets()
            start = time.perf_counter()
            replay(packets)
            samples[tier].append(time.perf_counter() - start)
    pps = {
        tier: N_PACKETS / median(times)
        for tier, times in samples.items()
    }
    demoted = sum(emulator.columnar_demotions.values()) - demoted_before
    return {
        "interp_pps": round(pps["interp"]),
        "fastpath_pps": round(pps["fastpath"]),
        "columnar_pps": round(pps["columnar"]),
        "columnar_vs_interp": round(pps["columnar"] / pps["interp"], 2),
        "columnar_vs_fastpath": round(
            pps["columnar"] / pps["fastpath"], 2
        ),
        "demoted": demoted,
    }


def _measure_shm() -> dict:
    """Columnar over the shm rings at 4 workers: wall-clock pps."""
    fleet = ShardedDeployment(
        l2l3_acl.build_program(),
        BLUEFIELD2,
        n_workers=N_WORKERS,
        transport="shm",
        engine="columnar",
    )
    l2l3_acl.install_base_entries(fleet.control_plane)
    try:
        fleet.replay(_packets(500))  # warm every worker's kernels
        wall = []
        for _ in range(REPEATS):
            packets = _packets()
            start = time.perf_counter()
            fleet.replay(packets)
            wall.append(time.perf_counter() - start)
        totals = fleet.transport_stats()["totals"]
        return {
            "wall_pps": round(N_PACKETS / median(wall)),
            "columnar_packets": fleet.columnar_packets,
            "demotions": dict(fleet.columnar_demotions),
            "fallback_encoding": totals["fallback_encoding"],
        }
    finally:
        fleet.close()


def test_bench_columnar():
    host = host_metadata()
    results = {app: _measure(app) for app in APPS}
    shm = _measure_shm()

    headline = results["l2l3_acl"]
    gated = headline["demoted"] == 0
    gate = make_gate(
        gated,
        threshold=COLUMNAR_FLOOR,
        measured=headline["columnar_vs_fastpath"],
        reason=(
            None
            if gated
            else (
                f"{headline['demoted']} of the timed packets demoted "
                "to the closure tier: the run measured demotion, not "
                "the kernels"
            )
        ),
        label="BENCH_columnar speedup gate",
    )
    shm_gated = host["affinity"] >= WALL_GATE_MIN_CPUS
    # This gate asserts nothing numeric yet (the shm wall number is
    # recorded, not floored); threshold/measured carry the CPU demand
    # so the shape stays uniform across every BENCH_*.json gate.
    shm_gate = make_gate(
        shm_gated,
        threshold=WALL_GATE_MIN_CPUS,
        measured=host["affinity"],
        reason=(
            None
            if shm_gated
            else (
                f"host affinity {host['affinity']} < "
                f"{WALL_GATE_MIN_CPUS} CPUs: workers time-share "
                "cores, wall-clock measures the scheduler, not the "
                "tier"
            )
        ),
        label="BENCH_columnar shm wall gate",
    )

    payload = {
        "host": host,
        "n_packets": N_PACKETS,
        "repeats": REPEATS,
        "batch": BATCH,
        "gate": gate,
        "apps": results,
        "shm_4_workers": {**shm, "wall_gate": shm_gate},
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        (
            app,
            data["interp_pps"],
            data["fastpath_pps"],
            data["columnar_pps"],
            data["columnar_vs_fastpath"],
            data["demoted"],
        )
        for app, data in results.items()
    ]
    rows.append(
        (
            f"l2l3_acl shm x{N_WORKERS}",
            "-",
            "-",
            shm["wall_pps"],
            "-",
            sum(shm["demotions"].values()),
        )
    )
    emit(
        "BENCH_columnar",
        fmt_table(
            [
                "app",
                "interp_pps",
                "fastpath_pps",
                "columnar_pps",
                "vs_fastpath",
                "demoted",
            ],
            rows,
        ),
    )

    # Every batch the shm fleet replayed must have gone through the SoA
    # rings and retired columnar — otherwise the wall number above is
    # measuring the pickle fallback or the closure tier.
    assert shm["fallback_encoding"] == 0
    assert shm["demotions"] == {}

    # Headline acceptance bar, loud-skipped when the run demoted
    # (make_gate already announced the skip).
    if gate["gated"]:
        assert gate["measured"] >= gate["threshold"], (
            "columnar vs closure fast path "
            f"{gate['measured']} below "
            f"{gate['threshold']}x on l2l3_acl"
        )
        for app, data in results.items():
            assert data["columnar_vs_interp"] > 1.0, app


if __name__ == "__main__":
    test_bench_columnar()
