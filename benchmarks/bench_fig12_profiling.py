"""Figure 12: runtime-profiling overhead (§5.4.1).

Counter updates cost datapath time. We sweep the number of per-packet
counter updates (20/30/40 tables, i.e. one action counter each), with
simple (1-primitive) and complex (4-primitive) actions, on Agilio CX
(latency + throughput overhead) and BlueField2 (throughput overhead),
plus the 1/1024 sampling configuration that makes the overhead vanish.
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.ir import linear_program
from repro.nic.emulator import NicEmulator
from repro.nic.packet import make_packet
from repro.nic.targets import AGILIO_CX, BLUEFIELD2

COUNTER_COUNTS = [20, 30, 40]
N_PACKETS = 400
SAMPLE_STRIDE = 1024


def _measure(target, n_tables, n_primitives, sample_stride, instrument):
    program = linear_program(
        f"prof_{n_tables}_{n_primitives}",
        n_tables,
        n_actions=1,
        n_primitives=n_primitives,
    )
    emulator = NicEmulator(
        program,
        target,
        instrument=instrument,
        sample_stride=sample_stride,
        native_cache=False,
    )
    stats = emulator.run([make_packet() for _ in range(N_PACKETS)])
    return stats.mean_latency_ns, stats.throughput_gbps(target)


def _overheads(target):
    rows = []
    for n_tables in COUNTER_COUNTS:
        for label, n_prims in (("simple", 1), ("complex", 4)):
            base_lat, base_tput = _measure(
                target, n_tables, n_prims, 1, instrument=False
            )
            inst_lat, inst_tput = _measure(
                target, n_tables, n_prims, 1, instrument=True
            )
            samp_lat, samp_tput = _measure(
                target, n_tables, n_prims, SAMPLE_STRIDE,
                instrument=True,
            )
            rows.append(
                (
                    n_tables,
                    label,
                    100 * (inst_lat / base_lat - 1),
                    100 * (1 - inst_tput / base_tput),
                    100 * (samp_lat / base_lat - 1),
                    100 * (1 - samp_tput / base_tput),
                )
            )
    return rows


def test_fig12ab_profiling_overhead_agilio(benchmark):
    rows = run_once(benchmark, lambda: _overheads(AGILIO_CX))
    emit(
        "fig12ab_profiling_agilio_cx",
        fmt_table(
            ["counters", "action", "lat_ovh_%", "tput_ovh_%",
             "sampled_lat_ovh_%", "sampled_tput_ovh_%"],
            rows,
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # Latency overhead is noticeable without sampling (paper: 10-35%).
    assert by_key[(40, "simple")][2] > 5.0
    # Similar across action complexities (paper's observation).
    assert abs(
        by_key[(40, "simple")][3] - by_key[(40, "complex")][3]
    ) < 10.0
    # Sampling 1/1024 shrinks the overhead to a few percent
    # (paper: 4.3% latency / 5.0% throughput).
    for row in rows:
        assert row[4] < 5.0
        assert row[5] < 5.0
    # Overhead grows with the number of counters.
    assert by_key[(40, "simple")][2] >= by_key[(20, "simple")][2]


def test_fig12c_profiling_overhead_bluefield2(benchmark):
    rows = run_once(benchmark, lambda: _overheads(BLUEFIELD2))
    emit(
        "fig12c_profiling_bluefield2",
        fmt_table(
            ["counters", "action", "lat_ovh_%", "tput_ovh_%",
             "sampled_lat_ovh_%", "sampled_tput_ovh_%"],
            rows,
        ),
    )
    # BlueField2 counter updates are cheap: even unsampled, the
    # throughput degradation stays small (paper: max 2.0%).
    for row in rows:
        assert row[3] < 6.0
    # And clearly smaller than Agilio's at the same counter count.
    agilio = _overheads(AGILIO_CX)
    assert rows[-1][3] < agilio[-1][3]
