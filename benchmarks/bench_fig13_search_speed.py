"""Figure 13: optimization time for top-k vs exhaustive search (§5.4.2).

Three synthesized program groups by (pipelet number PN, pipelet length
PL), k in {20%, 30%, 40%, 100%}. The paper measures seconds on their
Python prototype; ours measures the same search on this implementation
— absolute times differ, the *ratio* between top-k and ESearch (paper:
~8.2x for top-20%) is the reproduced quantity.
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, median, run_once

from repro.core import CostModel, optimize, uniform_profile
from repro.core.search import SearchOptions
from repro.nic.targets import BLUEFIELD2
from repro.synthesis import synthesize_corpus, synthesize_profile

GROUPS = {
    "PN=12,PL=2": dict(n_pipelets=12, pipelet_len_min=2,
                       pipelet_len_max=2),
    "PN=12,PL=3": dict(n_pipelets=12, pipelet_len_min=3,
                       pipelet_len_max=3),
    "PN=15,PL=3": dict(n_pipelets=15, pipelet_len_min=3,
                       pipelet_len_max=3),
}
K_VALUES = [0.2, 0.3, 0.4, 1.0]
PROGRAMS_PER_GROUP = 12  # paper: 100 per group


def _run():
    model = CostModel.for_target(BLUEFIELD2)
    times: dict[tuple[str, float], list[float]] = {}
    gains: dict[tuple[str, float], list[float]] = {}
    for group, shape in GROUPS.items():
        programs = synthesize_corpus(
            PROGRAMS_PER_GROUP, base_seed=91, **shape
        )
        for i, program in enumerate(programs):
            profile = synthesize_profile(program, seed=500 + i)
            for k in K_VALUES:
                plan = optimize(
                    program,
                    profile,
                    model,
                    options=SearchOptions(k=k),
                )
                times.setdefault((group, k), []).append(
                    plan.search_time_s
                )
                gains.setdefault((group, k), []).append(
                    plan.total_gain_ns
                )
    return times, gains


def test_fig13_optimization_speed(benchmark):
    times, gains = run_once(benchmark, _run)
    rows = []
    for group in GROUPS:
        row = [group]
        for k in K_VALUES:
            row.append(median(times[(group, k)]) * 1000.0)
        rows.append(row)
    lines = fmt_table(
        ["group", "k=20%_ms", "k=30%_ms", "k=40%_ms", "k=100%_ms"],
        rows,
    )
    speedups = []
    for group in GROUPS:
        full = median(times[(group, 1.0)])
        top20 = median(times[(group, 0.2)])
        if top20 > 0:
            speedups.append(full / top20)
    lines.append(
        f"median ESearch/top-20% speedup across groups: "
        f"{sum(speedups) / len(speedups):.1f}x (paper: 8.2x)"
    )
    emit("fig13_search_speed", lines)

    # Search time increases with k for every group.
    for group in GROUPS:
        assert median(times[(group, 0.2)]) <= median(
            times[(group, 1.0)]
        )
    # Larger programs take longer at full search.
    assert median(times[("PN=15,PL=3", 1.0)]) > median(
        times[("PN=12,PL=2", 1.0)]
    )
    # The top-20% search is substantially faster than ESearch.
    assert sum(speedups) / len(speedups) > 2.0
    # ESearch never finds less gain than top-k (same machinery).
    for group in GROUPS:
        for k in (0.2, 0.3, 0.4):
            total_topk = sum(gains[(group, k)])
            total_full = sum(gains[(group, 1.0)])
            assert total_full >= total_topk - 1e-6
