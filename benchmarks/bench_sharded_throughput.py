"""Sharded replay throughput: single-core fast path vs N workers.

Replays the same stream through a single-core ``Deployment`` and a
``ShardedDeployment`` at 2 and 4 workers on ``l2l3_acl`` and writes the
comparison to ``BENCH_sharded.json`` at the repo root (medians over
``REPEATS`` runs, plus host metadata).

Two throughput figures are reported per worker count:

- ``wall_pps`` — honest wall-clock packets/s in this container. On a
  single-CPU host the workers time-share one core, so wall-clock shows
  the IPC overhead, not the parallel speedup.
- ``modeled_pps`` — critical-path throughput ``n_packets /
  max(worker_busy_s)`` where ``worker_busy_s`` is each worker's own
  ``time.process_time()`` over its shard. This is the throughput of the
  same fleet on a host with one core per worker (RSS-style dispatch is
  free on a real NIC), and is what the >=2.5x acceptance bar measures
  against the single-core fast path's CPU time.

Two measurement details keep the numbers stable on a noisy shared
host. First, each worker's CPU time is taken from a run where only
that worker's shard is in the stream: flow->shard assignment is
deterministic and all per-flow state is shard-local, so the worker
does exactly the work it does in the mixed run, but without the other
workers time-sharing the same physical core and evicting its caches —
cross-worker preemption is an artifact this model explicitly excludes
(a one-core-per-worker host never pays it). Second, each repeat
measures the single-core engine and every fleet back to back and the
speedup is the median of per-repeat ratios, which cancels background
load drift between measurement windows.

Differential tests (``tests/test_nic_sharding.py``) prove the sharded
engine changes nothing observable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from figutil import emit, fmt_table, host_metadata, median

from repro.apps import l2l3_acl
from repro.core import Deployment, ShardedDeployment
from repro.nic.sharding import flow_shard
from repro.nic.targets import BLUEFIELD2
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator

BENCH_JSON = Path(__file__).parent.parent / "BENCH_sharded.json"

N_PACKETS = 20000
REPEATS = 7
WORKER_COUNTS = (2, 4)
N_FLOWS = 1024


def _packets(n: int = N_PACKETS):
    generator = TrafficGenerator(1)
    # Uniform locality: the acceptance bar measures scaling, not the
    # load-imbalance tail a zipf mix would add on top. Flow-hash
    # sharding balances at flow granularity, so the flow count sets the
    # imbalance floor: 1024 flows keep the biggest shard near 26% of
    # the traffic (64 flows would pin it around 30%).
    return list(
        generator.stream(synth_flows(N_FLOWS), n, locality="uniform")
    )


def _make_single() -> Deployment:
    deployment = Deployment(l2l3_acl.build_program(), BLUEFIELD2)
    l2l3_acl.install_base_entries(deployment.control_plane)
    deployment.replay(_packets(500))  # warm caches, compile fast path
    return deployment


def _make_sharded(n_workers: int) -> ShardedDeployment:
    deployment = ShardedDeployment(
        l2l3_acl.build_program(), BLUEFIELD2, n_workers=n_workers
    )
    l2l3_acl.install_base_entries(deployment.control_plane)
    deployment.replay(_packets(500))  # warm every worker's fast path
    return deployment


def _isolated_max_busy(fleet: ShardedDeployment, n_workers: int) -> float:
    """Critical-path worker CPU time without cross-worker time-sharing.

    Replays each shard's packets on their own: the worker does the
    exact work of the mixed run (flow->shard is deterministic and all
    per-flow state is shard-local) but is alone on the CPU while it
    does it, as it would be on a one-core-per-worker host.
    """
    busiest = 0.0
    for shard in range(n_workers):
        own = [
            packet
            for packet in _packets()
            if flow_shard(packet.flow_key(), n_workers) == shard
        ]
        fleet.replay(own)
        busiest = max(busiest, fleet.emulator.worker_busy_s[shard])
    return busiest


def test_bench_sharded_throughput():
    single = _make_single()
    fleets = {n: _make_sharded(n) for n in WORKER_COUNTS}
    samples = {
        "single_cpu_s": [],
        "single_wall_s": [],
        **{n: {"busy_s": [], "wall_s": [], "ratio": []} for n in fleets},
    }
    try:
        for _ in range(REPEATS):
            packets = _packets()
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            single.replay(packets)
            single_cpu_s = time.process_time() - cpu0
            samples["single_cpu_s"].append(single_cpu_s)
            samples["single_wall_s"].append(time.perf_counter() - wall0)
            for n, fleet in fleets.items():
                packets = _packets()
                wall0 = time.perf_counter()
                fleet.replay(packets)
                wall_s = time.perf_counter() - wall0
                busy_s = _isolated_max_busy(fleet, n)
                samples[n]["busy_s"].append(busy_s)
                samples[n]["wall_s"].append(wall_s)
                samples[n]["ratio"].append(single_cpu_s / busy_s)
    finally:
        for fleet in fleets.values():
            fleet.close()

    single_result = {
        "cpu_pps": round(N_PACKETS / median(samples["single_cpu_s"])),
        "wall_pps": round(N_PACKETS / median(samples["single_wall_s"])),
    }
    sharded_results = {}
    for n in WORKER_COUNTS:
        sample = samples[n]
        sharded_results[str(n)] = {
            "modeled_pps": round(N_PACKETS / median(sample["busy_s"])),
            "wall_pps": round(N_PACKETS / median(sample["wall_s"])),
            "max_worker_busy_s": round(median(sample["busy_s"]), 4),
            "speedup_modeled": round(median(sample["ratio"]), 2),
        }
    payload = {
        "host": host_metadata(),
        "app": "l2l3_acl",
        "n_packets": N_PACKETS,
        "n_flows": N_FLOWS,
        "repeats": REPEATS,
        "single_core": single_result,
        "sharded": sharded_results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    rows = [
        (
            "1 (single)",
            single_result["cpu_pps"],
            single_result["wall_pps"],
            1.0,
        )
    ]
    rows += [
        (
            f"{n} workers",
            sharded_results[str(n)]["modeled_pps"],
            sharded_results[str(n)]["wall_pps"],
            sharded_results[str(n)]["speedup_modeled"],
        )
        for n in WORKER_COUNTS
    ]
    emit(
        "BENCH_sharded",
        fmt_table(
            ["config", "modeled_pps", "wall_pps", "speedup"], rows
        ),
    )
    # Acceptance bar: 4 workers beat the single-core fast path >=2.5x
    # on the modeled critical path.
    assert sharded_results["4"]["speedup_modeled"] >= 2.5
    assert sharded_results["2"]["speedup_modeled"] > 1.0


if __name__ == "__main__":
    test_bench_sharded_throughput()
