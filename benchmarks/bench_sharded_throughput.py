"""Sharded replay throughput: single-core fast path vs N workers.

Replays the same stream through a single-core ``Deployment`` and a
``ShardedDeployment`` at 2 and 4 workers on ``l2l3_acl``, over **both
transports** (``shm`` zero-copy rings and the legacy ``pipe``), and
writes the comparison to ``BENCH_sharded.json`` at the repo root
(medians over ``REPEATS`` runs, plus host metadata including the CPU
affinity mask size).

Two throughput figures are reported per (transport, worker count):

- ``wall_pps`` — honest wall-clock packets/s in this container. This is
  where the transport shows up: the pipe pickles every batch through a
  syscall, the shm rings hand the worker in-place numpy columns.
- ``modeled_pps`` — critical-path throughput ``n_packets /
  max(worker_busy_s)`` where ``worker_busy_s`` is each worker's own
  ``time.process_time()`` over its shard. This is the throughput of the
  same fleet on a host with one core per worker (RSS-style dispatch is
  free on a real NIC), and is what the >=2.5x acceptance bar measures
  against the single-core fast path's CPU time.

``modeled_vs_wall_gap`` (modeled / wall) is reported for every
configuration: it is the fraction of the modeled speedup the host
actually delivers, i.e. the serialization + scheduling tax this PR
exists to shrink.

Gating: the modeled bars always apply. The **wall-clock** bar
(>= ``WALL_SPEEDUP_FLOOR``x over single-core at 4 workers, shm) only
applies when the process may run on >= 4 CPUs — on smaller hosts the
workers time-share cores and wall-clock measures the scheduler, not
the transport — and the skip is loud: a ``"gated": false`` marker (with
the reason) lands in ``BENCH_sharded.json`` and on stderr instead of a
silently misleading number.

Two measurement details keep the numbers stable on a noisy shared
host. First, each worker's CPU time is taken from a run where only
that worker's shard is in the stream: flow->shard assignment is
deterministic and all per-flow state is shard-local, so the worker
does exactly the work it does in the mixed run, but without the other
workers time-sharing the same physical core and evicting its caches —
cross-worker preemption is an artifact this model explicitly excludes
(a one-core-per-worker host never pays it). Second, each repeat
measures the single-core engine and every fleet back to back and the
speedup is the median of per-repeat ratios, which cancels background
load drift between measurement windows.

Differential tests (``tests/test_nic_sharding.py``) prove the sharded
engine changes nothing observable; ``tests/test_shm_transport.py``
proves the same over the shm rings specifically.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from figutil import emit, fmt_table, make_gate, median
from hostinfo import host_metadata

from repro.apps import l2l3_acl
from repro.core import Deployment, ShardedDeployment
from repro.nic.sharding import flow_shard
from repro.nic.targets import BLUEFIELD2
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator

BENCH_JSON = Path(__file__).parent.parent / "BENCH_sharded.json"

N_PACKETS = 20000
REPEATS = 5
WORKER_COUNTS = (2, 4)
N_FLOWS = 1024
TRANSPORTS = ("pipe", "shm")
#: Wall-clock acceptance bar at 4 workers with shm, on capable hosts.
WALL_SPEEDUP_FLOOR = 1.5
#: CPUs the process must be allowed to run on before wall gating.
WALL_GATE_MIN_CPUS = 4


def _packets(n: int = N_PACKETS):
    generator = TrafficGenerator(1)
    # Uniform locality: the acceptance bar measures scaling, not the
    # load-imbalance tail a zipf mix would add on top. Flow-hash
    # sharding balances at flow granularity, so the flow count sets the
    # imbalance floor: 1024 flows keep the biggest shard near 26% of
    # the traffic (64 flows would pin it around 30%).
    return list(
        generator.stream(synth_flows(N_FLOWS), n, locality="uniform")
    )


def _make_single() -> Deployment:
    deployment = Deployment(l2l3_acl.build_program(), BLUEFIELD2)
    l2l3_acl.install_base_entries(deployment.control_plane)
    deployment.replay(_packets(500))  # warm caches, compile fast path
    return deployment


def _make_sharded(n_workers: int, transport: str) -> ShardedDeployment:
    deployment = ShardedDeployment(
        l2l3_acl.build_program(),
        BLUEFIELD2,
        n_workers=n_workers,
        transport=transport,
    )
    l2l3_acl.install_base_entries(deployment.control_plane)
    deployment.replay(_packets(500))  # warm every worker's fast path
    return deployment


def _isolated_max_busy(fleet: ShardedDeployment, n_workers: int) -> float:
    """Critical-path worker CPU time without cross-worker time-sharing.

    Replays each shard's packets on their own: the worker does the
    exact work of the mixed run (flow->shard is deterministic and all
    per-flow state is shard-local) but is alone on the CPU while it
    does it, as it would be on a one-core-per-worker host.
    """
    busiest = 0.0
    for shard in range(n_workers):
        own = [
            packet
            for packet in _packets()
            if flow_shard(packet.flow_key(), n_workers) == shard
        ]
        fleet.replay(own)
        busiest = max(busiest, fleet.emulator.worker_busy_s[shard])
    return busiest


def test_bench_sharded_throughput():
    host = host_metadata()
    single = _make_single()
    configs = [
        (transport, n)
        for transport in TRANSPORTS
        for n in WORKER_COUNTS
    ]
    samples = {
        "single_cpu_s": [],
        "single_wall_s": [],
        **{
            key: {
                "busy_s": [],
                "wall_s": [],
                "ratio": [],
                "wall_ratio": [],
            }
            for key in configs
        },
    }
    transport_stats = {}
    # One fleet alive at a time: a fleet's idle workers still wake to
    # poll, and on a time-shared host a dozen idle pollers perturb the
    # very worker being measured. Each repeat still measures the
    # single-core engine back to back with the fleet, so the per-repeat
    # ratio cancels background drift.
    for key in configs:
        transport, n = key
        fleet = _make_sharded(n, transport)
        try:
            for _ in range(REPEATS):
                packets = _packets()
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                single.replay(packets)
                single_cpu_s = time.process_time() - cpu0
                single_wall_s = time.perf_counter() - wall0
                samples["single_cpu_s"].append(single_cpu_s)
                samples["single_wall_s"].append(single_wall_s)
                packets = _packets()
                wall0 = time.perf_counter()
                fleet.replay(packets)
                wall_s = time.perf_counter() - wall0
                busy_s = _isolated_max_busy(fleet, n)
                sample = samples[key]
                sample["busy_s"].append(busy_s)
                sample["wall_s"].append(wall_s)
                sample["ratio"].append(single_cpu_s / busy_s)
                sample["wall_ratio"].append(single_wall_s / wall_s)
            transport_stats[key] = fleet.transport_stats()["totals"]
        finally:
            fleet.close()

    single_result = {
        "cpu_pps": round(N_PACKETS / median(samples["single_cpu_s"])),
        "wall_pps": round(N_PACKETS / median(samples["single_wall_s"])),
    }
    sharded_results: dict[str, dict] = {t: {} for t in TRANSPORTS}
    for (transport, n), sample in (
        (key, samples[key]) for key in configs
    ):
        modeled_pps = N_PACKETS / median(sample["busy_s"])
        wall_pps = N_PACKETS / median(sample["wall_s"])
        totals = transport_stats[(transport, n)]
        sharded_results[transport][str(n)] = {
            "modeled_pps": round(modeled_pps),
            "wall_pps": round(wall_pps),
            "max_worker_busy_s": round(median(sample["busy_s"]), 4),
            "speedup_modeled": round(median(sample["ratio"]), 2),
            "speedup_wall": round(median(sample["wall_ratio"]), 2),
            # Fraction of the modeled speedup the host delivers in
            # wall-clock terms: the serialization + scheduling tax.
            "modeled_vs_wall_gap": round(modeled_pps / wall_pps, 2),
            "ring_stalls": totals["stalls"],
            "pipe_fallbacks": (
                totals["fallback_encoding"]
                + totals["fallback_capacity"]
            ),
        }

    wall_gated = host["affinity"] >= WALL_GATE_MIN_CPUS
    wall_gate = make_gate(
        wall_gated,
        threshold=WALL_SPEEDUP_FLOOR,
        measured=sharded_results["shm"]["4"]["speedup_wall"],
        reason=(
            None
            if wall_gated
            else (
                f"host affinity {host['affinity']} < "
                f"{WALL_GATE_MIN_CPUS} CPUs: workers time-share "
                "cores, wall-clock measures the scheduler, not the "
                "transport"
            )
        ),
        label="BENCH_sharded wall-clock gate",
    )
    payload = {
        "host": host,
        "app": "l2l3_acl",
        "n_packets": N_PACKETS,
        "n_flows": N_FLOWS,
        "repeats": REPEATS,
        "wall_gate": wall_gate,
        "single_core": single_result,
        "sharded": sharded_results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        (
            "1 (single)",
            "-",
            single_result["cpu_pps"],
            single_result["wall_pps"],
            1.0,
            1.0,
        )
    ]
    rows += [
        (
            f"{n} workers",
            transport,
            sharded_results[transport][str(n)]["modeled_pps"],
            sharded_results[transport][str(n)]["wall_pps"],
            sharded_results[transport][str(n)]["speedup_modeled"],
            sharded_results[transport][str(n)]["speedup_wall"],
        )
        for transport in TRANSPORTS
        for n in WORKER_COUNTS
    ]
    emit(
        "BENCH_sharded",
        fmt_table(
            [
                "config",
                "transport",
                "modeled_pps",
                "wall_pps",
                "speedup",
                "wall_speedup",
            ],
            rows,
        ),
    )

    # Every configuration must report its modeled-vs-wall gap: the gap
    # is the number this benchmark exists to track, for both transports.
    for transport in TRANSPORTS:
        for n in WORKER_COUNTS:
            assert (
                sharded_results[transport][str(n)]["modeled_vs_wall_gap"]
                > 0
            )

    # Acceptance bar: 4 workers beat the single-core fast path >=2.5x
    # on the modeled critical path (transport-independent — the model
    # excludes the transport by construction).
    for transport in TRANSPORTS:
        assert sharded_results[transport]["4"]["speedup_modeled"] >= 2.5
        assert sharded_results[transport]["2"]["speedup_modeled"] > 1.0

    # Wall-clock bar: shm at 4 workers must beat single-core wall time
    # by WALL_SPEEDUP_FLOOR on hosts with enough CPUs. Loud skip
    # otherwise — the JSON carries "gated": false with the reason.
    if wall_gate["gated"]:
        assert wall_gate["measured"] >= wall_gate["threshold"], (
            "shm transport wall-clock speedup "
            f"{wall_gate['measured']} below "
            f"{wall_gate['threshold']}x at 4 workers"
        )
    # Skipped gates already announced themselves via make_gate.


if __name__ == "__main__":
    test_bench_sharded_throughput()
