"""Design-space exploration sweep: Pareto front + ranking fidelity.

Runs the 24-cell ``pareto`` preset (3 apps x 2 localities x 2 cache
capacities x 2 targets) through the DSE harness and writes
``BENCH_dse.json`` at the repo root: the run-database records'
objective summary, the latency/memory/update-rate Pareto front, and the
Spearman rank correlation between the cost model's predicted latency
and the emulator's measured latency across the sweep.

Two acceptance bars, both deterministic (the emulated clock makes every
measured number a pure function of the spec seed, so neither can flake
on a loaded host):

- at least one configuration is strictly dominated and excluded from
  the front — the sweep is built to contain such cells (the 4096-entry
  cache predicts strictly more memory than the 512-entry one for
  identical traffic and latency whenever the optimizer plans a cache);
- the predicted-vs-measured latency ranking agrees at Spearman >=
  ``SPEARMAN_FLOOR`` — the model only has to *order* configurations
  correctly for search over the space to work.
"""

from __future__ import annotations

import json
from pathlib import Path

from figutil import emit, fmt_table, make_gate
from hostinfo import host_metadata

from repro.dse import pareto_front, pareto_spec, run_sweep
from repro.telemetry.report import dse_ranking_report, format_dse_report

BENCH_JSON = Path(__file__).parent.parent / "BENCH_dse.json"
DB_PATH = Path(__file__).parent / "results" / "dse_pareto_runs.jsonl"

#: Rank-agreement floor for predicted vs measured latency.
SPEARMAN_FLOOR = 0.6


def test_bench_dse():
    spec = pareto_spec(seed=0)
    # Fresh sweep every run: the bench measures the harness end to
    # end, resume behaviour is pinned by tests/test_dse.py.
    DB_PATH.parent.mkdir(exist_ok=True)
    if DB_PATH.exists():
        DB_PATH.unlink()
    result = run_sweep(spec, DB_PATH)
    assert result.complete and result.executed == len(spec.cells())

    front, dominated = pareto_front(result.records)
    ranking = dse_ranking_report(result.records)
    spearman = ranking.spearman if ranking.spearman is not None else 0.0
    gate = make_gate(
        True,
        threshold=SPEARMAN_FLOOR,
        measured=round(spearman, 4),
        label="BENCH_dse spearman gate",
    )

    def brief(record):
        return {
            "cell": record["cell"],
            "fingerprint": record["fingerprint"],
            "app": record["config"]["app"],
            "target": record["config"]["target"],
            "locality": record["config"]["locality"],
            "cache_capacity": record["config"]["cache_capacity"],
            "mean_latency_ns": record["measured"]["mean_latency_ns"],
            "predicted_latency_ns": record["predicted"]["latency_ns"],
            "predicted_memory_bytes": record["predicted"]["memory_bytes"],
            "predicted_update_pps": record["predicted"]["update_pps"],
        }

    payload = {
        "host": host_metadata(),
        "spec": spec.to_json(),
        "cells": len(result.records),
        "gate": gate,
        "spearman": ranking.spearman,
        "pareto_front": [brief(r) for r in front],
        "dominated": [brief(r) for r in dominated],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    emit("BENCH_dse", format_dse_report(ranking).splitlines())
    emit(
        "BENCH_dse_front",
        fmt_table(
            [
                "cell",
                "app",
                "target",
                "locality",
                "cache",
                "latency_ns",
                "mem_B",
                "upd_pps",
                "front",
            ],
            [
                (
                    r["cell"],
                    r["app"],
                    r["target"],
                    r["locality"],
                    r["cache_capacity"],
                    r["mean_latency_ns"],
                    r["predicted_memory_bytes"],
                    r["predicted_update_pps"],
                    "*" if r in payload["pareto_front"] else "",
                )
                for r in payload["pareto_front"] + payload["dominated"]
            ],
        ),
    )

    # Acceptance: the sweep must separate the space — a front with
    # nothing dominated means the objectives never discriminated.
    assert len(front) >= 1
    assert len(dominated) >= 1, (
        "no dominated configuration in a 24-cell sweep built to "
        "contain strictly dominated cache capacities"
    )
    assert len(front) + len(dominated) == len(result.records)

    # Rank fidelity (deterministic under the emulated clock).
    assert spearman >= gate["threshold"], (
        f"predicted-vs-measured Spearman {spearman:.3f} below "
        f"{gate['threshold']}"
    )


if __name__ == "__main__":
    test_bench_dse()
