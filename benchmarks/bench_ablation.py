"""Ablations of Pipeleon's design choices (DESIGN.md §5).

(a) Pipeleon's merge-as-exact-cache vs Figure 6's naive ternary merge —
    the naive merge can make the program *slower* than no merge at all;
(b) one whole-program cache (B-Cache-style) vs Pipeleon's adjustable
    multiple caches under entry churn;
(c) counter sampling on/off (quantified in Figure 12; asserted here as
    a direct ablation).
"""

from __future__ import annotations

import random

import pytest

from figutil import emit, fmt_table, run_once

from repro.core import Deployment
from repro.core.plan import Candidate, OptimizationPlan, Segment
from repro.core.pipelets import partition
from repro.core.transform import apply_naive_merge
from repro.core.transform.merge import naive_merged_entries
from repro.ir import exact_entry, linear_program
from repro.ir.entries import ExactValue, TableEntry
from repro.nic.emulator import NicEmulator
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2 as _BF2

#: Scaled-down BlueField2 (fewer cores) so that the small ablation
#: programs are not all trivially at line rate.
BLUEFIELD2 = _BF2.replace(asic_cores=2)


def _plan(program, op, tables):
    pipelet = partition(program, max_len=8)[0]
    segments = [Segment(op, tuple(tables))]
    segments += [
        Segment("none", (n,))
        for n in pipelet.table_names
        if n not in tables
    ]
    return OptimizationPlan(
        candidates=[
            Candidate(
                pipelet_id=pipelet.pipelet_id,
                run=pipelet.table_names,
                order=pipelet.table_names,
                segments=tuple(segments),
                gain_ns=0.0,
                memory_bytes=0.0,
                update_pps=0.0,
            )
        ]
    )


def _merge_workload(n_entries_per_table=12, n_packets=300, seed=3):
    """Entries and hit-heavy packets over two mergeable tables."""
    rng = random.Random(seed)
    entries = {
        "m_t0": [
            exact_entry(v, "m_t0_a0")
            for v in range(n_entries_per_table)
        ],
        "m_t1": [
            exact_entry(v, "m_t1_a0")
            for v in range(n_entries_per_table)
        ],
    }
    # Hit-heavy traffic: the merged table's composite entries serve
    # nearly all packets, isolating the match-type cost difference.
    packets = [
        make_packet(
            extra={
                "ipv4.f0": rng.randrange(n_entries_per_table),
                "ipv4.f1": rng.randrange(n_entries_per_table),
            }
        )
        for _ in range(n_packets)
    ]
    return entries, packets


def _measure_merge_variant(variant: str) -> float:
    program = linear_program("m", 4)
    entries, packets = _merge_workload()
    covers = ["m_t0", "m_t1"]
    if variant == "none":
        deployment = Deployment(
            program, BLUEFIELD2, instrument=False
        )
        for table, rows in entries.items():
            deployment.insert_entries(table, rows)
        stats = deployment.run(packets)
        return stats.throughput_gbps(BLUEFIELD2)
    if variant == "pipeleon":
        deployment = Deployment(
            program,
            BLUEFIELD2,
            plan=_plan(program, "merge", covers),
            instrument=False,
        )
        for table, rows in entries.items():
            deployment.insert_entries(table, rows)
        stats = deployment.run(packets)
        return stats.throughput_gbps(BLUEFIELD2)
    # Naive ternary merge (Figure 6).
    result = apply_naive_merge(program, covers)
    merged_name = result.created[0]
    emulator = NicEmulator(
        result.program, BLUEFIELD2, instrument=False
    )
    merged_node = result.program.table(merged_name)
    rows = naive_merged_entries(
        merged_node,
        [program.table(c) for c in covers],
        [entries[c] for c in covers],
    )
    emulator.set_table_entries(merged_name, rows)
    for table in ("m_t2", "m_t3"):
        pass  # no entries in the tail tables (same as other variants)
    from repro.nic.stats import RunStats

    stats = RunStats()
    for packet in packets:
        stats.record(emulator.process(packet), packet.size_bytes)
    return stats.throughput_gbps(BLUEFIELD2)


def test_ablation_naive_merge_can_hurt(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            v: _measure_merge_variant(v)
            for v in ("none", "pipeleon", "naive")
        },
    )
    emit(
        "ablation_merge_variants",
        fmt_table(
            ["variant", "throughput_gbps"],
            [(v, results[v]) for v in ("none", "pipeleon", "naive")],
        ),
    )
    # Figure 6's warning: the naive merge turns exact tables into a
    # multi-mask ternary table and LOSES to not merging at all.
    assert results["naive"] < results["none"]
    # Pipeleon's merged-exact-cache variant never regresses.
    assert results["pipeleon"] >= results["none"] * 0.98


def _churn_workload(n_flows=40, n_packets=100, seed=4):
    """Flows with distinct values in every table's match field."""
    rng = random.Random(seed)
    flows = [
        {f"ipv4.f{i}": rng.randrange(1000) for i in range(8)}
        for _ in range(n_flows)
    ]
    return [
        make_packet(extra=rng.choice(flows))
        for _ in range(n_packets)
    ]


def _measure_cache_layout(whole_program: bool) -> float:
    """Throughput under periodic updates to the LAST table only."""
    program = linear_program("c", 8)
    names = [f"c_t{i}" for i in range(8)]
    if whole_program:
        plan = _plan(program, "cache", names)
    else:
        # Two caches: the churning tail is isolated in its own cache.
        pipelet = partition(program, max_len=8)[0]
        plan = OptimizationPlan(
            candidates=[
                Candidate(
                    pipelet_id=pipelet.pipelet_id,
                    run=pipelet.table_names,
                    order=pipelet.table_names,
                    segments=(
                        Segment("cache", tuple(names[:7])),
                        Segment("cache", (names[7],)),
                    ),
                    gain_ns=0.0,
                    memory_bytes=0.0,
                    update_pps=0.0,
                )
            ]
        )
    deployment = Deployment(
        program, BLUEFIELD2, plan=plan, instrument=False
    )
    packets = _churn_workload()
    deployment.run(packets)  # warm
    total = 0.0
    rounds = 6
    value = 1000
    for _ in range(rounds):
        # One rule update in the last table per round: the whole-
        # program cache is fully invalidated every time.
        deployment.insert_entry(
            "c_t7", exact_entry(value, "c_t7_a0")
        )
        value += 1
        stats = deployment.run(packets)
        total += stats.throughput_gbps(BLUEFIELD2)
    return total / rounds


def test_ablation_multi_cache_vs_whole_program_cache(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "whole_program_cache": _measure_cache_layout(True),
            "pipeleon_multi_cache": _measure_cache_layout(False),
        },
    )
    emit(
        "ablation_cache_layout",
        fmt_table(
            ["layout", "throughput_gbps_under_churn"],
            list(results.items()),
        ),
    )
    # Scoped caches confine invalidation to the churning region.
    assert (
        results["pipeleon_multi_cache"]
        > results["whole_program_cache"]
    )
