"""Figure 10: optimization benefit on synthesized program categories.

Three workload categories (heavy packet drop, small static tables, high
traffic locality) x pipelet lengths {1-2, 2-3, 3-4}. For each case the
latency reduction achieved by each technique alone is computed with the
cost model, exactly as the paper does ("the average optimization
performance computed by the cost model"). The paper synthesizes 100
programs per category; we use a smaller corpus per cell for runtime (the
averages are stable well before that).
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.core import CostModel, optimize
from repro.core.search import SearchOptions
from repro.nic.targets import BLUEFIELD2
from repro.synthesis import CATEGORIES, make_corpus

PIPELET_LENGTHS = [(1, 2), (2, 3), (3, 4)]
PROGRAMS_PER_CELL = 10
TECHNIQUES = ("reordering", "merging", "caching")


def _options(technique: str) -> SearchOptions:
    return SearchOptions(
        k=1.0,
        enable_reorder=technique == "reordering",
        enable_merge=technique == "merging",
        enable_cache=technique == "caching",
        enable_groups=False,
        merge_max_tables=2,  # the paper's memory-overhead restriction
    )


def _reduction(program, profile, model, technique) -> float:
    baseline = model.expected_latency(program, profile)
    if baseline <= 0:
        return 0.0
    plan = optimize(
        program, profile, model, options=_options(technique)
    )
    return max(0.0, plan.total_gain_ns) / baseline


def _run():
    model = CostModel.for_target(BLUEFIELD2)
    table = {}
    for category in CATEGORIES:
        for lengths in PIPELET_LENGTHS:
            corpus = make_corpus(
                category, lengths, PROGRAMS_PER_CELL, base_seed=37
            )
            for technique in TECHNIQUES:
                reductions = [
                    _reduction(
                        case.program, case.profile, model, technique
                    )
                    for case in corpus
                ]
                table[(category, lengths, technique)] = (
                    100.0 * sum(reductions) / len(reductions)
                )
    return table


def test_fig10_synthesized_categories(benchmark):
    table = run_once(benchmark, _run)
    rows = []
    for category in CATEGORIES:
        for lengths in PIPELET_LENGTHS:
            rows.append(
                (
                    category,
                    f"{lengths[0]}~{lengths[1]}",
                    table[(category, lengths, "reordering")],
                    table[(category, lengths, "merging")],
                    table[(category, lengths, "caching")],
                )
            )
    emit(
        "fig10_synthesis",
        fmt_table(
            ["category", "pipelet_len", "reorder_%", "merge_%",
             "cache_%"],
            rows,
        ),
    )

    def avg(technique, category=None):
        cells = [
            value
            for (cat, _pl, tech), value in table.items()
            if tech == technique and (category is None or cat == category)
        ]
        return sum(cells) / len(cells)

    # Reordering shines on heavy-drop programs (our synthesized drop
    # asymmetry is milder than the paper's, so the absolute reduction
    # is smaller; the ordering of techniques per category matches).
    assert avg("reordering", "heavy_drop") > 5.0
    assert avg("reordering", "heavy_drop") > avg(
        "reordering", "high_locality"
    )
    # Caching shines on high-locality programs.
    assert avg("caching", "high_locality") > 15.0
    # Merging helps on small static tables but is the weakest technique
    # overall (restricted to 2 tables, as the paper notes).
    assert avg("merging", "small_static") > 3.0
    assert avg("merging") < avg("caching")
    # Longer pipelets give more opportunities (averaged over categories).
    for technique in ("reordering", "caching"):
        short = sum(
            table[(c, (1, 2), technique)] for c in CATEGORIES
        )
        long = sum(
            table[(c, (3, 4), technique)] for c in CATEGORIES
        )
        assert long > short
    # Overall reductions land in the paper's 27-52% band for the
    # category each technique targets.
    assert 15.0 < avg("caching", "high_locality") < 75.0
