"""Shared helpers for the figure-reproduction benchmarks.

Each bench regenerates one table/figure of the paper: it prints the
series and also writes them under ``benchmarks/results/`` so the numbers
survive pytest's output capturing. EXPERIMENTS.md records the
paper-vs-measured comparison for every figure.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, lines: Iterable[str]) -> list[str]:
    """Print a result block and persist it to benchmarks/results/."""
    lines = list(lines)
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return lines


def fmt_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> list[str]:
    """Fixed-width text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return out


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def make_gate(
    gated: bool,
    threshold: object,
    measured: object,
    reason: str | None = None,
    label: str = "gate",
) -> dict:
    """The one true shape of a perf-gate block in ``BENCH_*.json``.

    Every writer emits exactly ``{gated, reason, threshold, measured}``
    (``reason`` is ``None`` when the gate is armed) so dashboards and
    the bench-smoke shape assertion can consume any gate uniformly. A
    skipped gate announces itself loudly on stderr — a silently
    unasserted benchmark reads as a passing one.
    """
    if not gated and not reason:
        raise ValueError("a skipped gate must say why (reason=...)")
    if not gated:
        import sys

        print(
            f"{label}: NOT ASSERTED — {reason} "
            f"(threshold={threshold}, measured={measured})",
            file=sys.stderr,
        )
    return {
        "gated": bool(gated),
        "reason": None if gated else str(reason),
        "threshold": threshold,
        "measured": measured,
    }


def run_once(benchmark, fn: Callable):
    """Run the experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0
