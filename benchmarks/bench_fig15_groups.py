"""Figure 15: pipelet-group (cross-pipelet) optimization (§5.4.4).

On programs dominated by short pipelets (one table per branch side),
per-pipelet optimization has little room; letting Pipeleon form groups
across branch diamonds and cache them jointly recovers the loss. The
paper: +6.7% average latency reduction on top of pipelet-based
optimization, up to +37.9% total at k=60%.
"""

from __future__ import annotations

import pytest

from figutil import emit, fmt_table, run_once

from repro.core import CostModel, optimize
from repro.core.search import SearchOptions
from repro.nic.targets import BLUEFIELD2
from repro.synthesis import synthesize_corpus, synthesize_profile

K_VALUES = [0.4, 0.5, 0.6]
N_PROGRAMS = 12


def _reduction(program, profile, model, k, groups):
    baseline = model.expected_latency(program, profile)
    if baseline <= 0:
        return 0.0
    plan = optimize(
        program,
        profile,
        model,
        options=SearchOptions(k=k, enable_groups=groups),
    )
    return 100.0 * max(0.0, plan.total_gain_ns) / baseline


def _run():
    model = CostModel.for_target(BLUEFIELD2)
    # Short pipelets: every branch side is a single table, and the
    # tables are complex enough (ternary) that caching a whole diamond
    # is worthwhile.
    programs = synthesize_corpus(
        N_PROGRAMS,
        n_pipelets=9,
        pipelet_len_min=1,
        pipelet_len_max=1,
        ternary_fraction=0.7,
        lpm_fraction=0.2,
        join_runs=True,  # diamonds reconverge into join runs (Fig. 8)
        base_seed=301,
    )
    results: dict[tuple[float, bool], list[float]] = {}
    for index, program in enumerate(programs):
        profile = synthesize_profile(
            program, seed=700 + index, max_update_rate=0.05
        )
        for k in K_VALUES:
            for groups in (False, True):
                results.setdefault((k, groups), []).append(
                    _reduction(program, profile, model, k, groups)
                )
    return results


def test_fig15_pipelet_groups(benchmark):
    results = run_once(benchmark, _run)
    rows = []
    for k in K_VALUES:
        without = results[(k, False)]
        with_groups = results[(k, True)]
        rows.append(
            (
                f"{int(k * 100)}%",
                sum(without) / len(without),
                sum(with_groups) / len(with_groups),
            )
        )
    emit(
        "fig15_groups",
        fmt_table(
            ["k", "latency_reduction_wo_groups_%",
             "latency_reduction_w_groups_%"],
            rows,
        ),
    )
    # Group optimization adds benefit at every k.
    for k in K_VALUES:
        mean_without = sum(results[(k, False)]) / len(
            results[(k, False)]
        )
        mean_with = sum(results[(k, True)]) / len(results[(k, True)])
        assert mean_with >= mean_without
    # At k=60% the added benefit is material (paper: +6.7% average).
    gain = sum(results[(0.6, True)]) / len(results[(0.6, True)]) - sum(
        results[(0.6, False)]
    ) / len(results[(0.6, False)])
    assert gain > 2.0
    # Per-program: groups never hurt.
    for k in K_VALUES:
        for without, with_groups in zip(
            results[(k, False)], results[(k, True)]
        ):
            assert with_groups >= without - 1e-9
