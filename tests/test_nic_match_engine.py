"""Tests for the match engines, including oracle-equivalence properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ControlPlaneError, UnknownEntryError
from repro.ir.entries import (
    ExactValue,
    LpmValue,
    RangeValue,
    TableEntry,
    TernaryValue,
)
from repro.ir.tables import MatchKey, MatchType
from repro.nic.match_engine import (
    ExactEngine,
    LpmEngine,
    RangeEngine,
    TernaryEngine,
    build_engine,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def keys(*specs):
    return tuple(MatchKey(f, t) for f, t in specs)


class TestBuildEngine:
    def test_exact(self):
        engine = build_engine(keys(("a", MatchType.EXACT)))
        assert isinstance(engine, ExactEngine)

    def test_single_lpm(self):
        engine = build_engine(
            keys(("a", MatchType.EXACT), ("b", MatchType.LPM))
        )
        assert isinstance(engine, LpmEngine)

    def test_two_lpm_falls_back_to_ternary(self):
        engine = build_engine(
            keys(("a", MatchType.LPM), ("b", MatchType.LPM))
        )
        assert isinstance(engine, TernaryEngine)

    def test_ternary(self):
        engine = build_engine(keys(("a", MatchType.TERNARY)))
        assert isinstance(engine, TernaryEngine)

    def test_range(self):
        engine = build_engine(
            keys(("a", MatchType.RANGE), ("b", MatchType.EXACT))
        )
        assert isinstance(engine, RangeEngine)

    def test_no_keys_is_exact(self):
        assert isinstance(build_engine(()), ExactEngine)


class TestExactEngine:
    def test_lookup_hit_and_miss(self):
        engine = ExactEngine(keys(("a", MatchType.EXACT)))
        entry = TableEntry((ExactValue(5),), "act")
        engine.add(entry)
        assert engine.lookup((5,)) is entry
        assert engine.lookup((6,)) is None

    def test_duplicate_key_rejected(self):
        engine = ExactEngine(keys(("a", MatchType.EXACT)))
        engine.add(TableEntry((ExactValue(5),), "act"))
        with pytest.raises(ControlPlaneError):
            engine.add(TableEntry((ExactValue(5),), "other"))
        assert len(engine) == 1  # failed add didn't leak

    def test_wrong_value_kind_rejected(self):
        engine = ExactEngine(keys(("a", MatchType.EXACT)))
        with pytest.raises(ControlPlaneError):
            engine.add(TableEntry((TernaryValue(1, 1),), "act"))

    def test_arity_mismatch_rejected(self):
        engine = ExactEngine(
            keys(("a", MatchType.EXACT), ("b", MatchType.EXACT))
        )
        with pytest.raises(ControlPlaneError):
            engine.add(TableEntry((ExactValue(1),), "act"))

    def test_remove(self):
        engine = ExactEngine(keys(("a", MatchType.EXACT)))
        entry = TableEntry((ExactValue(5),), "act")
        engine.add(entry)
        engine.remove(entry.entry_id)
        assert engine.lookup((5,)) is None
        with pytest.raises(UnknownEntryError):
            engine.remove(entry.entry_id)

    def test_memory_accesses_constant(self):
        engine = ExactEngine(keys(("a", MatchType.EXACT)))
        assert engine.memory_accesses == 1
        for i in range(10):
            engine.add(TableEntry((ExactValue(i),), "act"))
        assert engine.memory_accesses == 1


class TestLpmEngine:
    def make(self):
        return LpmEngine(
            keys(("port", MatchType.EXACT), ("dst", MatchType.LPM))
        )

    def test_longest_prefix_wins(self):
        engine = self.make()
        short = TableEntry(
            (ExactValue(1), LpmValue(0x0A000000, 8)), "short"
        )
        long = TableEntry(
            (ExactValue(1), LpmValue(0x0A010000, 16)), "long"
        )
        engine.add(short)
        engine.add(long)
        assert engine.lookup((1, 0x0A010203)) is long
        assert engine.lookup((1, 0x0A990203)) is short

    def test_exact_key_must_match(self):
        engine = self.make()
        engine.add(TableEntry((ExactValue(1), LpmValue(0, 0)), "any"))
        assert engine.lookup((2, 1234)) is None
        assert engine.lookup((1, 1234)) is not None

    def test_memory_accesses_tracks_prefix_lengths(self):
        engine = self.make()
        assert engine.memory_accesses == 1
        engine.add(TableEntry((ExactValue(1), LpmValue(0, 8)), "a"))
        engine.add(
            TableEntry((ExactValue(1), LpmValue(0x0A000000, 16)), "b")
        )
        engine.add(
            TableEntry((ExactValue(1), LpmValue(0x0B000000, 16)), "c")
        )
        assert engine.memory_accesses == 2
        for entry in list(engine.entries()):
            engine.remove(entry.entry_id)
        assert engine.memory_accesses == 1

    def test_requires_exactly_one_lpm(self):
        with pytest.raises(ControlPlaneError):
            LpmEngine(keys(("a", MatchType.EXACT)))

    def test_default_route(self):
        engine = self.make()
        default = TableEntry((ExactValue(1), LpmValue(0, 0)), "default")
        engine.add(default)
        assert engine.lookup((1, 0xDEADBEEF)) is default

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(u32, st.integers(min_value=0, max_value=32)),
            min_size=1,
            max_size=12,
        ),
        u32,
    )
    def test_agrees_with_oracle(self, rows, probe):
        """Property: LPM lookup == longest matching prefix by scan."""
        engine = LpmEngine(keys(("dst", MatchType.LPM)))
        seen = set()
        for value, plen in rows:
            lpm = LpmValue(value, plen)
            key = (plen, value & lpm.mask)
            if key in seen:
                continue
            seen.add(key)
            engine.add(TableEntry((lpm,), "act", priority=plen))
        got = engine.lookup((probe,))
        expected = engine.oracle_lookup((probe,))
        if expected is None:
            assert got is None
        else:
            # Both must match; the engine returns the longest prefix,
            # the oracle the highest priority (= prefix length here).
            assert got is not None
            got_len = got.match_values[0].prefix_len
            exp_len = expected.match_values[0].prefix_len
            assert got_len == exp_len


class TestTernaryEngine:
    def test_priority_wins(self):
        engine = TernaryEngine(keys(("f", MatchType.TERNARY)))
        low = TableEntry((TernaryValue(0, 0),), "low", priority=0)
        high = TableEntry(
            (TernaryValue(0x10, 0xF0),), "high", priority=5
        )
        engine.add(low)
        engine.add(high)
        assert engine.lookup((0x12,)) is high
        assert engine.lookup((0x22,)) is low

    def test_mixed_exact_and_ternary_keys(self):
        engine = TernaryEngine(
            keys(("a", MatchType.EXACT), ("b", MatchType.TERNARY))
        )
        entry = TableEntry(
            (ExactValue(7), TernaryValue(0x100, 0xF00)), "act"
        )
        engine.add(entry)
        assert engine.lookup((7, 0x123)) is entry
        assert engine.lookup((8, 0x123)) is None

    def test_memory_accesses_counts_mask_groups(self):
        engine = TernaryEngine(keys(("f", MatchType.TERNARY)))
        assert engine.memory_accesses == 1
        for i in range(4):
            engine.add(
                TableEntry(
                    (TernaryValue(i, 0xFF << (4 * i)),), "act"
                )
            )
        assert engine.memory_accesses == 4

    def test_remove_cleans_groups(self):
        engine = TernaryEngine(keys(("f", MatchType.TERNARY)))
        entry = TableEntry((TernaryValue(1, 0xFF),), "act")
        engine.add(entry)
        engine.remove(entry.entry_id)
        assert engine.memory_accesses == 1
        assert engine.lookup((1,)) is None

    def test_range_values_rejected(self):
        engine = TernaryEngine(keys(("f", MatchType.TERNARY)))
        with pytest.raises(ControlPlaneError):
            engine.add(TableEntry((RangeValue(1, 2),), "act"))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                u32, u32, st.integers(min_value=0, max_value=100)
            ),
            max_size=12,
        ),
        u32,
    )
    def test_agrees_with_oracle(self, rows, probe):
        """Property: ternary lookup == highest-priority linear scan."""
        engine = TernaryEngine(keys(("f", MatchType.TERNARY)))
        for value, mask, priority in rows:
            engine.add(
                TableEntry(
                    (TernaryValue(value, mask),), "act", priority=priority
                )
            )
        got = engine.lookup((probe,))
        expected = engine.oracle_lookup((probe,))
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got.priority == expected.priority


class TestRangeEngine:
    def test_range_lookup(self):
        engine = RangeEngine(keys(("p", MatchType.RANGE)))
        entry = TableEntry((RangeValue(1000, 2000),), "act")
        engine.add(entry)
        assert engine.lookup((1500,)) is entry
        assert engine.lookup((2001,)) is None

    def test_memory_accesses_capped(self):
        engine = RangeEngine(keys(("p", MatchType.RANGE)))
        for i in range(20):
            engine.add(
                TableEntry((RangeValue(i * 10, i * 10 + 5),), "act")
            )
        assert engine.memory_accesses == 8
