"""ShardedDeployment and controller wiring: profiles, redeploys.

Complements ``test_nic_sharding.py`` (raw engine equivalence) with the
deployment-layer contracts: shard-merged profiles must match a
single-core deployment's profile, and the adaptation loop must work
unchanged when ``jobs > 1`` — including shard-wide redeploys.
"""

import pytest

from repro.apps import l2l3_acl
from repro.core import (
    ControllerOptions,
    Deployment,
    PipeleonController,
    ShardedDeployment,
)
from repro.core.sharded import ShardedDeployment as ShardedDeploymentDirect
from repro.nic.targets import EMULATED_NIC
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator


def packets(seed: int, n: int = 400):
    flows = synth_flows(64)
    return list(TrafficGenerator(seed).stream(flows, n, locality="zipf"))


def make_pair(n_workers: int = 2):
    single = Deployment(l2l3_acl.build_program(), EMULATED_NIC)
    l2l3_acl.install_base_entries(single.control_plane)
    sharded = ShardedDeployment(
        l2l3_acl.build_program(), EMULATED_NIC, n_workers=n_workers
    )
    l2l3_acl.install_base_entries(sharded.control_plane)
    return single, sharded


class TestShardMergedProfile:
    def test_profile_matches_single_core(self):
        single, sharded = make_pair(4)
        try:
            single.replay(packets(5), offered_pps=1e6)
            sharded.replay(packets(5), offered_pps=1e6)
            reference = single.profile(offered_pps=1e6)
            merged = sharded.profile(offered_pps=1e6)
            assert set(merged.action_probs) == set(
                reference.action_probs
            )
            for table, probs in reference.action_probs.items():
                for action, prob in probs.items():
                    assert merged.action_probs[table][
                        action
                    ] == pytest.approx(prob, abs=1e-12)
            for branch, prob in reference.branch_probs.items():
                assert merged.branch_probs[branch] == pytest.approx(
                    prob, abs=1e-12
                )
            assert merged.entry_counts == reference.entry_counts
            assert merged.table_m == reference.table_m
            assert merged.update_rates == reference.update_rates
            for name, rate in reference.cache_hit_rates.items():
                assert merged.cache_hit_rates[name] == pytest.approx(
                    rate, abs=1e-12
                )
            # Shard loads sum back to the offered total.
            assert merged.offered_pps == pytest.approx(1e6)
        finally:
            sharded.close()

    def test_profile_support_counts_pool(self):
        _, sharded = make_pair(2)
        try:
            sharded.replay(packets(6, n=200))
            profile = sharded.profile()
            # Support equals sampled observations pooled over shards:
            # at stride 1, each table's support is the traffic that
            # reached it, bounded by the stream size.
            assert profile.action_support
            for support in profile.action_support.values():
                assert 0 < support <= 200
        finally:
            sharded.close()


class TestShardedDeploymentLifecycle:
    def test_close_detaches_listener_and_workers(self):
        _, sharded = make_pair(2)
        listeners = sharded.control_plane._listeners
        assert sharded._on_update in listeners
        sharded.close()
        assert sharded._on_update not in listeners
        assert sharded.emulator._closed
        sharded.close()  # idempotent

    def test_context_manager(self):
        with ShardedDeploymentDirect(
            l2l3_acl.build_program(), EMULATED_NIC, n_workers=2
        ) as sharded:
            l2l3_acl.install_base_entries(sharded.control_plane)
            stats = sharded.replay(packets(1, n=50))
            assert stats.packets == 50
        assert sharded.emulator._closed

    def test_run_is_replay(self):
        single, sharded = make_pair(2)
        try:
            reference = single.run(packets(9, n=100), offered_pps=1e6)
            replayed = sharded.run(packets(9, n=100), offered_pps=1e6)
            assert replayed.packets == reference.packets
            assert (
                replayed.total_latency_ns == reference.total_latency_ns
            )
        finally:
            sharded.close()


class TestControllerJobs:
    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            PipeleonController(
                l2l3_acl.build_program(), EMULATED_NIC, jobs=0
            )

    def test_sharded_controller_matches_single(self):
        reference_controller = PipeleonController(
            l2l3_acl.build_program(), EMULATED_NIC, enabled=False
        )
        sharded_controller = PipeleonController(
            l2l3_acl.build_program(), EMULATED_NIC, enabled=False, jobs=2
        )
        try:
            assert isinstance(
                sharded_controller.deployment, ShardedDeployment
            )
            for controller in (
                reference_controller,
                sharded_controller,
            ):
                l2l3_acl.install_base_entries(controller.control_plane)
            reference = reference_controller.deployment.replay(
                packets(13), offered_pps=1e6
            )
            replayed = sharded_controller.deployment.replay(
                packets(13), offered_pps=1e6
            )
            assert replayed.packets == reference.packets
            assert replayed.dropped == reference.dropped
            assert (
                replayed.total_latency_ns == reference.total_latency_ns
            )
            assert replayed._busy_ns == reference._busy_ns
        finally:
            sharded_controller.deployment.close()

    def test_redeploy_is_shard_wide(self):
        controller = PipeleonController(
            l2l3_acl.build_program(),
            EMULATED_NIC,
            jobs=2,
            options=ControllerOptions(profile_period_s=1.0),
        )
        try:
            l2l3_acl.install_base_entries(controller.control_plane)
            controller.deployment.replay(packets(2), offered_pps=1e6)
            previous = controller.deployment
            changed = controller.maybe_reoptimize()
            if changed:
                # Plan change: the whole worker fleet was torn down and
                # reforked from the newly materialised template.
                assert controller.deployment is not previous
                assert previous.emulator._closed
            assert isinstance(controller.deployment, ShardedDeployment)
            assert controller.deployment.n_workers == 2
            # The new fleet serves traffic.
            stats = controller.deployment.replay(
                packets(3, n=100), offered_pps=1e6
            )
            assert stats.packets == 100
        finally:
            controller.deployment.close()
