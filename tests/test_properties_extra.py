"""Extra property-based tests on core invariants."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.core import CostModel, global_search, partition, uniform_profile
from repro.core.plan import Candidate, ResourceBudget, Segment
from repro.core.search import SearchOptions
from repro.ir.program import Program
from repro.ir.tables import TableKind, TableNode
from repro.nic.targets import BLUEFIELD2
from repro.synthesis import ProgramSynthesizer, SynthesisConfig


def make_candidate(pipelet_id, gain, mem_units, memory_unit):
    tables = (f"{pipelet_id}_a", f"{pipelet_id}_b")
    return Candidate(
        pipelet_id=pipelet_id,
        run=tables,
        order=tables,
        segments=(Segment("cache", tables),),
        gain_ns=gain,
        memory_bytes=mem_units * memory_unit,
        update_pps=0.0,
    )


class TestKnapsackOptimality:
    """The grouped knapsack matches brute force when candidate costs
    align with the discretization grid (no rounding slack)."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10000))
    def test_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        options = SearchOptions(memory_grid=16, update_grid=4)
        budget_units = 16
        memory_unit = 100.0
        budget = ResourceBudget(
            memory_bytes=budget_units * memory_unit
        )
        groups = {}
        for g in range(rng.randint(1, 4)):
            candidates = [
                make_candidate(
                    f"p{g}",
                    gain=rng.randint(1, 50),
                    mem_units=rng.randint(0, 12),
                    memory_unit=memory_unit,
                )
                for _ in range(rng.randint(1, 3))
            ]
            groups[f"p{g}"] = candidates

        chosen = global_search(groups, budget, options)
        knapsack_gain = sum(c.gain_ns for c in chosen)
        assert sum(c.memory_bytes for c in chosen) <= (
            budget.memory_bytes
        )

        # Brute force over at-most-one-per-group selections.
        best = 0.0
        option_lists = [
            [None] + candidates for candidates in groups.values()
        ]
        for combo in itertools.product(*option_lists):
            picked = [c for c in combo if c is not None]
            total_mem = sum(c.memory_bytes for c in picked)
            if total_mem <= budget.memory_bytes:
                best = max(best, sum(c.gain_ns for c in picked))
        assert knapsack_gain == best


class TestPartitionInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=1, max_value=14),
    )
    def test_pipelets_partition_plain_tables(self, seed, n_pipelets):
        """Every reachable plain table is in exactly one pipelet, and
        each pipelet is a contiguous single-next run."""
        program = ProgramSynthesizer(
            SynthesisConfig(n_pipelets=n_pipelets, seed=seed)
        ).generate()
        pipelets = partition(program, max_len=5)
        seen: dict[str, int] = {}
        for pipelet in pipelets:
            assert len(pipelet) >= 1
            assert len(pipelet) <= 5 or pipelet.is_switch_case
            for i, name in enumerate(pipelet.table_names):
                seen[name] = seen.get(name, 0) + 1
                node = program.table(name)
                if i + 1 < len(pipelet.table_names):
                    nexts = set(node.next_map.values())
                    assert nexts == {pipelet.table_names[i + 1]}
        reachable = program.reachable()
        plain = {
            t.name
            for t in program.plain_tables()
            if t.name in reachable
        }
        assert set(seen) == plain
        assert all(count == 1 for count in seen.values())

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2000))
    def test_reach_probabilities_bounded(self, seed):
        """0 <= P(reach v) <= 1 for every node under random profiles."""
        from repro.synthesis import synthesize_profile

        program = ProgramSynthesizer(
            SynthesisConfig(n_pipelets=6, seed=seed)
        ).generate()
        profile = synthesize_profile(program, seed=seed)
        model = CostModel.for_target(BLUEFIELD2)
        probs = model.reach_probs(program, profile)
        for name, p in probs.items():
            assert -1e-9 <= p <= 1.0 + 1e-9, (name, p)
        assert probs[program.root] == 1.0


class TestCounterTranslationTotals:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_reorder_preserves_counter_totals(self, seed):
        """After a pure reorder, translated per-table action counts are
        identical to what the original program would have counted."""
        from repro.core import Deployment
        from repro.core.plan import Candidate, OptimizationPlan, Segment
        from repro.nic.packet import make_packet
        from repro.ir.dependency import valid_orders
        from repro.nic.targets import EMULATED_NIC

        program = ProgramSynthesizer(
            SynthesisConfig(
                n_pipelets=2, seed=seed, drop_table_fraction=0.0
            )
        ).generate()
        pipelets = [
            p for p in partition(program, max_len=6) if len(p) >= 2
        ]
        if not pipelets:
            return
        pipelet = pipelets[0]
        tables = pipelet.tables(program)
        orders = list(valid_orders(tables, 3))
        order = orders[-1]
        plan = OptimizationPlan(
            candidates=[
                Candidate(
                    pipelet_id=pipelet.pipelet_id,
                    run=pipelet.table_names,
                    order=order,
                    segments=tuple(
                        Segment("none", (n,)) for n in order
                    ),
                    gain_ns=0.0,
                    memory_bytes=0.0,
                    update_pps=0.0,
                )
            ]
        )
        packets = [make_packet() for _ in range(20)]
        base = Deployment(program, EMULATED_NIC, native_cache=False)
        base.run([p.clone() for p in packets])
        base_counts = base.counter_map.translate(
            base.emulator.counters.snapshot()
        )
        reordered = Deployment(
            program, EMULATED_NIC, plan=plan, native_cache=False
        )
        reordered.run([p.clone() for p in packets])
        reordered_counts = reordered.counter_map.translate(
            reordered.emulator.counters.snapshot()
        )
        assert reordered_counts == base_counts
