"""Live telemetry plane: streaming snapshots, flight recorder, SLOs.

The contract under test (DESIGN.md §16): a running sharded replay is
observable *while it runs* —

* shard workers stream snapshots over per-shard sidecar pipes, merged
  by a background :class:`LiveAggregator` into flight-recorder rows and
  a scrapeable metrics registry;
* the ``/metrics`` endpoint serves strictly conformant Prometheus
  exposition text mid-replay, and the live packet counters converge
  exactly to the final summary once the forced end-of-replay snapshot
  lands;
* under the deterministic packet-count cadence, per-shard rows are a
  pure function of the traffic — bit-stable across runs once
  :meth:`FlightRecorder.canonical` strips wall clocks;
* a worker kill under the respawn policy produces exactly one
  ``slo_breach`` and one ``slo_clear`` heartbeat episode (latched, not
  per-interval), deterministically — the respawn counter, not a wall
  clock, witnesses the death;
* an SLO breach schedules an immediate controller re-optimization.
"""

import json
import re
import time
import urllib.request

import pytest

from repro.apps import l2l3_acl
from repro.cli import main
from repro.core import ShardedDeployment
from repro.core.sharded import Deployment
from repro.nic.faults import FaultPlan, FaultSpec
from repro.nic.sharding import SupervisorOptions
from repro.nic.targets import EMULATED_NIC
from repro.telemetry import Telemetry
from repro.telemetry.events import EventLog
from repro.telemetry.export import export_event_log
from repro.telemetry.live import (
    LiveAggregator,
    LiveOptions,
    MetricsServer,
    render_top,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import (
    SloRule,
    SloWatchdog,
    load_slo_rules,
)
from repro.telemetry.timeseries import WALL_FIELDS, FlightRecorder
from tests.test_nic_sharding import app_packets

pytestmark = pytest.mark.tier1


def make_live(
    n_workers: int = 2,
    live: LiveOptions = None,
    fault_plan=None,
    supervisor=None,
    telemetry=None,
) -> ShardedDeployment:
    sharded = ShardedDeployment(
        l2l3_acl.build_program(),
        EMULATED_NIC,
        n_workers=n_workers,
        live=live,
        fault_plan=fault_plan,
        supervisor=supervisor,
        telemetry=telemetry,
    )
    l2l3_acl.install_base_entries(sharded.control_plane)
    return sharded


def wait_for(predicate, timeout_s: float = 5.0, tick_s: float = 0.01):
    """Poll ``predicate`` until truthy; the aggregator is a thread."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(tick_s)
    return predicate()


# ---------------------------------------------------------------------------
# Prometheus exposition conformance (satellite: scrape format)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(?:\{([^}]*)\})?"  # optional label set
    r" (-?(?:[0-9.e+-]+|\+Inf|-Inf|NaN))$"  # value
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str):
    """Strictly parse Prometheus text format 0.0.4.

    Returns ``(types, samples)`` where ``types`` maps family name ->
    declared type and ``samples`` is a list of
    ``(name, labels_dict, value)``. Asserts structural conformance on
    the way: HELP/TYPE declared exactly once per family, HELP before
    TYPE before that family's samples, no undeclared samples, and no
    unparseable lines.
    """
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    sampled: set[str] = set()
    samples = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name not in helps, f"duplicate HELP for {name}"
            assert name not in sampled, f"HELP after samples for {name}"
            assert help_text, f"empty HELP for {name}"
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name not in types, f"duplicate TYPE for {name}"
            assert name in helps, f"TYPE before HELP for {name}"
            assert name not in sampled, f"TYPE after samples for {name}"
            assert kind in {"counter", "gauge", "histogram", "summary"}
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, labels_text, value = match.groups()
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        declared = name if name in types else family
        assert declared in types, f"sample {name} has no TYPE"
        if name != declared:
            assert types[declared] == "histogram", (
                f"{name}: _bucket/_sum/_count on non-histogram family"
            )
        sampled.add(declared)
        labels = dict(_LABEL_RE.findall(labels_text or ""))
        samples.append((name, labels, float(value)))
    return types, samples


def check_histograms(types: dict, samples: list) -> int:
    """Conformance of every histogram family; returns series checked.

    Cumulative buckets must be monotone non-decreasing, end at
    ``le="+Inf"``, and agree with the family's ``_count``; ``_sum``
    must exist for every series.
    """
    checked = 0
    for family, kind in types.items():
        if kind != "histogram":
            continue
        series: dict[tuple, dict] = {}
        for name, labels, value in samples:
            if not name.startswith(family):
                continue
            suffix = name[len(family):]
            key = tuple(
                sorted(
                    (k, v) for k, v in labels.items() if k != "le"
                )
            )
            record = series.setdefault(
                key, {"buckets": [], "sum": None, "count": None}
            )
            if suffix == "_bucket":
                record["buckets"].append((labels["le"], value))
            elif suffix == "_sum":
                record["sum"] = value
            elif suffix == "_count":
                record["count"] = value
        assert series, f"histogram family {family} has no samples"
        for key, record in series.items():
            buckets = record["buckets"]
            assert buckets, f"{family}{dict(key)}: no buckets"
            assert buckets[-1][0] == "+Inf", (
                f"{family}{dict(key)}: buckets must end at le=+Inf"
            )
            counts = [value for _, value in buckets]
            assert counts == sorted(counts), (
                f"{family}{dict(key)}: cumulative buckets not monotone"
            )
            bounds = [float(le) for le, _ in buckets[:-1]]
            assert bounds == sorted(bounds), (
                f"{family}{dict(key)}: bucket bounds out of order"
            )
            assert record["count"] == counts[-1], (
                f"{family}{dict(key)}: _count != +Inf bucket"
            )
            assert record["sum"] is not None, (
                f"{family}{dict(key)}: missing _sum"
            )
            checked += 1
    return checked


class TestPrometheusConformance:
    def test_live_exposition_is_conformant(self):
        """A real live replay's scrape passes the strict parser."""
        sharded = make_live(
            n_workers=2, live=LiveOptions(every_packets=64)
        )
        try:
            sharded.replay(app_packets(3, 600))
            assert wait_for(
                lambda: "pipeleon_live_latency_ns_bucket"
                in sharded.live.prometheus()
            )
            text = sharded.live.prometheus()
        finally:
            sharded.close()
        types, samples = parse_exposition(text)
        assert types["pipeleon_live_packets_total"] == "counter"
        assert types["pipeleon_live_worker_alive"] == "gauge"
        assert types["pipeleon_live_latency_ns"] == "histogram"
        assert types["pipeleon_events_dropped_total"] == "counter"
        assert check_histograms(types, samples) >= 2  # one per shard
        shards = {
            labels["shard"]
            for name, labels, _ in samples
            if name == "pipeleon_live_packets_total"
        }
        assert shards == {"0", "1"}

    def test_batch_registry_also_conformant(self):
        """The parser generalises: PR 3's batch export passes too."""
        registry = MetricsRegistry()
        registry.inc("x_total", 3.0, help="X", job="a")
        hist = registry.histogram("lat_ns", help="Latency")
        for value in (10, 100, 1000):
            hist.observe(value)
        types, samples = parse_exposition(registry.to_prometheus())
        assert check_histograms(types, samples) == 1


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_window_rotation_counts_dropped(self):
        recorder = FlightRecorder(window=3)
        for i in range(5):
            recorder.append({"kind": "interval", "i": i})
        assert recorder.appended == 5
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert [r["i"] for r in recorder.rows()] == [2, 3, 4]
        # The monotone row stamp survives rotation.
        assert [r["row"] for r in recorder.rows()] == [2, 3, 4]

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            FlightRecorder(window=0)

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with FlightRecorder(window=2, sink_path=str(path)) as recorder:
            for i in range(4):
                recorder.append({"kind": "shard", "i": i})
        rows = FlightRecorder.parse_jsonl(path.read_text())
        # The sink keeps the full history even after the window rotates.
        assert [r["i"] for r in rows] == [0, 1, 2, 3]
        assert [r["row"] for r in rows] == [0, 1, 2, 3]

    def test_sink_failures_counted_not_raised(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(sink_path=str(path))
        recorder._sink.close()  # simulate a revoked fd
        recorder.append({"kind": "interval"})
        recorder.append({"kind": "interval"})
        assert recorder.appended == 2  # rows still recorded in-memory
        assert recorder.sink_failures == 2
        recorder._sink = None  # already closed; skip double-close

    def test_strip_wall_recurses(self):
        row = {
            "kind": "interval",
            "wall_s": 1.0,
            "packets": 7,
            "shards": [{"shard": 0, "age_s": 0.2, "packets": 7}],
        }
        stripped = FlightRecorder.strip_wall(row)
        assert stripped == {
            "kind": "interval",
            "packets": 7,
            "shards": [{"shard": 0, "packets": 7}],
        }
        assert "wall_s" in row  # original untouched

    def test_canonical_orders_and_drops_row_stamp(self):
        rows = [
            {"kind": "shard", "shard": 1, "seq": 0, "row": 0,
             "mono_s": 0.1, "packets": 5},
            {"kind": "shard", "shard": 0, "seq": 1, "row": 1,
             "mono_s": 0.2, "packets": 9},
            {"kind": "shard", "shard": 0, "seq": 0, "row": 2,
             "mono_s": 0.3, "packets": 4},
        ]
        canonical = FlightRecorder.canonical(rows)
        assert canonical == [
            {"kind": "shard", "shard": 0, "seq": 0, "packets": 4},
            {"kind": "shard", "shard": 0, "seq": 1, "packets": 9},
            {"kind": "shard", "shard": 1, "seq": 0, "packets": 5},
        ]

    def test_last_filters_by_kind(self):
        recorder = FlightRecorder()
        recorder.append({"kind": "shard", "seq": 0})
        recorder.append({"kind": "interval", "packets": 3})
        assert recorder.last("shard")["seq"] == 0
        assert recorder.last("interval")["packets"] == 3
        assert recorder.last("missing") is None


# ---------------------------------------------------------------------------
# SLO rules and watchdog
# ---------------------------------------------------------------------------


class TestSloRule:
    def test_auto_name_and_bound(self):
        rule = SloRule(metric="p99_latency_ns", max=1000.0)
        assert rule.name == "p99_latency_ns_max"
        assert rule.bound == 1000.0
        assert not rule.per_shard
        floor = SloRule(metric="cache_hit_rate", min=0.5)
        assert floor.name == "cache_hit_rate_min"

    def test_violated_semantics(self):
        ceiling = SloRule(metric="ring_stall_rate", max=0.05)
        assert ceiling.violated(0.06)
        assert not ceiling.violated(0.05)  # bound itself holds
        assert not ceiling.violated(None)  # no data holds
        floor = SloRule(metric="cache_hit_rate", min=0.9)
        assert floor.violated(0.5)
        assert not floor.violated(0.95)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="Unknown SLO metric"):
            SloRule(metric="cpu_temperature", max=1.0)

    def test_exactly_one_bound_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            SloRule(metric="cache_hit_rate")
        with pytest.raises(ValueError, match="exactly one"):
            SloRule(metric="cache_hit_rate", max=1.0, min=0.0)

    def test_json_round_trip(self):
        rule = SloRule(metric="heartbeat_staleness_s", max=2.0)
        assert SloRule.from_json(rule.to_json()) == rule
        with pytest.raises(ValueError, match="Unknown SLO rule keys"):
            SloRule.from_json({"metric": "cache_hit_rate", "ceil": 1})

    def test_load_rules_file_forms(self, tmp_path):
        bare = tmp_path / "bare.json"
        bare.write_text(
            json.dumps([{"metric": "p99_latency_ns", "max": 5000.0}])
        )
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(
            json.dumps(
                {"rules": [{"metric": "cache_hit_rate", "min": 0.5}]}
            )
        )
        assert load_slo_rules(str(bare))[0].metric == "p99_latency_ns"
        assert load_slo_rules(str(wrapped))[0].min == 0.5
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"nope": 1}))
        assert load_slo_rules(str(bad)) == ()
        notalist = tmp_path / "notalist.json"
        notalist.write_text(json.dumps("rules"))
        with pytest.raises(ValueError, match="expected a rule list"):
            load_slo_rules(str(notalist))


class TestSloWatchdog:
    def test_breaches_latch_into_episodes(self):
        events = EventLog()
        watchdog = SloWatchdog(
            [SloRule(metric="p99_latency_ns", max=100.0)], events=events
        )
        # Three breaching samples, then two healthy ones: one episode.
        for value in (150.0, 200.0, 300.0):
            watchdog.evaluate({"p99_latency_ns": value})
        assert watchdog.breaches == 1
        assert watchdog.active_breaches == ["p99_latency_ns_max"]
        for value in (50.0, 40.0):
            watchdog.evaluate({"p99_latency_ns": value})
        assert (watchdog.breaches, watchdog.clears) == (1, 1)
        assert watchdog.active_breaches == []
        kinds = [e["kind"] for e in events.events()]
        assert kinds == ["slo_breach", "slo_clear"]
        assert events.events("slo_breach")[0]["value"] == 150.0

    def test_per_shard_rule_uses_forced_stale(self):
        watchdog = SloWatchdog(
            [SloRule(metric="heartbeat_staleness_s", max=10.0)]
        )
        healthy = {"heartbeat_staleness_s": 0.1, "forced_stale": False}
        # Fresh heartbeat but a death was observed: still a breach.
        stale = {"heartbeat_staleness_s": 0.1, "forced_stale": True}
        emitted = watchdog.evaluate({"shards": {0: stale, 1: healthy}})
        assert [e["kind"] for e in emitted] == ["slo_breach"]
        assert emitted[0]["shard"] == 0
        assert watchdog.active_breaches == [
            "heartbeat_staleness_s_max:0"
        ]
        emitted = watchdog.evaluate({"shards": {0: healthy, 1: healthy}})
        assert [e["kind"] for e in emitted] == ["slo_clear"]

    def test_subscribers_see_every_event(self):
        seen = []
        watchdog = SloWatchdog(
            [SloRule(metric="cache_hit_rate", min=0.9)]
        )
        watchdog.subscribe(seen.append)
        watchdog.evaluate({"cache_hit_rate": 0.2})
        watchdog.evaluate({"cache_hit_rate": 0.99})
        assert [e["kind"] for e in seen] == ["slo_breach", "slo_clear"]

    def test_missing_data_holds(self):
        watchdog = SloWatchdog(
            [SloRule(metric="p99_latency_ns", max=1.0)]
        )
        assert watchdog.evaluate({}) == []
        assert watchdog.breaches == 0


# ---------------------------------------------------------------------------
# EventLog accounting (satellite: drop/sink-failure counters)
# ---------------------------------------------------------------------------


class TestEventLogAccounting:
    def test_ring_rotation_reported_as_dropped(self):
        events = EventLog(capacity=3)
        for i in range(5):
            events.emit("tick", i=i)
        assert events.emitted == 5
        assert events.dropped == 2

    def test_sink_failures_counted_not_raised(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = EventLog(sink_path=str(path))
        events.emit("ok")
        events._sink.close()  # simulate disk revocation mid-run
        events.emit("lost")
        assert events.emitted == 2
        assert events.sink_failures == 1
        events._sink = None

    def test_export_event_log_metrics(self):
        events = EventLog(capacity=2)
        for i in range(4):
            events.emit("tick", i=i)
        events.sink_failures = 3
        registry = MetricsRegistry()
        export_event_log(registry, events)
        assert registry.value("pipeleon_events_emitted_total") == 4.0
        assert registry.value("pipeleon_events_dropped_total") == 2.0
        assert (
            registry.value("pipeleon_event_sink_failures_total") == 3.0
        )


# ---------------------------------------------------------------------------
# Live options
# ---------------------------------------------------------------------------


class TestLiveOptions:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval_s"):
            LiveOptions(interval_s=0.0)
        with pytest.raises(ValueError, match="every_packets"):
            LiveOptions(every_packets=0)
        with pytest.raises(ValueError, match="window"):
            LiveOptions(window=0)
        with pytest.raises(ValueError, match="serve_port"):
            LiveOptions(serve_port=70000)
        with pytest.raises(TypeError, match="SloRule"):
            LiveOptions(rules=[{"metric": "cache_hit_rate", "min": 1}])

    def test_rules_coerced_to_tuple(self):
        rule = SloRule(metric="cache_hit_rate", min=0.5)
        assert LiveOptions(rules=[rule]).rules == (rule,)


# ---------------------------------------------------------------------------
# End-to-end: live replay, HTTP scrape, convergence, bit-stability
# ---------------------------------------------------------------------------


def scrape(port: int, path: str = "/metrics") -> tuple[int, str, str]:
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return error.code, "", ""


class TestLiveReplayEndToEnd:
    def test_scrape_converges_to_summary(self, tmp_path):
        """4-worker replay: served live counters match the final stats.

        The forced end-of-replay snapshot plus one aggregator tick make
        the live registry exact, not approximate, once the replay
        returns — the acceptance bound of "within one snapshot
        interval" with margin to spare.
        """
        flight = tmp_path / "flight.jsonl"
        sharded = make_live(
            n_workers=4,
            live=LiveOptions(
                interval_s=0.05,
                flight_path=str(flight),
                serve_port=0,
                rules=(SloRule(metric="cache_hit_rate", min=0.0),),
            ),
        )
        try:
            port = sharded.live_server.port
            assert port and port > 0  # ephemeral port resolved
            stats = sharded.replay(app_packets(11, 2000))

            def converged():
                _, _, text = scrape(port)
                _, samples = parse_exposition(text)
                return sum(
                    value
                    for name, _, value in samples
                    if name == "pipeleon_live_packets_total"
                ) == stats.packets
            assert wait_for(converged, timeout_s=5.0)

            status, content_type, text = scrape(port)
            assert status == 200
            assert content_type.startswith("text/plain")
            types, samples = parse_exposition(text)
            check_histograms(types, samples)
            alive = [
                (labels["shard"], value)
                for name, labels, value in samples
                if name == "pipeleon_live_worker_alive"
            ]
            assert sorted(alive) == [(str(s), 1.0) for s in range(4)]

            status, content_type, body = scrape(port, "/health")
            assert status == 200 and content_type == "application/json"
            health = json.loads(body)
            assert health["status"] == "ok"
            assert len(health["shards"]) == 4

            assert scrape(port, "/nope")[0] == 404
        finally:
            sharded.close()
        # The flight sink survives close() and ends on a final row.
        rows = FlightRecorder.parse_jsonl(flight.read_text())
        finals = [r for r in rows if r.get("final")]
        assert len(finals) == 1
        assert finals[0]["packets"] == stats.packets
        assert finals[0] == rows[-1]

    def test_packet_cadence_rows_bit_stable(self):
        """Deterministic cadence: same traffic -> identical shard rows."""

        def run_once():
            sharded = make_live(
                n_workers=2, live=LiveOptions(every_packets=64)
            )
            try:
                sharded.replay(app_packets(5, 800))
                assert wait_for(
                    lambda: len(sharded.live.recorder.rows("shard")) > 0
                )
                sharded.live.stop()
                return FlightRecorder.canonical(
                    sharded.live.recorder.rows("shard")
                )
            finally:
                sharded.close()

        first = run_once()
        second = run_once()
        assert first, "no shard rows recorded"
        assert first == second
        for row in first:
            assert not WALL_FIELDS & set(row)
            assert "row" not in row
        # Per-shard end totals fold to the full replay.
        last_per_shard = {}
        for row in first:
            last_per_shard[row["shard"]] = row["packets"]
        assert sum(last_per_shard.values()) == 800

    def test_interval_rows_carry_fleet_state(self):
        sharded = make_live(
            n_workers=2, live=LiveOptions(interval_s=0.05)
        )
        try:
            sharded.replay(app_packets(7, 600))
            sharded.live.stop()
            row = sharded.live.recorder.last("interval")
            assert row["packets"] == 600
            assert row["dropped"] >= 0
            assert len(row["shards"]) == 2
            assert all(s["alive"] for s in row["shards"])
            assert row["p99_ns"] is not None
            # Ring gauges ride along from the shm transport.
            assert all(
                s["ring_occupancy"] is not None for s in row["shards"]
            )
        finally:
            sharded.close()


# ---------------------------------------------------------------------------
# Fault interaction: one kill, one breach episode, one clear
# ---------------------------------------------------------------------------


class TestFaultSloInteraction:
    def test_kill_produces_exactly_one_breach_and_clear(self):
        """Satellite contract: kill -> 1 slo_breach + 1 slo_clear.

        The heartbeat bound is set absurdly high (30s), so wall-clock
        staleness can never trip it — only the respawn-counter latch
        (``forced_stale``) can, which is what makes the episode count
        deterministic under a fixed fault seed.
        """
        telemetry = Telemetry()
        rule = SloRule(metric="heartbeat_staleness_s", max=30.0)
        sharded = make_live(
            n_workers=2,
            live=LiveOptions(interval_s=0.03, rules=(rule,)),
            fault_plan=FaultPlan([FaultSpec("kill", shard=0)], seed=7),
            supervisor=SupervisorOptions(
                recovery="respawn", heartbeat_interval_s=0.01
            ),
            telemetry=telemetry,
        )
        try:
            stats = sharded.replay(app_packets(13, 1200))
            assert stats.packets == 1200  # respawn recovered the shard
            assert sharded.worker_respawns == [1, 0]
            watchdog = sharded.live.watchdog
            assert wait_for(
                lambda: watchdog.breaches >= 1 and watchdog.clears >= 1
            ), "breach/clear episode never surfaced"
            # Give the aggregator a few more intervals: the counts must
            # STAY at one each (latched episode, not one per interval).
            time.sleep(0.2)
            assert (watchdog.breaches, watchdog.clears) == (1, 1)
            assert watchdog.active_breaches == []
        finally:
            sharded.close()
        breaches = telemetry.events.events("slo_breach")
        clears = telemetry.events.events("slo_clear")
        assert len(breaches) == 1 and len(clears) == 1
        assert breaches[0]["shard"] == 0
        assert breaches[0]["rule"] == "heartbeat_staleness_s_max"
        # Worker-fault events share the same log: the timeline is whole.
        kinds = {e["kind"] for e in telemetry.events.events()}
        assert "worker_respawned" in kinds or "worker_fault" in kinds


# ---------------------------------------------------------------------------
# Controller: breach-triggered re-optimization
# ---------------------------------------------------------------------------


class TestControllerSloTrigger:
    def make_controller(self):
        from repro.core import PipeleonController, ResourceBudget
        from repro.core.controller import ControllerOptions
        from repro.core.search import SearchOptions
        from repro.ir import linear_program
        from repro.ir.tables import MatchType

        return PipeleonController(
            linear_program("p", 6, MatchType.TERNARY),
            EMULATED_NIC,
            budget=ResourceBudget(memory_bytes=1e6, update_pps=1e5),
            search=SearchOptions(k=1.0),
            # Periodic profiling would not fire inside the scenario:
            # only the SLO trigger can cause a replan.
            options=ControllerOptions(profile_period_s=1000.0),
        )

    def test_breach_schedules_immediate_reoptimize(self):
        from repro.nic.packet import make_packet
        from repro.traffic import Scenario

        controller = self.make_controller()
        watchdog = SloWatchdog(
            [SloRule(metric="p99_latency_ns", max=1.0)]
        )
        controller.attach_slo_watchdog(watchdog)
        watchdog.evaluate({"p99_latency_ns": 50.0})  # breach now
        assert controller.slo_breaches_seen == 1
        scenario = Scenario("slo").add_phase(
            "steady",
            2.0,
            lambda n: [make_packet() for _ in range(n)],
        )
        timeline = controller.run_scenario(scenario, packets_per_tick=30)
        # Tick 1 replans off the pending breach; tick 2 is back to the
        # (far-future) periodic schedule. The trigger is one-shot.
        assert [p.reoptimized for p in timeline] == [True, False]
        assert controller.reoptimizations == 1

    def test_clear_events_do_not_trigger(self):
        controller = self.make_controller()
        watchdog = SloWatchdog(
            [SloRule(metric="cache_hit_rate", min=0.9)]
        )
        controller.attach_slo_watchdog(watchdog)
        watchdog.evaluate({"cache_hit_rate": 0.1})  # breach
        assert controller.consume_slo_trigger()
        watchdog.evaluate({"cache_hit_rate": 0.99})  # clear
        assert not controller.consume_slo_trigger()
        assert controller.slo_breaches_seen == 1


# ---------------------------------------------------------------------------
# Terminal view and CLI plumbing
# ---------------------------------------------------------------------------


class TestRenderTop:
    def test_empty_rows(self):
        frame = render_top([], path="x.jsonl")
        assert "x.jsonl" in frame
        assert "no interval rows yet" in frame

    def test_renders_shards_and_breaches(self):
        rows = [
            {
                "kind": "interval",
                "row": 3,
                "mono_s": 1.5,
                "packets": 900,
                "dropped": 1,
                "p50_ns": 400.0,
                "p99_ns": 900.0,
                "cache_hit_rate": 0.875,
                "ring_stalls": 2,
                "events_emitted": 10,
                "events_dropped": 0,
                "slo_breaches": 1,
                "slo_clears": 0,
                "slo_active": ["heartbeat_staleness_s_max:1"],
                "shards": [
                    {"shard": 0, "packets": 500, "dropped": 0,
                     "alive": True, "respawns": 0, "heartbeats": 4,
                     "ring_occupancy": 0.25, "ring_stalls": 2,
                     "p50_ns": 400.0, "p99_ns": 900.0,
                     "cache_hit_rate": 0.9},
                    {"shard": 1, "packets": 400, "dropped": 1,
                     "alive": False, "respawns": 1, "heartbeats": 3,
                     "ring_occupancy": None, "ring_stalls": 0,
                     "p50_ns": None, "p99_ns": None,
                     "cache_hit_rate": None},
                ],
            }
        ]
        frame = render_top(rows)
        assert "packets 900" in frame
        assert "SLO BREACHED: heartbeat_staleness_s_max:1" in frame
        assert "(respawned)" in frame
        assert "NO" in frame  # dead shard flagged


class TestCli:
    def _replay(self, capsys, *args):
        code = main(["replay", *args])
        return code, capsys.readouterr()

    def test_live_flags_require_jobs(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "100",
            "--target", "emulated_nic",
            "--serve-metrics", "0",
        )
        assert code == 2
        assert "requires --jobs > 1" in captured.err

    def test_bad_slo_file_rejected(self, capsys, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{"metric": "bogus", "max": 1}]))
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "100",
            "--jobs", "2",
            "--target", "emulated_nic",
            "--slo", str(rules),
        )
        assert code == 2
        assert "Unknown SLO metric" in captured.err

    def test_replay_with_live_plane_and_top(self, capsys, tmp_path):
        flight = tmp_path / "flight.jsonl"
        rules = tmp_path / "rules.json"
        rules.write_text(
            json.dumps([{"metric": "p99_latency_ns", "max": 1e12}])
        )
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "600",
            "--jobs", "2",
            "--target", "emulated_nic",
            "--live-interval", "0.05",
            "--slo", str(rules),
            "--flight-out", str(flight),
            "--serve-metrics", "0",
        )
        assert code == 0
        summary = json.loads(captured.out)
        assert summary["packets"] == 600
        live = summary["live"]
        assert live["rows"] >= 1
        assert live["slo_rules"] == 1
        assert live["slo_breaches"] == 0
        assert live["slo_active"] == []
        assert live["flight_out"] == str(flight)
        assert live["metrics_port"] > 0
        rows = FlightRecorder.parse_jsonl(flight.read_text())
        assert rows[-1]["final"] and rows[-1]["packets"] == 600

        code = main(
            ["top", str(flight), "--iterations", "2", "--no-clear"]
        )
        assert code == 0
        frames = capsys.readouterr().out
        assert frames.count("repro top") == 2
        assert "packets 600" in frames
        assert "\x1b[2J" not in frames  # --no-clear means no ANSI

    def test_top_missing_file(self, capsys, tmp_path):
        code = main(
            ["top", str(tmp_path / "nope.jsonl"), "--iterations", "1"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_deterministic_cadence_flag(self, capsys, tmp_path):
        flight = tmp_path / "flight.jsonl"
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "400",
            "--jobs", "2",
            "--target", "emulated_nic",
            "--live-every-packets", "64",
            "--flight-out", str(flight),
        )
        assert code == 0
        rows = FlightRecorder.parse_jsonl(flight.read_text())
        shard_rows = [r for r in rows if r.get("kind") == "shard"]
        assert shard_rows, "packet cadence must record shard rows"
        per_shard = {}
        for row in shard_rows:
            per_shard[row["shard"]] = row["packets"]
        assert sum(per_shard.values()) == 400


# ---------------------------------------------------------------------------
# Aggregator units against a fake emulator (no processes)
# ---------------------------------------------------------------------------


class FakeEmulator:
    """Duck-typed stand-in: canned sidecar pipes + shard status."""

    def __init__(self, n_workers=1):
        self.n_workers = n_workers
        self.live_conns = [None] * n_workers
        self.status = [
            {
                "shard": s,
                "alive": True,
                "dead": False,
                "respawns": 0,
                "ring_occupancy": 0.0,
                "ring_stalls": 0,
                "pushed_batches": 0,
            }
            for s in range(n_workers)
        ]

    def live_shard_status(self):
        return [dict(entry) for entry in self.status]


class TestAggregatorUnits:
    def snapshot(self, shard=0, seq=0, packets=10, **extra):
        base = {
            "shard": shard,
            "seq": seq,
            "mono_s": 0.0,
            "packets": packets,
            "dropped": 0,
            "hist": None,
            "caches": {},
            "native": None,
            "demotions": {},
            "columnar_packets": 0,
            "epoch": 0,
            "dropped_snapshots": 0,
        }
        base.update(extra)
        return base

    def feed(self, aggregator, snapshot):
        """Inject a snapshot as if it arrived over the sidecar pipe."""
        shard = snapshot["shard"]
        aggregator._snapshots[shard] = snapshot
        aggregator._last_seen[shard] = time.monotonic()
        aggregator._heartbeats[shard] = (
            aggregator._heartbeats.get(shard, 0) + 1
        )
        aggregator._forced_stale[shard] = False

    def test_respawn_bump_latches_forced_stale(self):
        emulator = FakeEmulator(n_workers=1)
        aggregator = LiveAggregator(emulator)  # never start()ed
        self.feed(aggregator, self.snapshot())
        sample = aggregator.sample()
        assert not sample["shards"][0]["forced_stale"]
        # Supervisor observed a death: respawns bumps, latch sets even
        # though the worker never missed a wall-clock heartbeat.
        emulator.status[0]["respawns"] = 1
        sample = aggregator.sample()
        assert sample["shards"][0]["forced_stale"]
        # Still latched until a FRESH heartbeat arrives...
        sample = aggregator.sample()
        assert sample["shards"][0]["forced_stale"]
        self.feed(aggregator, self.snapshot(seq=1))
        sample = aggregator.sample()
        assert not sample["shards"][0]["forced_stale"]

    def test_dead_shard_stays_forced_stale(self):
        emulator = FakeEmulator(n_workers=1)
        aggregator = LiveAggregator(emulator)
        self.feed(aggregator, self.snapshot())
        emulator.status[0]["dead"] = True
        self.feed(aggregator, self.snapshot(seq=1))  # stale pipe data
        assert aggregator.sample()["shards"][0]["forced_stale"]

    def test_sample_merges_caches_and_native(self):
        emulator = FakeEmulator(n_workers=2)
        aggregator = LiveAggregator(emulator)
        self.feed(
            aggregator,
            self.snapshot(shard=0, caches={"c": (8, 2)}),
        )
        self.feed(
            aggregator,
            self.snapshot(shard=1, caches={"c": (5, 5)}, native=(9, 1)),
        )
        sample = aggregator.sample()
        assert sample["packets"] == 20
        assert sample["cache_hit_rate"] == pytest.approx(22 / 30)
        assert sample["shards"][0]["cache_hit_rate"] == pytest.approx(
            0.8
        )

    def test_stop_is_idempotent_and_appends_final_row(self):
        aggregator = LiveAggregator(FakeEmulator()).start()
        aggregator.stop()
        rows = aggregator.recorder.rows("interval")
        assert rows and rows[-1]["final"]
        before = aggregator.recorder.appended
        aggregator.stop()
        assert aggregator.recorder.appended == before
