"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import profile_to_json, uniform_profile
from repro.ir import dumps_program, linear_program, loads_program
from repro.ir.tables import MatchType, MemoryTier, TableKind


@pytest.fixture
def program_file(tmp_path):
    program = linear_program("cli_demo", 6, MatchType.TERNARY)
    path = tmp_path / "program.json"
    path.write_text(dumps_program(program))
    return path


class TestOptimize:
    def test_optimize_writes_valid_program(self, program_file, tmp_path):
        out = tmp_path / "optimized.json"
        code = main(
            ["optimize", str(program_file), "-o", str(out), "--k", "1.0"]
        )
        assert code == 0
        optimized = loads_program(out.read_text())
        assert any(
            t.kind is not TableKind.PLAIN for t in optimized.tables()
        )

    def test_optimize_stdout(self, program_file, capsys):
        assert main(["optimize", str(program_file)]) == 0
        out = capsys.readouterr().out
        loads_program(out)  # parses

    def test_optimize_with_profile(self, program_file, tmp_path):
        program = loads_program(program_file.read_text())
        profile = uniform_profile(program)
        profile.set_action_probs(
            "cli_demo_t0",
            {"cli_demo_t0_a0": 0.9, "cli_demo_t0_a1": 0.1},
        )
        profile_path = tmp_path / "profile.json"
        profile_path.write_text(json.dumps(profile_to_json(profile)))
        out = tmp_path / "optimized.json"
        code = main(
            [
                "optimize",
                str(program_file),
                "-o",
                str(out),
                "--profile",
                str(profile_path),
            ]
        )
        assert code == 0

    def test_zero_budget(self, program_file, tmp_path):
        out = tmp_path / "optimized.json"
        code = main(
            [
                "optimize",
                str(program_file),
                "-o",
                str(out),
                "--memory-budget",
                "0",
                "--update-budget",
                "0",
            ]
        )
        assert code == 0
        optimized = loads_program(out.read_text())
        # Nothing that costs memory was added.
        assert all(
            t.kind is TableKind.PLAIN for t in optimized.tables()
        )


class TestInspect:
    def test_inspect_prints_pipelets(self, program_file, capsys):
        assert main(["inspect", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "pipelets" in out
        assert "expected latency" in out
        assert "cli_demo_t0" in out

    def test_unknown_target_fails(self, program_file):
        from repro.errors import EmulationError

        with pytest.raises(EmulationError):
            main(
                ["inspect", str(program_file), "--target", "tofino"]
            )


class TestCalibrate:
    def test_calibrate_prints_constants(self, capsys):
        assert main(["calibrate", "--packets", "40"]) == 0
        out = capsys.readouterr().out
        assert "Lmat=" in out
        assert "m_ternary=" in out


class TestPlacement:
    def test_placement_promotes_tables(self, program_file, tmp_path):
        out = tmp_path / "placed.json"
        code = main(
            [
                "placement",
                str(program_file),
                "-o",
                str(out),
                "--imem-bytes",
                "1000000",
            ]
        )
        assert code == 0
        placed = loads_program(out.read_text())
        assert any(
            t.memory_tier is MemoryTier.IMEM for t in placed.tables()
        )


class TestReplay:
    def _replay(self, capsys, *args):
        code = main(["replay", *args])
        return code, capsys.readouterr()

    def test_single_job_summary(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--target", "emulated_nic",
        )
        assert code == 0
        summary = json.loads(captured.out)
        assert summary["packets"] == 500
        assert summary["jobs"] == 1
        assert summary["wall_pps"] > 0
        assert "worker_busy_s" not in summary

    def test_sharded_jobs_match_single(self, capsys):
        _, single_out = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--target", "emulated_nic",
        )
        code, sharded_out = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--jobs", "2",
            "--target", "emulated_nic",
        )
        assert code == 0
        single = json.loads(single_out.out)
        sharded = json.loads(sharded_out.out)
        assert sharded["jobs"] == 2
        for key in ("packets", "dropped", "mean_latency_ns"):
            assert sharded[key] == single[key]
        assert len(sharded["worker_busy_s"]) == 2
        assert sharded["modeled_pps"] > 0

    def test_offered_pps_accepted(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "acl_chain",
            "--packets", "200",
            "--pps", "1e6",
            "--jobs", "2",
            "--target", "emulated_nic",
        )
        assert code == 0
        assert json.loads(captured.out)["packets"] == 200

    def test_requires_app_or_program(self, capsys):
        code, captured = self._replay(capsys, "--packets", "10")
        assert code == 2
        assert "exactly one of --app or --program" in captured.err

    def test_rejects_app_and_program_together(self, capsys, tmp_path):
        code, _captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--program", str(tmp_path / "p.json"),
        )
        assert code == 2

    def test_unknown_app(self, capsys):
        code, captured = self._replay(capsys, "--app", "nope")
        assert code == 2
        assert "unknown app" in captured.err
        assert "l2l3_acl" in captured.err

    def test_program_json_input(self, capsys, tmp_path):
        path = tmp_path / "prog.json"
        path.write_text(dumps_program(linear_program("cliprog", 2)))
        code, captured = self._replay(
            capsys,
            "--program", str(path),
            "--packets", "100",
            "--jobs", "2",
            "--target", "emulated_nic",
        )
        assert code == 0
        assert json.loads(captured.out)["packets"] == 100


class TestProfileJson:
    def test_round_trip(self):
        program = linear_program("p", 3)
        profile = uniform_profile(program)
        profile.entry_counts["p_t0"] = 5
        profile.update_rates["p_t1"] = 2.5
        profile.table_m["p_t2"] = 4
        profile.cache_hit_rates["cacheX"] = 0.8
        from repro.core import profile_from_json

        restored = profile_from_json(profile_to_json(profile))
        assert restored.action_probs == profile.action_probs
        assert restored.entry_counts == profile.entry_counts
        assert restored.update_rates == profile.update_rates
        assert restored.table_m == profile.table_m
        assert restored.cache_hit_rates == profile.cache_hit_rates
        assert restored.offered_pps == profile.offered_pps
