"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import profile_to_json, uniform_profile
from repro.ir import dumps_program, linear_program, loads_program
from repro.ir.tables import MatchType, MemoryTier, TableKind


@pytest.fixture
def program_file(tmp_path):
    program = linear_program("cli_demo", 6, MatchType.TERNARY)
    path = tmp_path / "program.json"
    path.write_text(dumps_program(program))
    return path


class TestOptimize:
    def test_optimize_writes_valid_program(self, program_file, tmp_path):
        out = tmp_path / "optimized.json"
        code = main(
            ["optimize", str(program_file), "-o", str(out), "--k", "1.0"]
        )
        assert code == 0
        optimized = loads_program(out.read_text())
        assert any(
            t.kind is not TableKind.PLAIN for t in optimized.tables()
        )

    def test_optimize_stdout(self, program_file, capsys):
        assert main(["optimize", str(program_file)]) == 0
        out = capsys.readouterr().out
        loads_program(out)  # parses

    def test_optimize_with_profile(self, program_file, tmp_path):
        program = loads_program(program_file.read_text())
        profile = uniform_profile(program)
        profile.set_action_probs(
            "cli_demo_t0",
            {"cli_demo_t0_a0": 0.9, "cli_demo_t0_a1": 0.1},
        )
        profile_path = tmp_path / "profile.json"
        profile_path.write_text(json.dumps(profile_to_json(profile)))
        out = tmp_path / "optimized.json"
        code = main(
            [
                "optimize",
                str(program_file),
                "-o",
                str(out),
                "--profile",
                str(profile_path),
            ]
        )
        assert code == 0

    def test_zero_budget(self, program_file, tmp_path):
        out = tmp_path / "optimized.json"
        code = main(
            [
                "optimize",
                str(program_file),
                "-o",
                str(out),
                "--memory-budget",
                "0",
                "--update-budget",
                "0",
            ]
        )
        assert code == 0
        optimized = loads_program(out.read_text())
        # Nothing that costs memory was added.
        assert all(
            t.kind is TableKind.PLAIN for t in optimized.tables()
        )


class TestInspect:
    def test_inspect_prints_pipelets(self, program_file, capsys):
        assert main(["inspect", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "pipelets" in out
        assert "expected latency" in out
        assert "cli_demo_t0" in out

    def test_unknown_target_fails(self, program_file):
        from repro.errors import EmulationError

        with pytest.raises(EmulationError):
            main(
                ["inspect", str(program_file), "--target", "tofino"]
            )


class TestCalibrate:
    def test_calibrate_prints_constants(self, capsys):
        assert main(["calibrate", "--packets", "40"]) == 0
        out = capsys.readouterr().out
        assert "Lmat=" in out
        assert "m_ternary=" in out


class TestPlacement:
    def test_placement_promotes_tables(self, program_file, tmp_path):
        out = tmp_path / "placed.json"
        code = main(
            [
                "placement",
                str(program_file),
                "-o",
                str(out),
                "--imem-bytes",
                "1000000",
            ]
        )
        assert code == 0
        placed = loads_program(out.read_text())
        assert any(
            t.memory_tier is MemoryTier.IMEM for t in placed.tables()
        )


class TestReplay:
    def _replay(self, capsys, *args):
        code = main(["replay", *args])
        return code, capsys.readouterr()

    def test_single_job_summary(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--target", "emulated_nic",
        )
        assert code == 0
        summary = json.loads(captured.out)
        assert summary["packets"] == 500
        assert summary["jobs"] == 1
        assert summary["wall_pps"] > 0
        assert "worker_busy_s" not in summary

    def test_sharded_jobs_match_single(self, capsys):
        _, single_out = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--target", "emulated_nic",
        )
        code, sharded_out = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--jobs", "2",
            "--target", "emulated_nic",
        )
        assert code == 0
        single = json.loads(single_out.out)
        sharded = json.loads(sharded_out.out)
        assert sharded["jobs"] == 2
        for key in ("packets", "dropped", "mean_latency_ns"):
            assert sharded[key] == single[key]
        assert len(sharded["worker_busy_s"]) == 2
        assert sharded["modeled_pps"] > 0
        # Sharded replays default to the zero-copy shm transport and
        # report its dispatch counters.
        assert sharded["transport"] == "shm"
        assert sharded["pipe_fallbacks"] == 0
        assert sharded["ring_stalls"] >= 0

    def test_pipe_transport_selector_matches_shm(self, capsys):
        _, shm_out = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--jobs", "2",
            "--target", "emulated_nic",
        )
        code, pipe_out = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--jobs", "2",
            "--transport", "pipe",
            "--target", "emulated_nic",
        )
        assert code == 0
        shm = json.loads(shm_out.out)
        pipe = json.loads(pipe_out.out)
        assert pipe["transport"] == "pipe"
        for key in ("packets", "dropped", "mean_latency_ns"):
            assert pipe[key] == shm[key]
        assert pipe["ring_stalls"] == 0

    def test_offered_pps_accepted(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "acl_chain",
            "--packets", "200",
            "--pps", "1e6",
            "--jobs", "2",
            "--target", "emulated_nic",
        )
        assert code == 0
        assert json.loads(captured.out)["packets"] == 200

    def test_requires_app_or_program(self, capsys):
        code, captured = self._replay(capsys, "--packets", "10")
        assert code == 2
        assert "exactly one of --app or --program" in captured.err

    def test_rejects_app_and_program_together(self, capsys, tmp_path):
        code, _captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--program", str(tmp_path / "p.json"),
        )
        assert code == 2

    def test_unknown_app(self, capsys):
        code, captured = self._replay(capsys, "--app", "nope")
        assert code == 2
        assert "unknown app" in captured.err
        assert "l2l3_acl" in captured.err

    def test_program_json_input(self, capsys, tmp_path):
        path = tmp_path / "prog.json"
        path.write_text(dumps_program(linear_program("cliprog", 2)))
        code, captured = self._replay(
            capsys,
            "--program", str(path),
            "--packets", "100",
            "--jobs", "2",
            "--target", "emulated_nic",
        )
        assert code == 0
        assert json.loads(captured.out)["packets"] == 100


class TestReplayFaultInjection:
    def _replay(self, capsys, *args):
        code = main(["replay", *args])
        return code, capsys.readouterr()

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_kill_with_respawn_recovers_all_packets(
        self, capsys, transport
    ):
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "600",
            "--jobs", "2",
            "--batch", "32",
            "--transport", transport,
            "--inject-fault", "kill:shard=0,batch=2",
            "--recovery", "respawn",
            "--recv-timeout", "10",
            "--target", "emulated_nic",
        )
        assert code == 0
        summary = json.loads(captured.out)
        assert summary["packets"] == 600
        assert summary["respawns"] >= 1
        assert "degraded_shards" not in summary

    def test_degraded_reports_lost_packets(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "600",
            "--jobs", "2",
            "--batch", "32",
            "--inject-fault", "kill:shard=1,batch=1",
            "--recovery", "degraded",
            "--recv-timeout", "10",
            "--target", "emulated_nic",
        )
        assert code == 0
        summary = json.loads(captured.out)
        assert summary["degraded_shards"] == [1]
        assert summary["lost_packets"] > 0
        assert summary["packets"] == 600 - summary["lost_packets"]

    def test_fault_requires_jobs(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--inject-fault", "kill:shard=0",
        )
        assert code == 2
        assert "--jobs" in captured.err

    def test_fault_shard_must_exist(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--jobs", "2",
            "--inject-fault", "kill:shard=5",
        )
        assert code == 2
        assert "shard 5" in captured.err

    def test_malformed_fault_spec(self, capsys):
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--jobs", "2",
            "--inject-fault", "explode:shard=0",
        )
        assert code == 2
        assert "Unknown fault kind" in captured.err


class TestReplayTelemetry:
    def _replay(self, capsys, *args):
        code = main(["replay", *args])
        return code, capsys.readouterr()

    def test_trace_metrics_and_events_outputs(self, capsys, tmp_path):
        metrics = tmp_path / "m.prom"
        events = tmp_path / "e.jsonl"
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "600",
            "--target", "emulated_nic",
            "--trace",
            "--trace-interval", "32",
            "--metrics-out", str(metrics),
            "--events-out", str(events),
        )
        assert code == 0
        summary = json.loads(captured.out)
        assert summary["traced_packets"] == 600 // 32 + 1
        assert summary["metrics_out"] == str(metrics)
        assert summary["events_emitted"] > 0

        # The metrics file is valid Prometheus text exposition.
        text = metrics.read_text()
        assert "# TYPE pipeleon_packets_total counter" in text
        assert "pipeleon_packets_total" in text
        assert 'le="+Inf"' in text
        assert "pipeleon_node_latency_ns_bucket" in text
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.split()[0] in ("#",) or True
            else:
                # every sample line is "<series> <number>"
                float(line.rsplit(" ", 1)[1])

        # The events file is parseable JSONL of control mutations.
        from repro.telemetry import EventLog

        parsed = EventLog.parse_jsonl(events.read_text())
        assert parsed
        assert all(e["kind"] == "control_update" for e in parsed)
        assert all(e["op"] == "insert" for e in parsed)

    def test_metrics_out_without_trace(self, capsys, tmp_path):
        metrics = tmp_path / "m.prom"
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "200",
            "--target", "emulated_nic",
            "--metrics-out", str(metrics),
        )
        assert code == 0
        summary = json.loads(captured.out)
        assert "traced_packets" not in summary
        text = metrics.read_text()
        assert "pipeleon_packets_total" in text
        assert "pipeleon_node_latency_ns" not in text  # no tracer

    def test_sharded_trace_merges_worker_tracers(
        self, capsys, tmp_path
    ):
        metrics = tmp_path / "m.prom"
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "400",
            "--jobs", "2",
            "--target", "emulated_nic",
            "--trace",
            "--trace-interval", "16",
            "--metrics-out", str(metrics),
        )
        assert code == 0
        summary = json.loads(captured.out)
        assert summary["jobs"] == 2
        assert summary["traced_packets"] >= 400 // 16
        text = metrics.read_text()
        assert "pipeleon_trace_packets_seen_total 400" in text
        assert "pipeleon_node_latency_ns_bucket" in text

    def test_profile_out_round_trips_into_optimize(
        self, capsys, tmp_path, program_file
    ):
        profile_path = tmp_path / "profile.json"
        code, captured = self._replay(
            capsys,
            "--app", "l2l3_acl",
            "--packets", "500",
            "--target", "emulated_nic",
            "--profile-out", str(profile_path),
        )
        assert code == 0
        assert json.loads(captured.out)["profile_out"] == str(
            profile_path
        )
        from repro.core import profile_from_json

        profile = profile_from_json(
            json.loads(profile_path.read_text())
        )
        assert profile.action_probs  # a measured, non-empty profile
        assert profile.entry_counts
        # And it feeds straight back into the optimizer.
        build, _install = __import__(
            "repro.apps", fromlist=["EXAMPLE_APPS"]
        ).EXAMPLE_APPS["l2l3_acl"]
        prog_path = tmp_path / "l2l3.json"
        prog_path.write_text(dumps_program(build()))
        out = tmp_path / "optimized.json"
        assert main(
            [
                "optimize",
                str(prog_path),
                "-o", str(out),
                "--profile", str(profile_path),
            ]
        ) == 0
        loads_program(out.read_text())


class TestReport:
    def test_report_prints_measured_vs_predicted_table(self, capsys):
        code = main(
            [
                "report",
                "--app", "l2l3_acl",
                "--packets", "2000",
                "--target", "emulated_nic",
                "--trace-interval", "16",
                "--locality", "zipf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measured_ns" in out and "predicted_ns" in out
        assert "pl_0" in out
        assert "program" in out
        assert "traced 1-in-16" in out

    def test_report_json_out(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code = main(
            [
                "report",
                "--app", "l2l3_acl",
                "--packets", "1000",
                "--target", "emulated_nic",
                "--json-out", str(path),
            ]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["rows"]
        assert payload["traced_packets"] > 0
        assert payload["measured_total_ns"] > 0

    def test_report_requires_app_or_program(self, capsys):
        assert main(["report"]) == 2
        assert (
            "exactly one of --app or --program"
            in capsys.readouterr().err
        )


class TestProfileJson:
    def test_round_trip(self):
        program = linear_program("p", 3)
        profile = uniform_profile(program)
        profile.entry_counts["p_t0"] = 5
        profile.update_rates["p_t1"] = 2.5
        profile.table_m["p_t2"] = 4
        profile.cache_hit_rates["cacheX"] = 0.8
        from repro.core import profile_from_json

        restored = profile_from_json(profile_to_json(profile))
        assert restored.action_probs == profile.action_probs
        assert restored.entry_counts == profile.entry_counts
        assert restored.update_rates == profile.update_rates
        assert restored.table_m == profile.table_m
        assert restored.cache_hit_rates == profile.cache_hit_rates
        assert restored.offered_pps == profile.offered_pps
