"""Design-space exploration harness: spec, matrix, run DB, Pareto.

The load-bearing properties pinned here:

- cell enumeration is a pure function of the spec (row-major axis
  order, strict validation, exclusion rules);
- the traffic seed is shared by cells that differ only in *runtime*
  knobs (engine, cache capacity, ...) so Pareto comparisons hold the
  workload fixed, and differs as soon as a traffic-shaping knob moves;
- a sweep killed mid-run resumes to a database byte-identical (modulo
  the wall-clock fields) to an uninterrupted run's — including across
  a torn final append;
- the Pareto split and the predicted-vs-measured ranking are exact on
  hand-built records.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.apps import l2l3_acl
from repro.core import PipeleonController, uniform_profile
from repro.core.costmodel import CostModel, CostPrediction
from repro.dse import (
    Axis,
    CELL_DEFAULTS,
    DEFAULT_OBJECTIVES,
    Objective,
    RunDatabase,
    RunDatabaseError,
    SweepSpec,
    cell_fingerprint,
    cell_seed,
    dominates,
    enumerate_cells,
    host_metadata,
    objective_vector,
    pareto_front,
    pareto_spec,
    preset_spec,
    run_cell,
    run_sweep,
    smoke_spec,
    strip_volatile,
    validate_config,
)
from repro.dse.matrix import TRAFFIC_KEYS
from repro.nic.targets import BLUEFIELD2
from repro.telemetry.report import (
    dse_ranking_report,
    format_dse_report,
    spearman_correlation,
)


def tiny_spec(seed: int = 7, **base) -> SweepSpec:
    """A 2-cell spec cheap enough to execute inside the test suite."""
    merged = {"packets": 200, "flows": 16, "batch": 64, **base}
    return SweepSpec(
        name="tiny",
        seed=seed,
        axes=(Axis("cache_capacity", (256, 512)),),
        base=merged,
    )


# ---------------------------------------------------------------------------
# Spec
# ---------------------------------------------------------------------------


class TestSpec:
    def test_defaults_fill_and_normalise(self):
        cell = validate_config({})
        assert cell == CELL_DEFAULTS
        cell = validate_config({"packets": "500", "topk": "0.5"})
        assert cell["packets"] == 500 and cell["topk"] == 0.5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="Unknown cell keys: warp"):
            validate_config({"warp": 9})

    @pytest.mark.parametrize(
        "bad",
        [
            {"target": "tofino"},
            {"engine": "gpu"},
            {"locality": "burst"},
            {"app": "no_such_app"},
            {"jobs": 0},
            {"packets": -1},
            {"topk": 0.0},
            {"topk": 1.5},
            {"cache_capacity": 0},
            {"memory_budget": -4.0},
        ],
    )
    def test_off_menu_values_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_config(bad)

    def test_axis_must_name_known_knob(self):
        with pytest.raises(ValueError, match="Unknown axis"):
            Axis("warp", (1, 2))
        with pytest.raises(ValueError, match="no values"):
            Axis("jobs", ())

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="Duplicate axes"):
            SweepSpec(
                "dup", axes=(Axis("jobs", (1,)), Axis("jobs", (2,)))
            )

    def test_bad_axis_value_fails_at_build_time(self):
        with pytest.raises(ValueError, match="engine"):
            SweepSpec("bad", axes=(Axis("engine", ("auto", "gpu")),))

    def test_cells_row_major_axes_override_base(self):
        spec = SweepSpec(
            "m",
            axes=(
                Axis("jobs", (1, 2)),
                Axis("locality", ("uniform", "zipf")),
            ),
            base={"jobs": 9, "packets": 100},
        )
        cells = spec.cells()
        assert [(c["jobs"], c["locality"]) for c in cells] == [
            (1, "uniform"),
            (1, "zipf"),
            (2, "uniform"),
            (2, "zipf"),
        ]
        assert all(c["packets"] == 100 for c in cells)

    def test_exclude_rules_drop_full_matches(self):
        spec = SweepSpec(
            "x",
            axes=(
                Axis("engine", ("interp", "columnar")),
                Axis("jobs", (1, 4)),
            ),
            exclude=({"engine": "interp", "jobs": 4},),
        )
        combos = [(c["engine"], c["jobs"]) for c in spec.cells()]
        assert ("interp", 4) not in combos
        assert len(combos) == 3

    def test_exclude_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="Unknown exclude keys"):
            SweepSpec("x", exclude=({"warp": 1},))

    def test_json_round_trip(self, tmp_path):
        spec = tiny_spec(seed=13)
        clone = SweepSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.cells() == spec.cells()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_json()))
        assert SweepSpec.load(path).cells() == spec.cells()

    def test_with_seed_changes_only_seed(self):
        spec = tiny_spec(seed=1)
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.axes == spec.axes
        assert reseeded.cells() == spec.cells()

    def test_presets(self):
        assert len(smoke_spec().cells()) == 8
        assert len(pareto_spec().cells()) == 24
        assert preset_spec("smoke", seed=5).seed == 5
        with pytest.raises(ValueError, match="Unknown preset"):
            preset_spec("huge")


# ---------------------------------------------------------------------------
# Matrix: fingerprints and controlled-comparison seeding
# ---------------------------------------------------------------------------


class TestMatrix:
    def test_fingerprint_deterministic_and_seed_dependent(self):
        config = validate_config({})
        assert cell_fingerprint(config, 0) == cell_fingerprint(config, 0)
        assert cell_fingerprint(config, 0) != cell_fingerprint(config, 1)
        assert cell_fingerprint(config, 0) != cell_fingerprint(
            validate_config({"jobs": 2}), 0
        )
        assert len(cell_fingerprint(config, 0)) == 16

    def test_seed_shared_across_runtime_knobs(self):
        base = validate_config({})
        for key, value in [
            ("engine", "columnar"),
            ("cache_capacity", 64),
            ("jobs", 2),
            ("target", "emulated_nic"),
            ("topk", 0.5),
        ]:
            assert key not in TRAFFIC_KEYS
            variant = validate_config({key: value})
            assert cell_seed(variant, 3) == cell_seed(base, 3), key

    def test_seed_moves_with_traffic_knobs(self):
        base = validate_config({})
        for key, value in [
            ("app", "acl_chain"),
            ("packets", 999),
            ("flows", 32),
            ("locality", "zipf"),
            ("zipf_skew", 2.0),
        ]:
            assert key in TRAFFIC_KEYS
            variant = validate_config({key: value})
            assert cell_seed(variant, 3) != cell_seed(base, 3), key

    def test_enumerate_cells_indices_and_unique_fingerprints(self):
        cells = enumerate_cells(pareto_spec())
        assert [cell.index for cell in cells] == list(range(24))
        assert len({cell.fingerprint for cell in cells}) == 24
        again = enumerate_cells(pareto_spec())
        assert cells == again


# ---------------------------------------------------------------------------
# Run database
# ---------------------------------------------------------------------------


def _record(fp: str, **extra) -> dict:
    return {"fingerprint": fp, "wall": {"wall_s": 1.0}, **extra}


class TestRunDatabase:
    def test_append_load_round_trip(self, tmp_path):
        db = RunDatabase(tmp_path / "runs.jsonl")
        db.append(_record("aa", cell=0))
        db.append(_record("bb", cell=1))
        loaded = db.load()
        assert list(loaded) == ["aa", "bb"]  # file order preserved
        assert loaded["bb"]["cell"] == 1
        assert not db.repaired_tail

    def test_append_requires_fingerprint(self, tmp_path):
        with pytest.raises(ValueError, match="fingerprint"):
            RunDatabase(tmp_path / "runs.jsonl").append({"cell": 0})

    def test_missing_file_loads_empty(self, tmp_path):
        assert RunDatabase(tmp_path / "absent.jsonl").load() == {}

    def test_torn_garbage_tail_truncated(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        db = RunDatabase(path)
        db.append(_record("aa"))
        with open(path, "ab") as handle:
            handle.write(b'{"fingerprint": "bb", "cel')
        assert list(db.load()) == ["aa"]
        assert db.repaired_tail
        # The file itself was repaired: the next load is clean and the
        # next append starts on its own line.
        assert list(db.load()) == ["aa"]
        assert not db.repaired_tail
        db.append(_record("cc"))
        assert list(db.load()) == ["aa", "cc"]

    def test_torn_complete_json_without_newline_truncated(self, tmp_path):
        # The nasty case: the append died after the JSON bytes but
        # before the newline. The line parses, but keeping it would
        # glue the next append onto the same line.
        path = tmp_path / "runs.jsonl"
        db = RunDatabase(path)
        db.append(_record("aa"))
        with open(path, "ab") as handle:
            handle.write(
                json.dumps(_record("bb"), separators=(",", ":")).encode()
            )
        assert list(db.load()) == ["aa"]
        assert db.repaired_tail

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        db = RunDatabase(path)
        db.append(_record("aa"))
        with open(path, "ab") as handle:
            handle.write(b"not json\n")
        db.append(_record("bb"))
        with pytest.raises(RunDatabaseError, match="unparsable record"):
            db.load()

    def test_newline_terminated_record_without_fingerprint_raises(
        self, tmp_path
    ):
        path = tmp_path / "runs.jsonl"
        path.write_bytes(b'{"cell": 0}\n')
        with pytest.raises(RunDatabaseError):
            RunDatabase(path).load()

    def test_strip_volatile(self):
        record = _record("aa", cell=3)
        stripped = strip_volatile(record)
        assert stripped == {"fingerprint": "aa", "cell": 3}
        assert "wall" in record  # original untouched


# ---------------------------------------------------------------------------
# Runner: execution, resume, bit-identity
# ---------------------------------------------------------------------------


def _stripped_lines(path) -> list[str]:
    lines = path.read_text().splitlines()
    out = []
    for line in lines:
        record = json.loads(line)
        out.append(
            json.dumps(
                strip_volatile(record),
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return out


class TestRunner:
    def test_record_shape(self):
        spec = tiny_spec()
        cell = enumerate_cells(spec)[0]
        record = run_cell(cell, sweep_seed=spec.seed, spec_name=spec.name)
        assert record["fingerprint"] == cell.fingerprint
        assert record["seed"] == cell.seed
        assert record["cell"] == 0
        assert record["config"] == cell.config
        assert set(record["predicted"]) == {
            "latency_ns",
            "memory_bytes",
            "update_pps",
        }
        measured = record["measured"]
        assert measured["packets"] == 200
        assert measured["mean_latency_ns"] > 0
        assert "columnar_partitions" in measured  # engine=auto records it
        assert record["snapshot"]["jobs"] == 1
        assert record["snapshot"]["plan"] is None or isinstance(
            record["snapshot"]["plan"], str
        )
        assert record["wall"]["wall_s"] > 0

    def test_kill_resume_matches_uninterrupted_run(self, tmp_path):
        spec = tiny_spec()
        interrupted = tmp_path / "interrupted.jsonl"
        straight = tmp_path / "straight.jsonl"

        first = run_sweep(spec, interrupted, max_cells=1)
        assert (first.executed, first.skipped, first.remaining) == (1, 0, 1)
        assert not first.complete

        second = run_sweep(spec, interrupted)
        assert (second.executed, second.skipped) == (1, 1)
        assert second.complete
        assert [r["cell"] for r in second.records] == [0, 1]

        third = run_sweep(spec, interrupted)
        assert (third.executed, third.skipped) == (0, 2)

        run_sweep(spec, straight)
        assert _stripped_lines(interrupted) == _stripped_lines(straight)

    def test_resume_after_torn_tail_reruns_torn_cell(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "torn.jsonl"
        run_sweep(spec, path)
        clean = _stripped_lines(path)
        # Tear the final append mid-record, as a kill would.
        raw = path.read_bytes()
        cut = raw.rfind(b"\n", 0, len(raw) - 1) + 1
        path.write_bytes(raw[: cut + 25])
        result = run_sweep(spec, path)
        assert (result.executed, result.skipped) == (1, 1)
        assert _stripped_lines(path) == clean

    def test_pool_matches_serial(self, tmp_path):
        spec = tiny_spec(seed=11)
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        run_sweep(spec, serial)
        result = run_sweep(spec, pooled, pool=2)
        assert result.complete and result.executed == 2
        assert _stripped_lines(serial) == _stripped_lines(pooled)

    def test_progress_callback_sees_every_new_record(self, tmp_path):
        spec = tiny_spec()
        seen = []
        run_sweep(
            spec,
            tmp_path / "runs.jsonl",
            progress=lambda record: seen.append(record["cell"]),
        )
        assert seen == [0, 1]

    def test_host_block_stamped(self, tmp_path):
        spec = tiny_spec()
        result = run_sweep(spec, tmp_path / "runs.jsonl", max_cells=1)
        host = result.records[0]["host"]
        assert set(host_metadata()) == set(host)
        assert host["cpu_count"] >= 1


# ---------------------------------------------------------------------------
# Pareto
# ---------------------------------------------------------------------------


def _obj_record(latency, memory, updates, tag):
    return {
        "tag": tag,
        "measured": {"mean_latency_ns": latency},
        "predicted": {"memory_bytes": memory, "update_pps": updates},
    }


class TestPareto:
    def test_dominates_requires_strict_improvement(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 1), (1, 1))
        assert not dominates((1, 3), (2, 2))  # trade-off: incomparable

    def test_objective_sense(self):
        record = _obj_record(10.0, 5.0, 2.0, "a")
        assert objective_vector(record) == (10.0, 5.0, 2.0)
        maximise = (Objective("measured.mean_latency_ns", "max"),)
        assert objective_vector(record, maximise) == (-10.0,)
        with pytest.raises(ValueError, match="min|max"):
            Objective("measured.mean_latency_ns", "best")

    def test_front_split_preserves_order(self):
        records = [
            _obj_record(10, 100, 0, "balanced"),
            _obj_record(5, 500, 0, "fast_fat"),
            _obj_record(10, 200, 0, "dominated"),  # worse than balanced
            _obj_record(20, 50, 0, "slow_lean"),
        ]
        front, dominated = pareto_front(records)
        assert [r["tag"] for r in front] == [
            "balanced",
            "fast_fat",
            "slow_lean",
        ]
        assert [r["tag"] for r in dominated] == ["dominated"]

    def test_duplicate_vectors_all_stay_on_front(self):
        records = [
            _obj_record(10, 100, 0, "a"),
            _obj_record(10, 100, 0, "b"),
        ]
        front, dominated = pareto_front(records)
        assert len(front) == 2 and not dominated

    def test_default_objectives_paths(self):
        assert [objective.key for objective in DEFAULT_OBJECTIVES] == [
            "measured.mean_latency_ns",
            "predicted.memory_bytes",
            "predicted.update_pps",
        ]


# ---------------------------------------------------------------------------
# Ranking report + Spearman
# ---------------------------------------------------------------------------


class TestRanking:
    def test_spearman_perfect_and_reversed(self):
        assert spearman_correlation([1, 2, 3], [10, 20, 30]) == 1.0
        assert spearman_correlation([1, 2, 3], [30, 20, 10]) == -1.0

    def test_spearman_ties_average_ranks(self):
        rho = spearman_correlation([1.0, 1.0, 2.0], [5.0, 5.0, 9.0])
        assert rho == 1.0
        rho = spearman_correlation([1.0, 1.0, 2.0, 3.0], [4, 7, 5, 9])
        assert rho is not None and 0 < rho < 1

    def test_spearman_degenerate_inputs(self):
        assert spearman_correlation([1.0], [2.0]) is None
        assert spearman_correlation([3.0, 3.0], [1.0, 2.0]) is None

    def test_ranking_report_orders_by_measured(self):
        records = []
        for i, (predicted, measured) in enumerate(
            [(300.0, 30.0), (100.0, 10.0), (200.0, 20.0)]
        ):
            records.append(
                {
                    "cell": i,
                    "fingerprint": f"fp{i}",
                    "config": validate_config({}),
                    "predicted": {
                        "latency_ns": predicted,
                        "memory_bytes": 0.0,
                        "update_pps": 0.0,
                    },
                    "measured": {"mean_latency_ns": measured},
                }
            )
        report = dse_ranking_report(records)
        assert [row.cell for row in report.rows] == [1, 2, 0]
        assert report.spearman == 1.0
        text = format_dse_report(report)
        assert "spearman(predicted, measured): +1.000" in text
        assert "l2l3_acl" in text


# ---------------------------------------------------------------------------
# Cost-model prediction + controller snapshot
# ---------------------------------------------------------------------------


class TestPrediction:
    def test_predict_without_plan(self):
        program = l2l3_acl.build_program()
        profile = uniform_profile(program)
        prediction = CostModel.for_target(BLUEFIELD2).predict(
            program, profile
        )
        assert isinstance(prediction, CostPrediction)
        assert prediction.latency_ns > 0
        # Memory is entry-count-driven; nothing is installed here.
        assert prediction.memory_bytes >= 0
        assert prediction.update_pps == 0.0
        payload = prediction.to_json()
        assert set(payload) == {
            "latency_ns",
            "memory_bytes",
            "update_pps",
        }
        assert all(
            isinstance(value, float) and math.isfinite(value)
            for value in payload.values()
        )

    def test_cell_snapshot_is_pure_config(self):
        controller = PipeleonController(
            l2l3_acl.build_program(), BLUEFIELD2, enabled=False
        )
        try:
            snapshot = controller.cell_snapshot()
        finally:
            controller.deployment.close()
        assert snapshot["jobs"] == 1
        assert snapshot["transport"] is None  # single-process: no rings
        assert snapshot["enabled"] is False
        assert snapshot["reoptimizations"] == 0
        assert set(snapshot) == {
            "jobs",
            "engine",
            "transport",
            "enabled",
            "reoptimizations",
            "plan",
            "plan_gain_ns",
            "plan_memory_bytes",
            "plan_update_pps",
        }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_dse_list_enumerates_without_running(self, capsys):
        from repro.cli import main

        assert main(["dse", "--list", "--preset", "smoke"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 8
        first = json.loads(lines[0])
        assert set(first) == {"cell", "fingerprint", "seed", "config"}

    def test_dse_run_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec(seed=2).to_json()))
        db = tmp_path / "runs.jsonl"
        bench_out = tmp_path / "bench.json"

        argv = ["dse", "--spec", str(spec_path), "--db", str(db)]
        assert main(argv + ["--max-cells", "1"]) == 0
        partial = json.loads(capsys.readouterr().out)
        assert (partial["executed"], partial["remaining"]) == (1, 1)
        assert partial["complete"] is False

        assert main(argv + ["--bench-out", str(bench_out)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert (summary["executed"], summary["skipped"]) == (1, 1)
        assert summary["complete"] is True
        assert summary["cells"] == 2
        assert len(summary["pareto_front"]) >= 1
        assert (
            len(summary["pareto_front"]) + summary["dominated"] == 2
        )
        saved = json.loads(bench_out.read_text())
        assert saved["spec"] == "tiny" and saved["complete"] is True

    def test_dse_seed_override_changes_fingerprints(self, capsys):
        from repro.cli import main

        out = []
        for seed in ("0", "1"):
            assert (
                main(
                    [
                        "dse",
                        "--list",
                        "--preset",
                        "smoke",
                        "--seed",
                        seed,
                    ]
                )
                == 0
            )
            lines = capsys.readouterr().out.strip().splitlines()
            out.append([json.loads(line)["fingerprint"] for line in lines])
        assert out[0] != out[1]
