"""Tests for repro.ir.entries — match value semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IrError
from repro.ir.entries import (
    ExactValue,
    LpmValue,
    RangeValue,
    TableEntry,
    TernaryValue,
    WILDCARD,
    distinct_masks,
    distinct_prefix_lengths,
    exact_entry,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestExactValue:
    def test_matches(self):
        assert ExactValue(5).matches(5)
        assert not ExactValue(5).matches(6)

    @given(u32)
    def test_matches_itself(self, value):
        assert ExactValue(value).matches(value)

    @given(u32)
    def test_as_ternary_equivalent(self, value):
        ternary = ExactValue(value).as_ternary()
        assert ternary.matches(value)
        assert not ternary.matches(value ^ 1)


class TestLpmValue:
    def test_mask_computation(self):
        assert LpmValue(0, 0).mask == 0
        assert LpmValue(0, 32).mask == 0xFFFFFFFF
        assert LpmValue(0, 8).mask == 0xFF000000

    def test_prefix_match(self):
        value = LpmValue(0x0A000000, 8)  # 10.0.0.0/8
        assert value.matches(0x0A010203)
        assert not value.matches(0x0B010203)

    def test_invalid_prefix_rejected(self):
        with pytest.raises(IrError):
            LpmValue(0, 33)
        with pytest.raises(IrError):
            LpmValue(0, -1)

    @given(u32, st.integers(min_value=0, max_value=32))
    def test_lpm_and_ternary_agree(self, value, prefix_len):
        lpm = LpmValue(value, prefix_len)
        ternary = lpm.as_ternary()
        for probe in (value, value ^ 0x1, value ^ 0x80000000):
            assert lpm.matches(probe) == ternary.matches(probe)


class TestTernaryValue:
    def test_masked_match(self):
        value = TernaryValue(0x1200, 0xFF00)
        assert value.matches(0x12FF)
        assert not value.matches(0x1300)

    def test_wildcard_matches_everything(self):
        assert WILDCARD.matches(0)
        assert WILDCARD.matches(0xFFFFFFFF)
        assert WILDCARD.is_wildcard

    @given(u32, u32, u32)
    def test_match_depends_only_on_masked_bits(self, value, mask, probe):
        ternary = TernaryValue(value, mask)
        assert ternary.matches(probe) == (
            (probe & mask) == (value & mask)
        )


class TestRangeValue:
    def test_inclusive_bounds(self):
        value = RangeValue(10, 20)
        assert value.matches(10)
        assert value.matches(20)
        assert not value.matches(9)
        assert not value.matches(21)

    def test_inverted_range_rejected(self):
        with pytest.raises(IrError):
            RangeValue(5, 4)


class TestTableEntry:
    def test_unique_ids(self):
        a = exact_entry(1, "act")
        b = exact_entry(1, "act")
        assert a.entry_id != b.entry_id

    def test_clone_gets_fresh_id(self):
        entry = exact_entry((1, 2), "act", (9,))
        clone = entry.clone()
        assert clone.entry_id != entry.entry_id
        assert clone.match_values == entry.match_values
        assert clone.action_data == entry.action_data

    def test_matches_tuple(self):
        entry = exact_entry((1, 2), "act")
        assert entry.matches((1, 2))
        assert not entry.matches((1, 3))
        assert not entry.matches((1,))  # arity mismatch

    def test_size_bytes_scales_with_fields(self):
        one = exact_entry((1,), "a")
        three = exact_entry((1, 2, 3), "a")
        assert three.size_bytes > one.size_bytes


class TestEntryStatistics:
    def test_distinct_masks_counts_groups(self):
        entries = [
            TableEntry((TernaryValue(1, 0xFF),), "a"),
            TableEntry((TernaryValue(2, 0xFF),), "a"),
            TableEntry((TernaryValue(3, 0xFF00),), "a"),
        ]
        assert distinct_masks(entries) == 2

    def test_distinct_masks_empty_is_one(self):
        assert distinct_masks([]) == 1

    def test_distinct_prefix_lengths(self):
        entries = [
            TableEntry((LpmValue(0, 8),), "a"),
            TableEntry((LpmValue(0x0A000000, 16),), "a"),
            TableEntry((LpmValue(0x0B000000, 16),), "a"),
        ]
        assert distinct_prefix_lengths(entries) == 2
