"""Additional search-layer tests: candidate orders, plan re-pricing,
curated segmentations, and knapsack grid edges."""

import pytest

from repro.core import (
    CostModel,
    optimize,
    partition,
    uniform_profile,
)
from repro.core.plan import Candidate, OptimizationPlan, Segment
from repro.core.search import (
    FULL_ENUMERATION_LIMIT,
    SearchOptions,
    _candidate_orders,
    enumerate_segmentations,
    evaluate_candidate_gain,
    evaluate_plan_gain,
)
from repro.ir import linear_program
from repro.ir.actions import drop_action, noop_action
from repro.ir.builder import ProgramBuilder
from repro.ir.tables import MatchType
from repro.nic.targets import BLUEFIELD2


@pytest.fixture
def model():
    return CostModel.for_target(BLUEFIELD2)


def acl_chain_program(n_regular=4):
    builder = ProgramBuilder("p")
    names = []
    for i in range(n_regular):
        name = f"t{i}"
        builder.table(name, [f"f{i}"], [noop_action(f"{name}_a")])
        names.append(name)
    builder.table(
        "acl",
        ["l4.dport"],
        [drop_action("deny"), noop_action("permit")],
        default_action="permit",
    )
    names.append("acl")
    builder.chain(names)
    return builder.build(root=names[0])


class TestCandidateOrders:
    def test_includes_identity_first(self, model):
        program = acl_chain_program()
        tables = [program.table(n) for n in program.topological_order()]
        profile = uniform_profile(program)
        orders = _candidate_orders(tables, profile, SearchOptions())
        assert orders[0] == tuple(t.name for t in tables)

    def test_includes_drop_greedy_order(self, model):
        program = acl_chain_program()
        profile = uniform_profile(program)
        profile.set_action_probs(
            "acl", {"deny": 0.9, "permit": 0.1}
        )
        tables = [program.table(n) for n in program.topological_order()]
        orders = _candidate_orders(tables, profile, SearchOptions())
        # The drop-rate-greedy order hoists the ACL to the front.
        assert any(order[0] == "acl" for order in orders)

    def test_respects_max_orders(self, model):
        program = acl_chain_program(6)
        tables = [program.table(n) for n in program.topological_order()]
        profile = uniform_profile(program)
        options = SearchOptions(max_orders=3)
        orders = _candidate_orders(tables, profile, options)
        assert len(orders) <= 3

    def test_long_runs_skip_permutation_enumeration(self, model):
        program = linear_program("p", 10)
        tables = [program.table(f"p_t{i}") for i in range(10)]
        profile = uniform_profile(program)
        orders = _candidate_orders(tables, profile, SearchOptions())
        # identity only (no droppers, >7 tables): small, not factorial.
        assert len(orders) <= 4


class TestCuratedSegmentations:
    def test_kicks_in_above_limit(self):
        n = FULL_ENUMERATION_LIMIT + 2
        labelings = enumerate_segmentations(n, SearchOptions())
        assert len(labelings) < 20
        for labels in labelings:
            assert sum(length for _op, length in labels) == n

    def test_contains_whole_and_half_caches(self):
        n = 10
        labelings = enumerate_segmentations(n, SearchOptions())
        assert (("cache", 10),) in labelings
        assert (("cache", 5), ("cache", 5)) in labelings
        # half-cache + rest untouched, both sides
        assert (("cache", 5),) + (("none", 1),) * 5 in labelings
        assert (("none", 1),) * 5 + (("cache", 5),) in labelings


class TestPlanRePricing:
    def test_gain_matches_fresh_search(self, model):
        program = linear_program("p", 4, MatchType.TERNARY)
        profile = uniform_profile(program)
        plan = optimize(program, profile, model)
        assert plan.candidates
        repriced = evaluate_plan_gain(
            program, plan, profile, model, SearchOptions()
        )
        assert repriced == pytest.approx(
            plan.total_gain_ns, rel=1e-6
        )

    def test_gain_changes_with_profile(self, model):
        program = acl_chain_program()
        run = tuple(program.topological_order())
        hoisted = ("acl",) + run[:-1]
        candidate = Candidate(
            pipelet_id="pl_0",
            run=run,
            order=hoisted,
            segments=tuple(Segment("none", (n,)) for n in hoisted),
            gain_ns=0.0,
            memory_bytes=0.0,
            update_pps=0.0,
        )
        no_drop = uniform_profile(program)
        no_drop.set_action_probs("acl", {"deny": 0.0, "permit": 1.0})
        heavy = uniform_profile(program)
        heavy.set_action_probs("acl", {"deny": 0.9, "permit": 0.1})
        options = SearchOptions()
        assert evaluate_candidate_gain(
            program, candidate, heavy, model, options
        ) > evaluate_candidate_gain(
            program, candidate, no_drop, model, options
        )

    def test_stale_candidate_prices_to_zero(self, model):
        program = linear_program("p", 2)
        candidate = Candidate(
            pipelet_id="pl_0",
            run=("ghost_a", "ghost_b"),
            order=("ghost_a", "ghost_b"),
            segments=(Segment("cache", ("ghost_a", "ghost_b")),),
            gain_ns=10.0,
            memory_bytes=0.0,
            update_pps=0.0,
        )
        assert evaluate_candidate_gain(
            program, candidate, uniform_profile(program), model,
            SearchOptions(),
        ) == 0.0

    def test_empty_plan_prices_to_zero(self, model):
        program = linear_program("p", 2)
        assert evaluate_plan_gain(
            program,
            OptimizationPlan(),
            uniform_profile(program),
            model,
            SearchOptions(),
        ) == 0.0


class TestTechniqueToggles:
    @pytest.mark.parametrize(
        "disabled",
        ["enable_reorder", "enable_cache", "enable_merge"],
    )
    def test_disabled_technique_never_appears(self, model, disabled):
        program = linear_program("p", 4, MatchType.TERNARY)
        profile = uniform_profile(program)
        for name in ("p_t0", "p_t1"):
            profile.set_action_probs(
                name, {f"{name}_a0": 0.9, f"{name}_a1": 0.1}
            )
        options = SearchOptions(k=1.0, **{disabled: False})
        plan = optimize(program, profile, model, options=options)
        op = {
            "enable_reorder": None,
            "enable_cache": "cache",
            "enable_merge": "merge",
        }[disabled]
        for candidate in plan.candidates:
            if disabled == "enable_reorder":
                assert candidate.order == candidate.run
            else:
                assert not any(
                    s.op == op for s in candidate.segments
                )
