"""Property test: fast path == interpreter on random programs.

Seeded-random differential testing over programs from the synthesizer
(random DAG shapes, match kinds, drop tables), random entries and random
traffic — on the base layout and under full optimizer plans (caches,
merges, reorders). Every packet's :class:`PacketResult` and the final
counter banks must be identical.
"""

import random

import pytest

from repro.core import Deployment, Pipeleon
from repro.ir import exact_entry
from repro.nic.packet import Packet, make_packet
from repro.nic.targets import BLUEFIELD2, EMULATED_NIC
from repro.synthesis import ProgramSynthesizer, SynthesisConfig


def random_packets(seed: int, count: int = 40) -> list[Packet]:
    """Field values overlap the synthesizer's pools so tables hit."""
    rng = random.Random(seed)
    packets = []
    for _ in range(count):
        packet = make_packet(
            src=rng.randrange(1, 50),
            dst=rng.randrange(1, 50),
            sport=rng.randrange(1, 20),
            dport=rng.randrange(1, 20),
        )
        packet.set("ipv4.tos", rng.randrange(0, 4))
        for i in range(0, 64, 4):
            packet.set(f"hdr.f{i}", rng.randrange(0, 6))
        packets.append(packet)
    return packets


def install_random_entries(deployment: Deployment, seed: int) -> None:
    rng = random.Random(seed)
    for table in deployment.original.plain_tables():
        if any(
            k.match_type.value != "exact" for k in table.keys
        ):
            continue
        actions = list(table.actions)
        used = set()
        for _ in range(rng.randrange(0, 4)):
            values = tuple(
                rng.randrange(0, 6) for _ in table.keys
            )
            if values in used:
                continue
            used.add(values)
            deployment.insert_entry(
                table.name, exact_entry(values, rng.choice(actions))
            )


def build_deployment(seed: int, target, optimize: bool) -> Deployment:
    program = ProgramSynthesizer(
        SynthesisConfig(seed=seed, n_pipelets=4)
    ).generate()
    plan = Pipeleon(target).optimize(program) if optimize else None
    deployment = Deployment(
        program, target, plan=plan, native_cache=False
    )
    install_random_entries(deployment, seed)
    return deployment


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("optimize", [False, True], ids=["base", "opt"])
def test_random_programs_bit_identical(seed, optimize):
    target = EMULATED_NIC if optimize else BLUEFIELD2
    interp = build_deployment(seed, target, optimize)
    fast = build_deployment(seed, target, optimize)
    for reference, replayed in zip(
        random_packets(seed), random_packets(seed)
    ):
        expected = interp.emulator.process(reference)
        actual = fast.emulator.replay_one(replayed)
        assert actual == expected
        assert replayed.fields == reference.fields
        assert replayed.metadata == reference.metadata
        assert replayed.egress_port == reference.egress_port
    assert (
        fast.emulator.counters.snapshot()
        == interp.emulator.counters.snapshot()
    )
    assert (
        fast.emulator.explicit_counters
        == interp.emulator.explicit_counters
    )
    for name, cache in interp.emulator.flow_caches.items():
        assert dict(fast.emulator.flow_caches[name]._store) == dict(
            cache._store
        )


@pytest.mark.parametrize("seed", range(5))
def test_random_programs_sampled_counters(seed):
    """Sampling stride > 1 must stay aligned between the engines."""
    program = ProgramSynthesizer(
        SynthesisConfig(seed=seed, n_pipelets=3)
    ).generate()
    interp = Deployment(
        program.clone(), BLUEFIELD2, sample_stride=3, native_cache=False
    )
    fast = Deployment(
        program.clone(), BLUEFIELD2, sample_stride=3, native_cache=False
    )
    install_random_entries(interp, seed)
    install_random_entries(fast, seed)
    for reference, replayed in zip(
        random_packets(seed, 30), random_packets(seed, 30)
    ):
        assert fast.emulator.replay_one(
            replayed
        ) == interp.emulator.process(reference)
    assert (
        fast.emulator.counters.snapshot()
        == interp.emulator.counters.snapshot()
    )
