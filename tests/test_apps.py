"""Tests for the evaluation application programs."""

import pytest

from repro.apps import (
    acl_chain,
    dash_routing,
    l2l3_acl,
    load_balancer,
    microbench,
    migration,
    nf_composition,
)
from repro.core import Deployment, partition
from repro.ir import validate_program
from repro.nic.packet import ipv4, make_packet
from repro.nic.targets import AGILIO_CX, BLUEFIELD2, EMULATED_NIC


class TestMicrobench:
    def test_reorder_program_structure(self):
        program = microbench.reorder_benchmark_program(22, 21)
        validate_program(program)
        order = program.topological_order()
        assert order[-1] == "acl"
        assert len(order) == 22

    def test_acl_position_front(self):
        program = microbench.reorder_benchmark_program(22, 0)
        assert program.root == "acl"

    def test_invalid_position_rejected(self):
        from repro.errors import IrError

        with pytest.raises(IrError):
            microbench.reorder_benchmark_program(10, 10)

    def test_acl_drops_matching_traffic(self):
        program = microbench.reorder_benchmark_program(5, 0)
        deployment = Deployment(program, BLUEFIELD2)
        microbench.install_acl_deny_entry(deployment.control_plane)
        bad = make_packet(dport=microbench.DENY_PORT)
        good = make_packet(dport=80)
        assert deployment.emulator.process(bad).dropped
        assert not deployment.emulator.process(good).dropped

    def test_pipelet_benchmark_replication(self):
        program = microbench.pipelet_benchmark_program(n_copies=3)
        validate_program(program)
        assert len(program) == 12
        pipelets = partition(program, max_len=4)
        assert len(pipelets) == 3

    def test_ternary_mask_entries_set_m(self):
        program = microbench.pipelet_benchmark_program(n_copies=1)
        deployment = Deployment(program, BLUEFIELD2)
        microbench.install_ternary_mask_entries(
            deployment.control_plane, program, n_masks=8
        )
        runtime = deployment.emulator.runtime_tables["p0_t1"]
        assert runtime.memory_accesses == 8


class TestAclChain:
    def test_structure(self):
        program = acl_chain.build_program()
        validate_program(program)
        assert program.root == "acl_cloud"
        assert "routing" in program

    def test_acls_reorderable(self):
        from repro.ir.dependency import can_swap

        program = acl_chain.build_program()
        names = acl_chain.acl_table_names()
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                assert can_swap(program.table(a), program.table(b))

    def test_deny_entries_drop(self):
        program = acl_chain.build_program()
        deployment = Deployment(program, BLUEFIELD2)
        acl_chain.install_acl_entries(deployment.control_plane)
        dropped = make_packet(extra={"ipv4.tos": 1})
        assert deployment.emulator.process(dropped).dropped
        assert not deployment.emulator.process(make_packet()).dropped


class TestLoadBalancer:
    def test_backend_rewrite(self):
        program = load_balancer.build_program()
        validate_program(program)
        deployment = Deployment(program, BLUEFIELD2)
        load_balancer.install_base_entries(deployment.control_plane)
        packet = make_packet(dst=load_balancer.VIP, sport=1024)
        deployment.emulator.process(packet)
        assert packet.get("ipv4.dst") == ipv4(10, 0, 1, 1)
        assert packet.get("l4.dport") == 8080

    def test_insertion_burst_inserts(self):
        program = load_balancer.build_program()
        deployment = Deployment(program, BLUEFIELD2)
        load_balancer.install_base_entries(deployment.control_plane)
        before = deployment.control_plane.entry_count("lb_backend")
        load_balancer.insertion_burst(
            deployment.control_plane, 30000, 50
        )
        after = deployment.control_plane.entry_count("lb_backend")
        assert after == before + 50


class TestDashRouting:
    def test_native_cache_disabled(self):
        program = dash_routing.build_program()
        deployment = Deployment(program, AGILIO_CX)
        assert deployment.emulator.native_cache is None

    def test_metadata_tables_mergeable(self):
        from repro.core.transform import apply_merge

        program = dash_routing.build_program()
        result = apply_merge(
            program, list(dash_routing.METADATA_TABLES[:2])
        )
        validate_program(result.program)

    def test_routing_forwards(self):
        program = dash_routing.build_program()
        deployment = Deployment(program, AGILIO_CX)
        dash_routing.install_base_entries(deployment.control_plane)
        packet = make_packet(dst=ipv4(192, 168, 3, 7))
        result = deployment.emulator.process(packet)
        assert not result.dropped
        assert packet.egress_port is not None
        assert packet.get("ipv4.ttl") == 63


class TestL2L3:
    def test_ip_traffic_takes_route_path(self):
        program = l2l3_acl.build_program()
        validate_program(program)
        deployment = Deployment(program, BLUEFIELD2)
        l2l3_acl.install_base_entries(deployment.control_plane)
        packet = make_packet(dst=ipv4(192, 168, 0, 5))
        result = deployment.emulator.process(packet)
        assert "l2l3_route" in result.path
        assert "l2l3_dmac" not in result.path

    def test_non_ip_takes_l2_path(self):
        program = l2l3_acl.build_program()
        deployment = Deployment(program, BLUEFIELD2)
        l2l3_acl.install_base_entries(deployment.control_plane)
        packet = make_packet()
        packet.set("eth.type", 0x0806)  # ARP
        result = deployment.emulator.process(packet)
        assert "l2l3_dmac" in result.path
        assert "l2l3_route" not in result.path


class TestNfComposition:
    def test_structure_and_pipelets(self):
        program = nf_composition.build_program()
        validate_program(program)
        pipelets = partition(program, max_len=3)
        assert len(pipelets) >= 8  # the paper's nine, modulo chunking

    def test_tos_steering(self):
        program = nf_composition.build_program()
        deployment = Deployment(program, EMULATED_NIC)
        nf_composition.install_base_entries(deployment.control_plane)
        lb = deployment.emulator.process(
            make_packet(extra={"ipv4.tos": nf_composition.TOS_LB})
        )
        routing = deployment.emulator.process(
            make_packet(extra={"ipv4.tos": nf_composition.TOS_ROUTING})
        )
        l2 = deployment.emulator.process(
            make_packet(extra={"ipv4.tos": 0})
        )
        assert any(n.startswith("nf1_") for n in lb.path)
        assert any(n.startswith("nf2_") for n in routing.path)
        assert any(n.startswith("nf3_") for n in l2.path)


class TestMigrationApp:
    def test_naive_partition_migrates_per_pair(self):
        program = migration.partitioned_program(4, n_copies=0)
        validate_program(program)
        deployment = Deployment(program, EMULATED_NIC)
        result = deployment.emulator.process(make_packet())
        # asic->cpu and back per pair, minus the final return.
        assert result.migrations == 7

    def test_more_copies_fewer_migrations(self):
        counts = []
        for n_copies in range(4):
            program = migration.partitioned_program(5, n_copies)
            deployment = Deployment(program, EMULATED_NIC)
            counts.append(
                deployment.emulator.process(make_packet()).migrations
            )
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] < counts[0]

    def test_copies_share_entries(self):
        from repro.ir import exact_entry

        program = migration.partitioned_program(4, n_copies=2)
        deployment = Deployment(program, EMULATED_NIC)
        deployment.insert_entry("asic1", exact_entry(5, "asic1_a0"))
        copy_runtime = deployment.emulator.runtime_tables[
            "asic1__copy_cpu"
        ]
        assert len(copy_runtime) == 1
