"""Tests for the program/profile synthesizers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CostModel, partition, uniform_profile
from repro.core.hotspots import traffic_entropy
from repro.ir import validate_program
from repro.nic.targets import BLUEFIELD2
from repro.synthesis import (
    CATEGORIES,
    ProgramSynthesizer,
    SynthesisConfig,
    make_case,
    make_corpus,
    profiles_by_entropy,
    synthesize_corpus,
    synthesize_profile,
    synthesize_profiles,
)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = ProgramSynthesizer(SynthesisConfig(seed=7)).generate()
        b = ProgramSynthesizer(SynthesisConfig(seed=7)).generate()
        from repro.ir import program_to_json

        assert program_to_json(a) == program_to_json(b)

    def test_different_seeds_differ(self):
        from repro.ir import program_to_json

        a = ProgramSynthesizer(SynthesisConfig(seed=1)).generate()
        b = ProgramSynthesizer(SynthesisConfig(seed=2)).generate()
        assert program_to_json(a) != program_to_json(b)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10000),
        st.integers(min_value=1, max_value=16),
    )
    def test_generated_programs_always_valid(self, seed, n_pipelets):
        program = ProgramSynthesizer(
            SynthesisConfig(n_pipelets=n_pipelets, seed=seed)
        ).generate()
        validate_program(program)  # acyclic, consistent references

    def test_pipelet_count_tracks_request(self):
        for requested in (4, 8, 12):
            program = ProgramSynthesizer(
                SynthesisConfig(n_pipelets=requested, seed=0)
            ).generate()
            found = len(partition(program, max_len=100))
            assert abs(found - requested) <= 2

    def test_pipelet_length_in_range(self):
        program = ProgramSynthesizer(
            SynthesisConfig(
                n_pipelets=6,
                pipelet_len_min=3,
                pipelet_len_max=3,
                seed=1,
            )
        ).generate()
        for pipelet in partition(program, max_len=100):
            assert len(pipelet) == 3

    def test_corpus_size(self):
        corpus = synthesize_corpus(5, 4, 2, 3, base_seed=100)
        assert len(corpus) == 5

    def test_dependency_fraction_creates_dependencies(self):
        from repro.ir.dependency import dependency_graph

        program = ProgramSynthesizer(
            SynthesisConfig(
                n_pipelets=1,
                pipelet_len_min=6,
                pipelet_len_max=6,
                dependency_fraction=1.0,
                seed=2,
            )
        ).generate()
        pipelet = partition(program, max_len=100)[0]
        graph = dependency_graph(pipelet.tables(program))
        assert graph.number_of_edges() > 0


class TestProfileSynthesis:
    def test_probabilities_normalised(self):
        program = ProgramSynthesizer(SynthesisConfig(seed=3)).generate()
        profile = synthesize_profile(program, seed=3)
        for table in program.plain_tables():
            total = sum(profile.action_probs[table.name].values())
            assert total == pytest.approx(1.0)

    def test_drop_bias_raises_drop_rates(self):
        program = ProgramSynthesizer(
            SynthesisConfig(seed=4, drop_table_fraction=1.0)
        ).generate()
        light = synthesize_profile(program, seed=4, drop_bias=0.0)
        heavy = synthesize_profile(program, seed=4, drop_bias=1.0)
        droppers = [
            t for t in program.plain_tables() if t.can_drop
        ]
        mean_light = sum(light.drop_rate(t) for t in droppers)
        mean_heavy = sum(heavy.drop_rate(t) for t in droppers)
        assert mean_heavy > mean_light

    def test_entropy_selection_ordered(self):
        program = ProgramSynthesizer(
            SynthesisConfig(n_pipelets=10, seed=5)
        ).generate()
        profiles = synthesize_profiles(program, 100, base_seed=0)
        model = CostModel.for_target(BLUEFIELD2)
        rows = profiles_by_entropy(program, profiles, model)
        entropies = [entropy for _pct, entropy, _p in rows]
        assert entropies == sorted(entropies)

    def test_branch_probs_randomised(self):
        program = ProgramSynthesizer(
            SynthesisConfig(n_pipelets=9, seed=6)
        ).generate()
        profile = synthesize_profile(program, seed=6)
        values = set(profile.branch_probs.values())
        assert len(values) > 1


class TestCategories:
    def test_all_categories_build(self):
        for category in CATEGORIES:
            case = make_case(category, (2, 3), seed=1)
            validate_program(case.program)
            assert case.category == category

    def test_single_pipelet_restriction(self):
        case = make_case("heavy_drop", (3, 4), seed=2)
        assert len(partition(case.program, max_len=100)) == 1

    def test_heavy_drop_has_droppers(self):
        case = make_case("heavy_drop", (3, 4), seed=3)
        droppers = [
            t for t in case.program.plain_tables() if t.can_drop
        ]
        assert droppers

    def test_small_static_profiles_static(self):
        case = make_case("small_static", (2, 3), seed=4)
        assert all(
            count <= 8 for count in case.profile.entry_counts.values()
        )
        assert all(
            rate <= 0.01 for rate in case.profile.update_rates.values()
        )

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            make_case("bogus", (2, 3))

    def test_corpus(self):
        corpus = make_corpus("high_locality", (2, 3), 4, base_seed=10)
        assert len(corpus) == 4


class TestProfileEdges:
    def make_program(self, **kwargs):
        return ProgramSynthesizer(
            SynthesisConfig(seed=9, **kwargs)
        ).generate()

    def test_max_entries_one_pins_every_table(self):
        program = self.make_program()
        profile = synthesize_profile(program, seed=1, max_entries=1)
        assert profile.entry_counts
        assert set(profile.entry_counts.values()) == {1}

    def test_max_update_rate_zero_freezes_tables(self):
        program = self.make_program()
        profile = synthesize_profile(program, seed=1, max_update_rate=0.0)
        assert profile.update_rates
        assert set(profile.update_rates.values()) == {0.0}

    def test_hit_bias_extremes_shift_default_action_mass(self):
        program = self.make_program()
        static = synthesize_profile(program, seed=2, hit_bias=1.0)
        dynamic = synthesize_profile(program, seed=2, hit_bias=0.0)
        deltas = []
        for table in program.plain_tables():
            if len(table.actions) < 2:
                continue
            default = table.default_action
            deltas.append(
                dynamic.action_probs[table.name][default]
                - static.action_probs[table.name][default]
            )
        # Same seed, so the only difference is the default-action
        # weighting: low hit bias must push mass onto defaults.
        assert deltas and sum(deltas) > 0
        assert all(delta >= 0 for delta in deltas)

    def test_profiles_still_normalised_at_extremes(self):
        program = self.make_program()
        for kwargs in (
            {"hit_bias": 0.0},
            {"hit_bias": 1.0},
            {"drop_bias": 1.0, "max_entries": 1, "max_update_rate": 0.0},
        ):
            profile = synthesize_profile(program, seed=3, **kwargs)
            for table in program.plain_tables():
                total = sum(profile.action_probs[table.name].values())
                assert total == pytest.approx(1.0)

    def test_deterministic_per_seed(self):
        program = self.make_program()
        a = synthesize_profile(program, seed=11)
        b = synthesize_profile(program, seed=11)
        c = synthesize_profile(program, seed=12)
        assert a.entry_counts == b.entry_counts
        assert a.action_probs == b.action_probs
        assert a.update_rates == b.update_rates
        assert (a.entry_counts, a.action_probs) != (
            c.entry_counts,
            c.action_probs,
        )

    def test_synthesize_profiles_distinct_consecutive_seeds(self):
        program = self.make_program()
        profiles = synthesize_profiles(program, 4, base_seed=50)
        assert len(profiles) == 4
        fingerprints = {
            tuple(sorted(p.entry_counts.items())) for p in profiles
        }
        assert len(fingerprints) == 4

    def test_offered_pps_passthrough(self):
        program = self.make_program()
        profile = synthesize_profile(program, seed=1, offered_pps=5e5)
        assert profile.offered_pps == 5e5

    def test_entropy_percentile_clamping(self):
        program = self.make_program(n_pipelets=4)
        profiles = synthesize_profiles(program, 3, base_seed=0)
        model = CostModel.for_target(BLUEFIELD2)
        rows = profiles_by_entropy(
            program, profiles, model, percentiles=(0.0, 100.0, 250.0)
        )
        assert [pct for pct, _e, _p in rows] == [0.0, 100.0, 250.0]
        # Out-of-range percentiles clamp to the extreme profiles
        # rather than indexing past the list.
        assert rows[1][2] is rows[2][2]
