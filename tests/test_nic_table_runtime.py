"""Tests for RuntimeTable (entries bound to a match engine)."""

import pytest

from repro.errors import TableFullError, UnknownEntryError
from repro.ir import exact_entry, linear_program
from repro.ir.actions import Action, Param, noop_action, prim
from repro.ir.builder import ProgramBuilder
from repro.ir.entries import LpmValue, TableEntry
from repro.ir.tables import MatchType
from repro.nic.packet import make_packet
from repro.nic.table_runtime import RuntimeTable


@pytest.fixture
def table_node():
    builder = ProgramBuilder("p")
    builder.table(
        "t",
        ["ipv4.dst"],
        [
            Action("hit", (prim("set_field", "l4.dport", Param(0)),)),
            noop_action("miss"),
        ],
        default_action="miss",
        size=3,
    )
    return builder.build(root="t").table("t")


class TestEntryManagement:
    def test_insert_and_lookup(self, table_node):
        runtime = RuntimeTable(table_node)
        entry = exact_entry(42, "hit", (9999,))
        runtime.insert(entry)
        packet = make_packet(dst=42)
        result = runtime.lookup(packet)
        assert result.hit
        assert result.entry is entry
        assert result.action.name == "hit"
        assert result.action_data == (9999,)

    def test_miss_returns_default(self, table_node):
        runtime = RuntimeTable(table_node)
        result = runtime.lookup(make_packet(dst=1))
        assert not result.hit
        assert result.entry is None
        assert result.action.name == "miss"
        assert result.action_data == ()

    def test_capacity_enforced(self, table_node):
        runtime = RuntimeTable(table_node)
        for value in range(3):
            runtime.insert(exact_entry(value, "hit", (1,)))
        with pytest.raises(TableFullError):
            runtime.insert(exact_entry(99, "hit", (1,)))

    def test_unknown_action_rejected(self, table_node):
        runtime = RuntimeTable(table_node)
        with pytest.raises(UnknownEntryError):
            runtime.insert(exact_entry(1, "teleport"))

    def test_delete(self, table_node):
        runtime = RuntimeTable(table_node)
        entry = exact_entry(5, "hit", (1,))
        runtime.insert(entry)
        runtime.delete(entry.entry_id)
        assert len(runtime) == 0
        assert not runtime.lookup(make_packet(dst=5)).hit

    def test_modify(self, table_node):
        runtime = RuntimeTable(table_node)
        old = exact_entry(5, "hit", (1,))
        runtime.insert(old)
        new = exact_entry(5, "hit", (2,))
        runtime.modify(old.entry_id, new)
        assert runtime.lookup(make_packet(dst=5)).action_data == (2,)

    def test_clear(self, table_node):
        runtime = RuntimeTable(table_node)
        runtime.insert(exact_entry(5, "hit", (1,)))
        runtime.clear()
        assert len(runtime) == 0

    def test_constructor_installs_entries(self, table_node):
        entries = [exact_entry(v, "hit", (v,)) for v in range(2)]
        runtime = RuntimeTable(table_node, entries)
        assert len(runtime) == 2


class TestAccounting:
    def test_memory_accesses_track_entries(self):
        program = linear_program("p", 1, MatchType.LPM)
        runtime = RuntimeTable(program.table("p_t0"))
        assert runtime.memory_accesses == 1
        runtime.insert(TableEntry((LpmValue(0, 8),), "p_t0_a0"))
        runtime.insert(
            TableEntry((LpmValue(0x0A000000, 24),), "p_t0_a0")
        )
        assert runtime.memory_accesses == 2

    def test_memory_bytes_scale_with_m(self):
        program = linear_program("p", 1, MatchType.LPM)
        runtime = RuntimeTable(program.table("p_t0"))
        runtime.insert(TableEntry((LpmValue(0, 8),), "p_t0_a0"))
        one_prefix = runtime.memory_bytes
        runtime.insert(
            TableEntry((LpmValue(0x0A000000, 24),), "p_t0_a0")
        )
        # Two entries at m=2 cost four times one entry at m=1.
        assert runtime.memory_bytes == 4 * one_prefix

    def test_absent_fields_read_as_zero(self, table_node):
        runtime = RuntimeTable(table_node)
        runtime.insert(exact_entry(0, "hit", (1,)))
        packet = make_packet()
        del packet.fields["ipv4.dst"]
        assert runtime.lookup(packet).hit
