"""Tests for the optimization search (§4.2, Figure 16)."""

import math

import pytest

from repro.core import (
    CostModel,
    ResourceBudget,
    enumerate_segmentations,
    exhaustive_search,
    global_search,
    local_candidates,
    optimize,
    partition,
    uniform_profile,
)
from repro.core.plan import Candidate, Segment
from repro.core.search import SearchOptions
from repro.ir import linear_program
from repro.ir.tables import MatchType
from repro.nic.targets import BLUEFIELD2


@pytest.fixture
def model():
    return CostModel.for_target(BLUEFIELD2)


def make_candidate(pipelet_id, gain, mem=0.0, upd=0.0):
    tables = ("t1", "t2")
    return Candidate(
        pipelet_id=pipelet_id,
        run=tables,
        order=tables,
        segments=(Segment("cache", tables),),
        gain_ns=gain,
        memory_bytes=mem,
        update_pps=upd,
    )


class TestSegmentEnumeration:
    def test_single_table(self):
        options = SearchOptions()
        labelings = enumerate_segmentations(1, options)
        assert set(labelings) == {
            (("none", 1),),
            (("cache", 1),),
        }

    def test_two_tables_include_merge(self):
        labelings = enumerate_segmentations(2, SearchOptions())
        assert (("merge", 2),) in labelings
        assert (("cache", 2),) in labelings
        assert (("cache", 1), ("cache", 1)) in labelings
        assert (("none", 1), ("none", 1)) in labelings

    def test_merge_respects_max_tables(self):
        options = SearchOptions(merge_max_tables=2)
        labelings = enumerate_segmentations(3, options)
        assert (("merge", 3),) not in labelings
        options = SearchOptions(merge_max_tables=3)
        assert (("merge", 3),) in enumerate_segmentations(3, options)

    def test_disabled_techniques(self):
        options = SearchOptions(enable_cache=False, enable_merge=False)
        labelings = enumerate_segmentations(3, options)
        assert labelings == [(("none", 1),) * 3]

    def test_all_labelings_cover_n(self):
        for labels in enumerate_segmentations(4, SearchOptions()):
            assert sum(length for _op, length in labels) == 4

    def test_no_duplicates(self):
        labelings = enumerate_segmentations(4, SearchOptions())
        assert len(labelings) == len(set(labelings))


class TestLocalCandidates:
    def test_ternary_chain_prefers_caching(self, model):
        program = linear_program("p", 4, MatchType.TERNARY)
        profile = uniform_profile(program)
        pipelet = partition(program)[0]
        candidates, evaluated = local_candidates(
            program, pipelet, profile, model, SearchOptions(), 1.0
        )
        assert evaluated > 0
        assert candidates
        best = candidates[0]
        assert any(s.op == "cache" for s in best.segments)
        assert best.gain_ns > 0

    def test_exact_chain_with_static_tables_can_merge(self, model):
        program = linear_program("p", 2, MatchType.EXACT)
        profile = uniform_profile(program)
        # Static, highly-hit tables: merging is attractive.
        for name in ("p_t0", "p_t1"):
            profile.set_action_probs(
                name, {f"{name}_a0": 0.95, f"{name}_a1": 0.05}
            )
            profile.entry_counts[name] = 3
        pipelet = partition(program)[0]
        candidates, _ = local_candidates(
            program, pipelet, profile, model, SearchOptions(), 1.0
        )
        assert any(
            any(s.op == "merge" for s in c.segments)
            for c in candidates
        )

    def test_merge_of_non_exact_excluded(self, model):
        program = linear_program("p", 2, MatchType.TERNARY)
        profile = uniform_profile(program)
        pipelet = partition(program)[0]
        candidates, _ = local_candidates(
            program, pipelet, profile, model, SearchOptions(), 1.0
        )
        assert not any(
            any(s.op == "merge" for s in c.segments)
            for c in candidates
        )

    def test_candidates_sorted_by_gain(self, model):
        program = linear_program("p", 3, MatchType.TERNARY)
        profile = uniform_profile(program)
        pipelet = partition(program)[0]
        candidates, _ = local_candidates(
            program, pipelet, profile, model, SearchOptions(), 1.0
        )
        gains = [c.gain_ns for c in candidates]
        assert gains == sorted(gains, reverse=True)

    def test_zero_reach_probability_no_gain(self, model):
        program = linear_program("p", 3, MatchType.TERNARY)
        profile = uniform_profile(program)
        pipelet = partition(program)[0]
        candidates, _ = local_candidates(
            program, pipelet, profile, model, SearchOptions(), 0.0
        )
        assert candidates == []


class TestGlobalSearch:
    def test_unbounded_picks_best_per_pipelet(self):
        groups = {
            "p1": [make_candidate("p1", 10), make_candidate("p1", 20)],
            "p2": [make_candidate("p2", 5)],
        }
        chosen = global_search(
            groups, ResourceBudget(), SearchOptions()
        )
        assert sorted(c.gain_ns for c in chosen) == [5, 20]

    def test_memory_budget_respected(self):
        groups = {
            "p1": [make_candidate("p1", 20, mem=900)],
            "p2": [make_candidate("p2", 10, mem=900)],
        }
        budget = ResourceBudget(memory_bytes=1000)
        chosen = global_search(groups, budget, SearchOptions())
        assert len(chosen) == 1
        assert chosen[0].gain_ns == 20
        assert sum(c.memory_bytes for c in chosen) <= 1000

    def test_update_budget_respected(self):
        groups = {
            "p1": [make_candidate("p1", 20, upd=80)],
            "p2": [make_candidate("p2", 15, upd=80)],
        }
        budget = ResourceBudget(update_pps=100)
        chosen = global_search(groups, budget, SearchOptions())
        assert len(chosen) == 1
        assert chosen[0].gain_ns == 20

    def test_knapsack_beats_greedy(self):
        """Two small options beat one big one — greedy-by-gain fails."""
        groups = {
            "p1": [
                make_candidate("p1", 10, mem=1000),
                make_candidate("p1", 7, mem=400),
            ],
            "p2": [make_candidate("p2", 7, mem=400)],
        }
        budget = ResourceBudget(memory_bytes=1000)
        chosen = global_search(groups, budget, SearchOptions())
        assert sum(c.gain_ns for c in chosen) == 14

    def test_at_most_one_per_pipelet(self):
        groups = {
            "p1": [
                make_candidate("p1", 10, mem=10),
                make_candidate("p1", 9, mem=10),
            ],
        }
        chosen = global_search(
            groups, ResourceBudget(memory_bytes=1e6), SearchOptions()
        )
        assert len(chosen) == 1

    def test_infeasible_candidates_skipped(self):
        groups = {"p1": [make_candidate("p1", 10, mem=5000)]}
        budget = ResourceBudget(memory_bytes=100)
        assert global_search(groups, budget, SearchOptions()) == []

    def test_empty_input(self):
        assert global_search({}, ResourceBudget(), SearchOptions()) == []


class TestOptimizeEndToEnd:
    def test_plan_within_budget(self):
        program = linear_program("p", 8, MatchType.TERNARY)
        profile = uniform_profile(program)
        model = CostModel.for_target(BLUEFIELD2)
        budget = ResourceBudget(memory_bytes=200000, update_pps=1e5)
        plan = optimize(program, profile, model, budget=budget)
        assert plan.total_memory_bytes <= budget.memory_bytes
        assert plan.total_update_pps <= budget.update_pps
        assert plan.total_gain_ns > 0

    def test_topk_subset_of_esearch_quality(self):
        """ESearch gain >= top-k gain (it considers every pipelet)."""
        program = linear_program("p", 12, MatchType.TERNARY)
        profile = uniform_profile(program)
        model = CostModel.for_target(BLUEFIELD2)
        options = SearchOptions(k=0.34, max_pipelet_len=3)
        top = optimize(program, profile, model, options=options)
        full = exhaustive_search(
            program, profile, model, options=options
        )
        assert full.total_gain_ns >= top.total_gain_ns - 1e-9
        assert full.pipelets_considered >= top.pipelets_considered

    def test_search_reports_timing(self):
        program = linear_program("p", 4, MatchType.TERNARY)
        profile = uniform_profile(program)
        model = CostModel.for_target(BLUEFIELD2)
        plan = optimize(program, profile, model)
        assert plan.search_time_s >= 0
        assert plan.combos_evaluated > 0

    def test_group_candidates_on_diamond(self, branching_program):
        profile = uniform_profile(branching_program)
        # Make the sides expensive enough that caching beats the
        # miss-path insertion cost.
        for name in ("left", "right"):
            profile.table_m[name] = 30
        model = CostModel.for_target(BLUEFIELD2)
        plan = optimize(
            branching_program,
            profile,
            model,
            options=SearchOptions(k=1.0),
        )
        group_candidates = [
            c for c in plan.candidates if c.group is not None
        ]
        assert group_candidates
        assert group_candidates[0].pipelet_id == "grp_cond"
