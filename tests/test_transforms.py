"""Tests for the program transformations (§3.2)."""

import pytest

from repro.core import Deployment, partition, find_groups
from repro.core.transform import (
    apply_cache,
    apply_copy,
    apply_group_cache,
    apply_merge,
    apply_naive_merge,
    apply_partition,
    apply_reorder,
    composite_action,
    count_crossings,
    drop_rate_order,
)
from repro.core.profiling import RuntimeProfile, uniform_profile
from repro.errors import TransformError
from repro.ir import linear_program, validate_program
from repro.ir.actions import Action, Param, noop_action, prim
from repro.ir.entries import ExactValue, TableEntry
from repro.ir.tables import MatchType, Pipeline, TableKind
from repro.nic.emulator import NicEmulator
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2, EMULATED_NIC


class TestReorder:
    def test_simple_swap(self, chain5):
        run = [f"chain5_t{i}" for i in range(5)]
        order = [run[1], run[0]] + run[2:]
        result = apply_reorder(chain5, run, order)
        validate_program(result.program)
        assert result.program.root == "chain5_t1"
        assert result.program.successors("chain5_t1") == ["chain5_t0"]
        assert result.program.successors("chain5_t0") == ["chain5_t2"]

    def test_original_untouched(self, chain5):
        run = [f"chain5_t{i}" for i in range(5)]
        apply_reorder(chain5, run, list(reversed(run)))
        assert chain5.root == "chain5_t0"

    def test_identity_is_noop(self, chain5):
        run = [f"chain5_t{i}" for i in range(5)]
        result = apply_reorder(chain5, run, run)
        assert result.program.topological_order() == (
            chain5.topological_order()
        )

    def test_non_permutation_rejected(self, chain5):
        with pytest.raises(TransformError):
            apply_reorder(
                chain5, ["chain5_t0", "chain5_t1"], ["chain5_t0"]
            )

    def test_dependency_violation_rejected(self):
        from repro.ir.builder import ProgramBuilder

        builder = ProgramBuilder("dep")
        builder.table(
            "w",
            ["f1"],
            [Action("write", (prim("set_field", "f2", 1),))],
        )
        builder.table("r", ["f2"], [noop_action("read")])
        builder.chain(["w", "r"])
        program = builder.build(root="w")
        with pytest.raises(TransformError):
            apply_reorder(program, ["w", "r"], ["r", "w"])

    def test_interior_run_reorder(self, chain5):
        """Reordering a run in the middle rewires the incoming edge."""
        run = ["chain5_t1", "chain5_t2", "chain5_t3"]
        result = apply_reorder(chain5, run, list(reversed(run)))
        program = result.program
        assert program.successors("chain5_t0") == ["chain5_t3"]
        assert program.successors("chain5_t1") == ["chain5_t4"]

    def test_drop_rate_order_greedy(self, acl_program):
        profile = uniform_profile(acl_program)
        profile.set_action_probs(
            "acl2", {"acl2_deny": 0.9, "acl2_permit": 0.1}
        )
        profile.set_action_probs(
            "acl0", {"acl0_deny": 0.1, "acl0_permit": 0.9}
        )
        profile.set_action_probs(
            "acl1", {"acl1_deny": 0.5, "acl1_permit": 0.5}
        )
        tables = [acl_program.table(f"acl{i}") for i in range(3)]
        assert drop_rate_order(tables, profile) == (
            "acl2",
            "acl1",
            "acl0",
        )


class TestCache:
    def test_cache_node_shape(self, chain5):
        result = apply_cache(chain5, ["chain5_t1", "chain5_t2"])
        program = result.program
        validate_program(program)
        cache = program.table("cache__chain5_t1__chain5_t2")
        assert cache.kind is TableKind.CACHE
        assert cache.cache_info.mode == "flow"
        assert cache.cache_info.hit_next == "chain5_t3"
        assert cache.cache_info.miss_next == "chain5_t1"
        # Key is the union of covered match fields.
        assert set(cache.match_fields) == {"ipv4.f1", "ipv4.f2"}
        # Incoming edge now points at the cache.
        assert program.successors("chain5_t0") == [cache.name]

    def test_cache_at_root(self, chain5):
        result = apply_cache(chain5, ["chain5_t0"])
        assert result.program.root == "cache__chain5_t0"

    def test_non_contiguous_rejected(self, chain5):
        with pytest.raises(TransformError):
            apply_cache(chain5, ["chain5_t0", "chain5_t2"])

    def test_switch_case_rejected(self):
        from repro.ir.builder import ProgramBuilder

        builder = ProgramBuilder("p")
        builder.table(
            "sw",
            ["f"],
            [noop_action("x"), noop_action("y")],
            next_map={"x": "a", "y": "b"},
        )
        builder.table("a", ["fa"], [noop_action("aa")])
        builder.table("b", ["fb"], [noop_action("bb")])
        program = builder.build(root="sw")
        with pytest.raises(TransformError):
            apply_cache(program, ["sw"])

    def test_cache_semantics_in_emulator(self, chain5):
        """Hits replay recorded effects and skip the covered tables."""
        result = apply_cache(chain5, ["chain5_t1", "chain5_t2"])
        emulator = NicEmulator(
            result.program, BLUEFIELD2, instrument=False
        )
        first = emulator.process(make_packet())
        second = emulator.process(make_packet())
        cache_name = "cache__chain5_t1__chain5_t2"
        assert "chain5_t1" in first.path
        assert "chain5_t1" not in second.path
        assert second.latency_ns < first.latency_ns
        assert emulator.flow_caches[cache_name].stats.hits == 1

    def test_group_cache(self, branching_program):
        pipelets = partition(branching_program)
        group = find_groups(branching_program, pipelets)[0]
        result = apply_group_cache(branching_program, group)
        program = result.program
        validate_program(program)
        cache = program.table(f"gcache__{group.branch}")
        # Branch condition field is part of the cache key.
        assert "ipv4.tos" in cache.match_fields
        emulator = NicEmulator(program, BLUEFIELD2, instrument=False)
        p1 = emulator.process(make_packet(extra={"ipv4.tos": 1}))
        p2 = emulator.process(make_packet(extra={"ipv4.tos": 1}))
        assert "left" in p1.path
        # The hit skips the branch, the taken side, and (because the
        # group absorbed the reconvergence pipelet) the join table.
        assert "left" not in p2.path and "cond" not in p2.path
        cache_node = program.table(f"gcache__{group.branch}")
        assert "join" in cache_node.cache_info.covers
        assert p2.latency_ns < p1.latency_ns


class TestMerge:
    def test_merged_node_shape(self, chain5):
        result = apply_merge(chain5, ["chain5_t1", "chain5_t2"])
        program = result.program
        validate_program(program)
        merged = program.table("merged__chain5_t1__chain5_t2")
        assert merged.kind is TableKind.MERGED
        assert merged.cache_info.mode == "merge"
        # Composite hit x hit actions: 2 x 2 plus the miss action.
        assert len(merged.actions) == 5
        assert all(
            k.match_type is MatchType.EXACT for k in merged.keys
        )

    def test_merge_requires_exact_tables(self):
        program = linear_program("p", 3, MatchType.TERNARY)
        with pytest.raises(TransformError):
            apply_merge(program, ["p_t0", "p_t1"])

    def test_merge_needs_two_tables(self, chain5):
        with pytest.raises(TransformError):
            apply_merge(chain5, ["chain5_t0"])

    def test_naive_merge_is_ternary_and_removes_originals(self, chain5):
        result = apply_naive_merge(chain5, ["chain5_t1", "chain5_t2"])
        program = result.program
        merged = program.table("tmerged__chain5_t1__chain5_t2")
        assert all(
            k.match_type is MatchType.TERNARY for k in merged.keys
        )
        assert "chain5_t1" not in program
        assert "chain5_t2" not in program
        validate_program(program)

    def test_composite_action_param_reindexing(self):
        a = Action("a", (prim("set_field", "x", Param(0)),))
        b = Action("b", (prim("set_field", "y", Param(0)),))
        combo = composite_action([a, b])
        assert combo.name == "a+b"
        args = [p.args for p in combo.primitives]
        assert args[0] == ("x", Param(0))
        assert args[1] == ("y", Param(1))


class TestPartitionAndCopy:
    def test_partition_inserts_plumbing(self):
        program = linear_program("p", 4)
        result = apply_partition(
            program, {"p_t1": Pipeline.CPU, "p_t2": Pipeline.CPU}
        )
        partitioned = result.program
        validate_program(partitioned)
        assert "mig__asic__p_t1" in partitioned
        assert "nav__cpu" in partitioned
        assert "mig__cpu__p_t3" in partitioned
        assert "nav__asic" in partitioned

    def test_partition_preserves_semantics(self):
        program = linear_program("p", 4)
        result = apply_partition(
            program, {"p_t1": Pipeline.CPU, "p_t2": Pipeline.CPU}
        )
        emulator = NicEmulator(
            result.program, EMULATED_NIC, instrument=False
        )
        outcome = emulator.process(make_packet())
        # All four tables still execute, in order, plus plumbing.
        tables_seen = [n for n in outcome.path if n.startswith("p_t")]
        assert tables_seen == ["p_t0", "p_t1", "p_t2", "p_t3"]
        assert outcome.migrations == 2

    def test_count_crossings(self):
        program = linear_program("p", 4)
        program.assign_pipeline(["p_t1", "p_t3"], Pipeline.CPU)
        # t0->t1 (cross), t1->t2 (cross), t2->t3 (cross) = 3; t3->None no
        assert count_crossings(program) == 3

    def test_unknown_node_rejected(self, chain5):
        with pytest.raises(TransformError):
            apply_partition(chain5, {"ghost": Pipeline.CPU})

    def test_copy_rewires_cpu_edges(self):
        program = linear_program("p", 3)
        program.assign_pipeline(["p_t0", "p_t2"], Pipeline.CPU)
        # p_t1 is ASIC, between two CPU tables; copy it to CPU.
        result = apply_copy(program, "p_t1", Pipeline.CPU)
        copied = result.program
        assert copied.successors("p_t0") == ["p_t1__copy_cpu"]
        assert copied.successors("p_t1__copy_cpu") == ["p_t2"]
        # Original keeps its place for ASIC-side users (none here).
        assert "p_t1" in copied

    def test_copy_reduces_migrations(self):
        from repro.apps.migration import partitioned_program

        naive = partitioned_program(4, n_copies=0)
        copied = partitioned_program(4, n_copies=3)
        emulator_naive = NicEmulator(
            naive, EMULATED_NIC, instrument=False
        )
        emulator_copied = NicEmulator(
            copied, EMULATED_NIC, instrument=False
        )
        naive_result = emulator_naive.process(make_packet())
        copied_result = emulator_copied.process(make_packet())
        assert copied_result.migrations < naive_result.migrations

    def test_copy_rejects_same_pipeline(self):
        program = linear_program("p", 2)
        program.assign_pipeline(["p_t0"], Pipeline.CPU)
        with pytest.raises(TransformError):
            apply_copy(program, "p_t0", Pipeline.CPU)
