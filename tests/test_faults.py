"""Fault injection and supervised recovery for the sharded runtime.

The contract under test (DESIGN.md §12): scripted worker failures —
kill, hang, delay, drop_reply — injected at deterministic points in the
packet stream are detected by the supervisor within its configured
timeouts, classified correctly, and recovered per policy:

* ``respawn`` rebuilds the shard from its journal and the merged run
  stats stay **bit-identical** to a fault-free twin;
* ``degraded`` reroutes the lost shard's future flows to survivors and
  accounts the lost packets;
* ``fail`` raises a diagnosable :class:`EmulationError` in bounded time
  (no indefinite hangs, including during ``close()``).
"""

import time

import pytest

from repro.apps import EXAMPLE_APPS
from repro.core import Deployment, ShardedDeployment
from repro.errors import EmulationError
from repro.nic.faults import (
    AUTO_BATCH_SPAN,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    parse_fault,
)
from repro.nic.sharding import (
    ShardedEmulator,
    ShardJournal,
    SupervisorOptions,
)
from repro.nic.targets import EMULATED_NIC
from repro.telemetry import Telemetry
from tests.test_nic_sharding import (
    app_packets,
    assert_sharded_identical,
    perturb_control_plane,
    stats_fingerprint,
)

#: Tight supervision for tests: failures classify in ~a second, not a
#: minute, and close() never dawdles.
def fast_options(**overrides) -> SupervisorOptions:
    base = dict(
        recv_timeout_s=5.0,
        slow_after_s=0.2,
        heartbeat_interval_s=0.01,
        send_timeout_s=1.0,
        send_retries=2,
        backoff_base_s=0.01,
        close_timeout_s=0.5,
    )
    base.update(overrides)
    return SupervisorOptions(**base)


def make_sharded(
    app: str,
    n_workers: int,
    *,
    options: SupervisorOptions,
    fault_plan=None,
    telemetry=None,
    transport: str = "shm",
) -> ShardedDeployment:
    build, install = EXAMPLE_APPS[app]
    sharded = ShardedDeployment(
        build(),
        EMULATED_NIC,
        n_workers=n_workers,
        supervisor=options,
        fault_plan=fault_plan,
        telemetry=telemetry,
        transport=transport,
    )
    install(sharded.control_plane)
    return sharded


def make_single(app: str) -> Deployment:
    build, install = EXAMPLE_APPS[app]
    single = Deployment(build(), EMULATED_NIC)
    install(single.control_plane)
    return single


def event_kinds(telemetry: Telemetry, prefix: str = "") -> list[str]:
    return [
        e["kind"]
        for e in telemetry.events.events()
        if e["kind"].startswith(prefix)
    ]


class TestParseFault:
    def test_full_spec_round_trips(self):
        spec = parse_fault("kill:shard=1,batch=3")
        assert spec == FaultSpec("kill", shard=1, at_batch=3)
        assert parse_fault(spec.describe()) == spec

    def test_packet_position(self):
        spec = parse_fault("hang:shard=0,packet=500")
        assert spec.at_packet == 500 and spec.at_batch is None

    def test_delay_seconds(self):
        spec = parse_fault("delay:shard=2,batch=1,seconds=0.5")
        assert spec.delay_s == 0.5
        assert parse_fault("delay:delay=0.25").delay_s == 0.25

    def test_bare_kind_defers_to_auto_placement(self):
        spec = parse_fault("kill")
        assert spec.at_batch is None and spec.at_packet is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="Unknown fault kind"):
            parse_fault("explode:shard=0")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault("kill:shard")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="Unknown fault parameter"):
            parse_fault("kill:core=0")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="not both"):
            FaultSpec("kill", at_batch=1, at_packet=1)
        with pytest.raises(ValueError, match="shard"):
            FaultSpec("kill", shard=-1)
        with pytest.raises(ValueError, match="at_batch"):
            FaultSpec("kill", at_batch=-1)


class TestFaultPlan:
    def test_auto_placement_is_deterministic(self):
        specs = (FaultSpec("kill", shard=1), FaultSpec("hang"))
        first = FaultPlan(specs, seed=7)
        second = FaultPlan(specs, seed=7)
        assert first.specs == second.specs
        for spec in first.specs:
            assert 0 <= spec.at_batch < AUTO_BATCH_SPAN

    def test_explicit_positions_pass_through(self):
        spec = FaultSpec("kill", shard=0, at_batch=5)
        assert FaultPlan((spec,), seed=9).specs == (spec,)

    def test_from_args_and_shard_filters(self):
        plan = FaultPlan.from_args(
            ["kill:shard=0,batch=1", "hang:shard=2,batch=0"], seed=3
        )
        assert len(plan) == 2 and bool(plan)
        assert plan.max_shard() == 2
        assert [s.kind for s in plan.for_shard(2)] == ["hang"]
        assert plan.for_shard(1) == ()
        assert not FaultPlan()

    def test_plan_shard_out_of_range_rejected_by_emulator(self):
        build, install = EXAMPLE_APPS["l2l3_acl"]
        plan = FaultPlan((FaultSpec("kill", shard=5, at_batch=0),))
        with pytest.raises(ValueError, match="shard 5"):
            ShardedDeployment(
                build(), EMULATED_NIC, n_workers=2, fault_plan=plan
            )


class TestFaultInjector:
    def test_batch_trigger_fires_once_at_position(self):
        injector = FaultInjector(
            [FaultSpec("drop_reply", at_batch=2)]
        )
        injector.before_batch(10)
        injector.before_batch(10)
        assert injector.should_reply()  # not fired yet
        injector.before_batch(10)  # batch index 2: fires
        assert not injector.should_reply()  # suppressed exactly once
        assert injector.should_reply()
        injector.before_batch(10)  # one-shot: no re-fire
        assert injector.should_reply()

    def test_packet_trigger(self):
        injector = FaultInjector(
            [FaultSpec("drop_reply", at_packet=25)]
        )
        injector.before_batch(20)  # packets 0..19
        assert injector.should_reply()
        injector.before_batch(20)  # crosses packet 25
        assert not injector.should_reply()


class TestRespawnRecovery:
    """recovery='respawn': rebuilt shards converge to the exact
    pre-failure state, so merged stats are bit-identical to a
    fault-free run."""

    def run_pair(
        self,
        fault_plan,
        telemetry=None,
        transport="shm",
        **option_overrides,
    ):
        options = fast_options(
            recovery="respawn", **option_overrides
        )
        single = make_single("l2l3_acl")
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=options,
            fault_plan=fault_plan,
            telemetry=telemetry,
            transport=transport,
        )
        try:
            reference = single.replay(
                app_packets(7, 600), offered_pps=1e6, batch=32
            )
            replayed = sharded.replay(
                app_packets(7, 600), offered_pps=1e6, batch=32
            )
            return single, sharded, reference, replayed
        except BaseException:
            sharded.close()
            raise

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_kill_respawn_bit_identical(self, transport):
        telemetry = Telemetry()
        plan = FaultPlan(
            (FaultSpec("kill", shard=0, at_batch=3),)
        )
        single, sharded, reference, replayed = self.run_pair(
            plan, telemetry, transport=transport
        )
        try:
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            assert_sharded_identical(single, sharded)
            assert sharded.worker_respawns == [1, 0]
            assert sharded.emulator.total_respawns == 1
            kinds = event_kinds(telemetry)
            assert "worker_dead" in kinds
            assert "worker_respawned" in kinds
            assert "worker_recovered" in kinds
            assert telemetry.registry.value(
                "pipeleon_worker_respawns_total", shard=0
            ) == 1
            assert telemetry.registry.value(
                "pipeleon_worker_faults_total", kind="dead", shard=0
            ) == 1
        finally:
            sharded.close()

    def test_kill_after_control_updates_converges_epoch(self):
        # The journal retains every control broadcast, so a respawned
        # worker converges to the pre-failure epoch too — collect()
        # asserts every worker acked the latest epoch.
        single = make_single("l2l3_acl")
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=fast_options(recovery="respawn"),
            fault_plan=FaultPlan(
                (FaultSpec("kill", shard=1, at_batch=2),)
            ),
        )
        try:
            perturb_control_plane(single)
            perturb_control_plane(sharded)
            reference = single.replay(
                app_packets(9, 600), offered_pps=1e6, batch=32
            )
            replayed = sharded.replay(
                app_packets(9, 600), offered_pps=1e6, batch=32
            )
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            assert sharded.emulator.epoch > 0
            sharded.emulator.collect()  # asserts epoch ack
            assert_sharded_identical(single, sharded)
        finally:
            sharded.close()

    def test_hang_escalates_to_respawn_identical(self):
        telemetry = Telemetry()
        plan = FaultPlan((FaultSpec("hang", shard=0, at_batch=2),))
        start = time.monotonic()
        single, sharded, reference, replayed = self.run_pair(
            plan, telemetry, recv_timeout_s=1.0
        )
        try:
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            assert sharded.worker_respawns == [1, 0]
            assert "worker_hung" in event_kinds(telemetry)
            # Detection is deadline-bounded, not indefinite.
            assert time.monotonic() - start < 30.0
        finally:
            sharded.close()

    def test_drop_reply_starves_recv_then_respawns(self):
        telemetry = Telemetry()
        plan = FaultPlan(
            (FaultSpec("drop_reply", shard=1, at_batch=0),)
        )
        single, sharded, reference, replayed = self.run_pair(
            plan, telemetry, recv_timeout_s=1.0
        )
        try:
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            assert sharded.worker_respawns == [0, 1]
            assert "worker_hung" in event_kinds(telemetry)
        finally:
            sharded.close()

    def test_delay_reports_slow_without_escalating(self):
        telemetry = Telemetry()
        plan = FaultPlan(
            (
                FaultSpec(
                    "delay", shard=0, at_batch=1, delay_s=0.6
                ),
            )
        )
        single, sharded, reference, replayed = self.run_pair(
            plan, telemetry
        )
        try:
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            assert sharded.worker_respawns == [0, 0]
            kinds = event_kinds(telemetry)
            assert "worker_slow" in kinds
            assert "worker_respawned" not in kinds
            recovered = telemetry.events.last("worker_recovered")
            assert recovered is not None
            assert recovered["state"] == "slow"
        finally:
            sharded.close()

    def test_respawn_budget_exhaustion_raises(self):
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=fast_options(
                recovery="respawn", max_respawns=0
            ),
            fault_plan=FaultPlan(
                (FaultSpec("kill", shard=0, at_batch=0),)
            ),
        )
        try:
            with pytest.raises(
                EmulationError, match="respawn budget exhausted"
            ):
                sharded.replay(
                    app_packets(7, 600), offered_pps=1e6, batch=32
                )
        finally:
            sharded.close()

    def test_journal_truncation_is_reported(self):
        telemetry = Telemetry()
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=fast_options(
                recovery="respawn", journal_limit=2
            ),
            fault_plan=FaultPlan(
                (FaultSpec("kill", shard=0, at_batch=5),)
            ),
            telemetry=telemetry,
        )
        try:
            stats = sharded.replay(
                app_packets(7, 600), offered_pps=1e6, batch=32
            )
            # Recovery completed, but past the journal horizon it is
            # best-effort: the evicted batches' stats died with the
            # worker.
            assert sharded.worker_respawns == [1, 0]
            truncated = telemetry.events.last("journal_truncated")
            assert truncated is not None
            assert truncated["dropped_packets"] > 0
            assert stats.packets == 600 - truncated["dropped_packets"]
        finally:
            sharded.close()


class TestFailFast:
    """recovery='fail' (the default): clear errors in bounded time."""

    def test_hang_detected_within_timeout(self):
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=fast_options(recv_timeout_s=0.8),
            fault_plan=FaultPlan(
                (FaultSpec("hang", shard=0, at_batch=0),)
            ),
        )
        start = time.monotonic()
        try:
            with pytest.raises(
                EmulationError, match="unresponsive"
            ) as excinfo:
                sharded.replay(
                    app_packets(7, 600), offered_pps=1e6, batch=32
                )
            message = str(excinfo.value)
            assert "repro-shard-0" in message
            assert "recovery='respawn'" in message
        finally:
            close_start = time.monotonic()
            sharded.close()
            # Regression: close() used to block forever on a hung
            # worker's full pipe; it must stay bounded.
            assert time.monotonic() - close_start < 15.0
        assert time.monotonic() - start < 30.0
        assert all(
            not p.is_alive() for p in sharded.emulator._procs
        )

    def test_kill_names_shard_and_exitcode(self):
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=fast_options(),
            fault_plan=FaultPlan(
                (FaultSpec("kill", shard=1, at_batch=0),)
            ),
        )
        try:
            with pytest.raises(
                EmulationError, match="died without replying"
            ) as excinfo:
                sharded.replay(
                    app_packets(7, 600), offered_pps=1e6, batch=32
                )
            assert "repro-shard-1" in str(excinfo.value)
        finally:
            sharded.close()

    def test_broadcast_retry_exhaustion(self, monkeypatch):
        # A pipe that never becomes writable exhausts the bounded
        # retry/backoff budget and classifies the worker, instead of
        # blocking the broadcast forever.
        telemetry = Telemetry()
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=fast_options(
                send_timeout_s=0.05, send_retries=2
            ),
            telemetry=telemetry,
        )
        try:
            monkeypatch.setattr(
                ShardedEmulator,
                "_wait_writable",
                staticmethod(lambda conn, timeout_s: False),
            )
            with pytest.raises(EmulationError, match="unresponsive"):
                sharded.emulator.flush_caches()
            assert telemetry.registry.value(
                "pipeleon_broadcast_retries_total", shard=0
            ) == 2
        finally:
            monkeypatch.undo()
            sharded.close()


class TestDegradedRecovery:
    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_survivors_absorb_lost_shards_flows(self, transport):
        telemetry = Telemetry()
        total = 600
        sharded = make_sharded(
            "l2l3_acl",
            3,
            options=fast_options(recovery="degraded"),
            fault_plan=FaultPlan(
                (FaultSpec("kill", shard=1, at_batch=1),)
            ),
            telemetry=telemetry,
            transport=transport,
        )
        try:
            stats = sharded.replay(
                app_packets(7, total), offered_pps=1e6, batch=32
            )
            # Every packet is either replayed by a survivor or
            # accounted as lost with the dead shard — none vanish.
            assert stats.lost_packets > 0
            assert stats.packets == total - stats.lost_packets
            assert sharded.degraded_shards == [1]
            assert sharded.lost_packets == stats.lost_packets
            degraded = telemetry.events.last("shard_degraded")
            assert degraded is not None
            assert degraded["shard"] == 1
            assert degraded["survivors"] == 2
            assert telemetry.registry.value(
                "pipeleon_packets_lost_total", shard=1
            ) == stats.lost_packets
            assert "lost_packets" in stats.summary()
            # The fleet keeps working: a subsequent replay routes the
            # dead shard's flows to survivors from the start and loses
            # nothing further.
            second = sharded.replay(
                app_packets(8, 400), offered_pps=1e6, batch=32
            )
            assert second.packets == 400
            assert second.lost_packets == 0
            assert sharded.lost_packets == stats.lost_packets
        finally:
            sharded.close()

    def test_all_shards_lost_raises(self):
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=fast_options(recovery="degraded"),
            fault_plan=FaultPlan(
                (
                    FaultSpec("kill", shard=0, at_batch=0),
                    FaultSpec("kill", shard=1, at_batch=0),
                )
            ),
        )
        try:
            with pytest.raises(EmulationError, match="no survivors"):
                sharded.replay(
                    app_packets(7, 600), offered_pps=1e6, batch=32
                )
        finally:
            sharded.close()


class TestDeterminism:
    def run_once(self, seed: int):
        telemetry = Telemetry()
        plan = FaultPlan(
            (FaultSpec("kill", shard=0), FaultSpec("hang", shard=1)),
            seed=seed,
        )
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=fast_options(
                recovery="respawn", recv_timeout_s=1.0
            ),
            fault_plan=plan,
            telemetry=telemetry,
        )
        try:
            stats = sharded.replay(
                app_packets(7, 600), offered_pps=1e6, batch=32
            )
            return (
                stats_fingerprint(stats),
                [spec.at_batch for spec in plan.specs],
                event_kinds(telemetry, prefix="worker_"),
            )
        finally:
            sharded.close()

    def test_same_seed_same_failures_same_stats(self):
        first = self.run_once(seed=3)
        second = self.run_once(seed=3)
        assert first == second


class TestShardJournal:
    def test_bounds_batches_only(self):
        journal = ShardJournal(limit=2)
        journal.append(("begin", 0.0, 1e6))
        for index in range(4):
            journal.append(("batch", ("py", []), None), n_packets=10)
        journal.append(("flush",))
        assert journal.batches == 2
        assert journal.truncated
        assert journal.dropped_batches == 2
        assert journal.dropped_packets == 20
        # Control messages are never evicted.
        kinds = [message[0] for message, _ in journal.entries]
        assert kinds[0] == "begin" and kinds[-1] == "flush"

    def test_under_limit_keeps_everything(self):
        journal = ShardJournal(limit=8)
        for _ in range(3):
            journal.append(("batch", ("py", []), None), n_packets=5)
        assert not journal.truncated
        assert journal.batches == 3
