"""Tests for runtime profiles, counter maps, and profile collection."""

import math

import pytest

from repro.core.profiling import (
    CounterMap,
    RuntimeProfile,
    collect_profile,
    measure_table_m,
    profile_entropy,
    profile_from_counts,
    uniform_profile,
)
from repro.ir import exact_entry, linear_program
from repro.ir.entries import LpmValue, TableEntry, TernaryValue
from repro.ir.tables import MatchType
from repro.nic.control_plane import ControlPlane
from repro.nic.counters import action_counter, branch_counter, cache_counter
from repro.nic.emulator import NicEmulator
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2


class TestRuntimeProfile:
    def test_uniform_defaults(self, chain5):
        profile = uniform_profile(chain5)
        table = chain5.table("chain5_t0")
        assert profile.action_prob(table, "chain5_t0_a0") == 0.5
        assert profile.branch_prob("any") == 0.5

    def test_action_prob_without_data_is_uniform(self, chain5):
        profile = RuntimeProfile()
        table = chain5.table("chain5_t0")
        assert profile.action_prob(table, "chain5_t0_a0") == 0.5

    def test_set_action_probs_normalises(self, chain5):
        profile = RuntimeProfile()
        profile.set_action_probs(
            "chain5_t0", {"chain5_t0_a0": 3.0, "chain5_t0_a1": 1.0}
        )
        table = chain5.table("chain5_t0")
        assert profile.action_prob(table, "chain5_t0_a0") == 0.75

    def test_set_action_probs_zero_rejected(self):
        profile = RuntimeProfile()
        with pytest.raises(ValueError):
            profile.set_action_probs("t", {"a": 0.0})

    def test_drop_rate(self, acl_program):
        profile = RuntimeProfile()
        profile.set_action_probs(
            "acl0", {"acl0_deny": 0.3, "acl0_permit": 0.7}
        )
        table = acl_program.table("acl0")
        assert profile.drop_rate(table) == pytest.approx(0.3)

    def test_hit_prob_is_one_minus_default(self, chain5):
        profile = RuntimeProfile()
        profile.set_action_probs(
            "chain5_t0", {"chain5_t0_a0": 0.9, "chain5_t0_a1": 0.1}
        )
        table = chain5.table("chain5_t0")
        # default action is the last one (a1)
        assert profile.hit_prob(table) == pytest.approx(0.9)

    def test_m_defaults_by_match_type(self):
        program = linear_program("p", 1, MatchType.TERNARY)
        profile = RuntimeProfile()
        assert profile.m_for(program.table("p_t0")) == 5

    def test_m_measured_overrides_default(self):
        program = linear_program("p", 1, MatchType.TERNARY)
        profile = RuntimeProfile(table_m={"p_t0": 2})
        assert profile.m_for(program.table("p_t0")) == 2

    def test_distance_symmetric(self, chain5):
        a = uniform_profile(chain5)
        b = uniform_profile(chain5)
        b.set_action_probs(
            "chain5_t0", {"chain5_t0_a0": 1.0, "chain5_t0_a1": 0.0}
        )
        assert a.distance(b) == pytest.approx(b.distance(a))
        assert a.distance(a) == 0.0

    def test_copy_independent(self, chain5):
        a = uniform_profile(chain5)
        b = a.copy()
        b.set_action_probs(
            "chain5_t0", {"chain5_t0_a0": 1.0, "chain5_t0_a1": 0.0}
        )
        assert a.action_probs["chain5_t0"]["chain5_t0_a0"] == 0.5


class TestEntropy:
    def test_uniform_is_max(self):
        assert profile_entropy([0.25] * 4) == pytest.approx(2.0)

    def test_point_mass_is_zero(self):
        assert profile_entropy([1.0, 0.0, 0.0]) == 0.0

    def test_normalisation(self):
        assert profile_entropy([2, 2, 2, 2]) == pytest.approx(2.0)

    def test_empty(self):
        assert profile_entropy([]) == 0.0


class TestCounterMap:
    def test_identity_passthrough(self):
        cmap = CounterMap()
        counts = {action_counter("t", "a"): 10}
        assert cmap.translate(counts) == {action_counter("t", "a"): 10.0}

    def test_mapped_counter(self):
        cmap = CounterMap()
        cmap.map_counter(
            action_counter("merged", "a+b"),
            [
                (action_counter("t1", "a"), 1.0),
                (action_counter("t2", "b"), 1.0),
            ],
        )
        counts = {action_counter("merged", "a+b"): 5}
        translated = cmap.translate(counts)
        assert translated[action_counter("t1", "a")] == 5.0
        assert translated[action_counter("t2", "b")] == 5.0

    def test_dropped_counter(self):
        cmap = CounterMap()
        cmap.drop_counter(cache_counter("c", True))
        assert cmap.translate({cache_counter("c", True): 7}) == {}

    def test_merge(self):
        a, b = CounterMap(), CounterMap()
        a.drop_counter(cache_counter("c1", True))
        b.drop_counter(cache_counter("c2", True))
        a.merge(b)
        assert len(a.mapping) == 2


class TestProfileFromCounts:
    def test_action_probabilities(self, chain5):
        counts = {
            action_counter("chain5_t0", "chain5_t0_a0"): 30,
            action_counter("chain5_t0", "chain5_t0_a1"): 10,
        }
        profile = profile_from_counts(chain5, counts)
        table = chain5.table("chain5_t0")
        assert profile.action_prob(table, "chain5_t0_a0") == 0.75

    def test_branch_probabilities(self, branching_program):
        counts = {
            branch_counter("cond", True): 9,
            branch_counter("cond", False): 1,
        }
        profile = profile_from_counts(branching_program, counts)
        assert profile.branch_prob("cond") == pytest.approx(0.9)

    def test_cache_hit_rates(self, chain5):
        counts = {
            cache_counter("cacheX", True): 8,
            cache_counter("cacheX", False): 2,
        }
        profile = profile_from_counts(chain5, counts)
        assert profile.cache_hit_rates["cacheX"] == pytest.approx(0.8)

    def test_unknown_table_counts_ignored(self, chain5):
        counts = {action_counter("ghost", "a"): 5}
        profile = profile_from_counts(chain5, counts)
        assert "ghost" not in profile.action_probs


class TestMeasureTableM:
    def test_exact_is_one(self):
        program = linear_program("p", 1)
        assert measure_table_m(
            program.table("p_t0"), [exact_entry(1, "p_t0_a0")]
        ) == 1

    def test_lpm_counts_prefixes(self):
        program = linear_program("p", 1, MatchType.LPM)
        entries = [
            TableEntry((LpmValue(0, 8),), "p_t0_a0"),
            TableEntry((LpmValue(0x0A000000, 16),), "p_t0_a0"),
        ]
        assert measure_table_m(program.table("p_t0"), entries) == 2

    def test_ternary_counts_masks(self):
        program = linear_program("p", 1, MatchType.TERNARY)
        entries = [
            TableEntry((TernaryValue(1, 0xF),), "p_t0_a0"),
            TableEntry((TernaryValue(2, 0xF0),), "p_t0_a0"),
            TableEntry((TernaryValue(3, 0xF00),), "p_t0_a0"),
        ]
        assert measure_table_m(program.table("p_t0"), entries) == 3

    def test_empty_uses_default(self):
        program = linear_program("p", 1, MatchType.TERNARY)
        assert measure_table_m(program.table("p_t0"), []) == 5


class TestCollectProfile:
    def test_end_to_end_against_emulator(self, chain5):
        emulator = NicEmulator(chain5, BLUEFIELD2)
        control_plane = ControlPlane(chain5, emulator.clock)
        for _ in range(20):
            emulator.process(make_packet())
        profile = collect_profile(
            chain5,
            emulator.counters.snapshot(),
            control_plane=control_plane,
        )
        table = chain5.table("chain5_t0")
        # No entries installed: the default action always fires.
        assert profile.action_prob(table, "chain5_t0_a1") == 1.0
        assert profile.entry_counts["chain5_t0"] == 0
