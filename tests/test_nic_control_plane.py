"""Tests for the control plane (shadow store, update rates, listeners)."""

import pytest

from repro.errors import (
    TableFullError,
    UnknownEntryError,
    UnknownTableError,
)
from repro.ir import exact_entry, linear_program
from repro.ir.actions import noop_action
from repro.ir.builder import ProgramBuilder
from repro.nic.control_plane import ControlPlane, SimClock


@pytest.fixture
def control_plane(chain5):
    return ControlPlane(chain5)


def entry_for(program, table, value=1):
    node = program.table(table)
    return exact_entry(value, next(iter(node.actions)))


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now_s == 1.5

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)


class TestEntryApi:
    def test_insert_and_read(self, chain5, control_plane):
        entry = entry_for(chain5, "chain5_t0")
        eid = control_plane.insert_entry("chain5_t0", entry)
        assert eid == entry.entry_id
        assert control_plane.entry_count("chain5_t0") == 1
        assert control_plane.entries("chain5_t0") == [entry]

    def test_unknown_table(self, control_plane, chain5):
        with pytest.raises(UnknownTableError):
            control_plane.insert_entry(
                "ghost", entry_for(chain5, "chain5_t0")
            )

    def test_unknown_action(self, control_plane):
        with pytest.raises(UnknownEntryError):
            control_plane.insert_entry(
                "chain5_t0", exact_entry(1, "no_such_action")
            )

    def test_arity_mismatch(self, chain5, control_plane):
        node = chain5.table("chain5_t0")
        bad = exact_entry((1, 2), next(iter(node.actions)))
        with pytest.raises(UnknownEntryError):
            control_plane.insert_entry("chain5_t0", bad)

    def test_capacity_enforced(self):
        builder = ProgramBuilder("small")
        builder.table("t", ["f"], [noop_action("a")], size=2)
        program = builder.build(root="t")
        cp = ControlPlane(program)
        cp.insert_entry("t", exact_entry(1, "a"))
        cp.insert_entry("t", exact_entry(2, "a"))
        with pytest.raises(TableFullError):
            cp.insert_entry("t", exact_entry(3, "a"))

    def test_delete(self, chain5, control_plane):
        entry = entry_for(chain5, "chain5_t0")
        control_plane.insert_entry("chain5_t0", entry)
        removed = control_plane.delete_entry("chain5_t0", entry.entry_id)
        assert removed is entry
        assert control_plane.entry_count("chain5_t0") == 0
        with pytest.raises(UnknownEntryError):
            control_plane.delete_entry("chain5_t0", entry.entry_id)

    def test_modify(self, chain5, control_plane):
        old = entry_for(chain5, "chain5_t0", 1)
        new = entry_for(chain5, "chain5_t0", 2)
        control_plane.insert_entry("chain5_t0", old)
        control_plane.modify_entry("chain5_t0", old.entry_id, new)
        assert control_plane.entries("chain5_t0") == [new]

    def test_clear_table(self, chain5, control_plane):
        for value in range(5):
            control_plane.insert_entry(
                "chain5_t0", entry_for(chain5, "chain5_t0", value)
            )
        control_plane.clear_table("chain5_t0")
        assert control_plane.entry_count("chain5_t0") == 0


class TestUpdateRates:
    def test_rate_over_window(self, chain5, control_plane):
        clock = control_plane.clock
        for value in range(10):
            control_plane.insert_entry(
                "chain5_t0", entry_for(chain5, "chain5_t0", value)
            )
            clock.advance(0.1)
        # 10 updates in ~1s; over a 10s window the rate is 1/s.
        assert control_plane.update_rate(
            "chain5_t0", window_s=10.0
        ) == pytest.approx(1.0)

    def test_old_updates_age_out(self, chain5, control_plane):
        control_plane.insert_entry(
            "chain5_t0", entry_for(chain5, "chain5_t0")
        )
        control_plane.clock.advance(100.0)
        assert control_plane.update_rate("chain5_t0", 10.0) == 0.0

    def test_rates_for_all_tables(self, control_plane):
        rates = control_plane.update_rates()
        assert set(rates) == set(control_plane.table_names())


class TestListeners:
    def test_listener_sees_all_ops(self, chain5, control_plane):
        events = []
        control_plane.add_listener(events.append)
        entry = entry_for(chain5, "chain5_t0")
        control_plane.insert_entry("chain5_t0", entry)
        new = entry_for(chain5, "chain5_t0", 9)
        control_plane.modify_entry("chain5_t0", entry.entry_id, new)
        control_plane.delete_entry("chain5_t0", new.entry_id)
        assert [e.op for e in events] == ["insert", "modify", "delete"]
        assert all(e.table == "chain5_t0" for e in events)

    def test_remove_listener(self, chain5, control_plane):
        events = []
        control_plane.add_listener(events.append)
        control_plane.remove_listener(events.append)
        control_plane.insert_entry(
            "chain5_t0", entry_for(chain5, "chain5_t0")
        )
        assert events == []

    def test_snapshot(self, chain5, control_plane):
        entry = entry_for(chain5, "chain5_t1")
        control_plane.insert_entry("chain5_t1", entry)
        snapshot = control_plane.snapshot()
        assert snapshot["chain5_t1"] == [entry]
        assert snapshot["chain5_t0"] == []
