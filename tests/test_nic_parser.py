"""Tests for wire-format parsing/serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EmulationError
from repro.nic.packet import make_packet
from repro.nic.parser import (
    ETHERTYPE_IPV4,
    parse_packet,
    parse_stream,
    serialize_packet,
)

u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u48 = st.integers(min_value=0, max_value=0xFFFFFFFFFFFF)


class TestRoundTrip:
    def test_tcp_packet(self):
        original = make_packet(
            src=0x0A000001, dst=0xC0A80001, sport=1234, dport=80
        )
        frame = serialize_packet(original)
        assert len(frame) == original.size_bytes
        parsed = parse_packet(frame)
        for field in (
            "eth.src",
            "eth.dst",
            "eth.type",
            "ipv4.src",
            "ipv4.dst",
            "ipv4.ttl",
            "ipv4.proto",
            "l4.sport",
            "l4.dport",
        ):
            assert parsed.get(field) == original.get(field), field

    def test_vlan_tagged(self):
        original = make_packet(extra={"vlan.id": 7, "vlan.pcp": 3})
        parsed = parse_packet(serialize_packet(original))
        assert parsed.get("vlan.id") == 7
        assert parsed.get("vlan.pcp") == 3
        assert parsed.get("eth.type") == ETHERTYPE_IPV4
        assert parsed.get("ipv4.dst") == original.get("ipv4.dst")

    def test_non_ip_frame_stops_at_l2(self):
        original = make_packet()
        original.set("eth.type", 0x0806)  # ARP
        parsed = parse_packet(serialize_packet(original))
        assert parsed.get("eth.type") == 0x0806
        assert parsed.get("ipv4.src") is None
        assert parsed.get("l4.sport") is None

    def test_udp_packet(self):
        original = make_packet(proto=17, sport=53, dport=5353)
        parsed = parse_packet(serialize_packet(original))
        assert parsed.get("ipv4.proto") == 17
        assert parsed.get("l4.dport") == 5353

    def test_non_l4_proto_has_no_ports(self):
        original = make_packet(proto=1)  # ICMP
        parsed = parse_packet(serialize_packet(original))
        assert parsed.get("ipv4.proto") == 1
        assert parsed.get("l4.sport") is None

    @settings(max_examples=60, deadline=None)
    @given(src=u32, dst=u32, sport=u16, dport=u16, smac=u48,
           tos=st.integers(min_value=0, max_value=255))
    def test_round_trip_property(
        self, src, dst, sport, dport, smac, tos
    ):
        original = make_packet(
            src=src, dst=dst, sport=sport, dport=dport,
            extra={"ipv4.tos": tos},
        )
        original.set("eth.src", smac)
        parsed = parse_packet(serialize_packet(original))
        assert parsed.get("ipv4.src") == src
        assert parsed.get("ipv4.dst") == dst
        assert parsed.get("l4.sport") == sport
        assert parsed.get("l4.dport") == dport
        assert parsed.get("eth.src") == smac
        assert parsed.get("ipv4.tos") == tos


class TestErrors:
    def test_truncated_ethernet(self):
        with pytest.raises(EmulationError):
            parse_packet(b"\x00" * 5)

    def test_truncated_ipv4(self):
        frame = serialize_packet(make_packet())[:20]
        with pytest.raises(EmulationError):
            parse_packet(frame)

    def test_bad_ip_version(self):
        frame = bytearray(serialize_packet(make_packet()))
        frame[14] = 0x65  # version 6
        with pytest.raises(EmulationError):
            parse_packet(bytes(frame))

    def test_pad_too_small(self):
        with pytest.raises(EmulationError):
            serialize_packet(make_packet(), pad_to=10)


class TestStream:
    def test_parse_stream(self):
        frames = [
            serialize_packet(make_packet(sport=i)) for i in range(5)
        ]
        packets = parse_stream(frames)
        assert [p.get("l4.sport") for p in packets] == list(range(5))

    def test_parsed_packets_run_on_emulator(self):
        from repro.ir import linear_program
        from repro.nic.emulator import NicEmulator
        from repro.nic.targets import BLUEFIELD2

        program = linear_program("p", 3)
        emulator = NicEmulator(program, BLUEFIELD2)
        frame = serialize_packet(make_packet())
        stats = emulator.run(parse_stream([frame] * 5))
        assert stats.packets == 5
