"""Tests for the NIC emulator: execution, costs, caches, migration."""

import pytest

from repro.errors import EmulationError
from repro.ir import exact_entry, linear_program
from repro.ir.actions import Action, Param, drop_action, noop_action, prim
from repro.ir.builder import ProgramBuilder
from repro.ir.conditionals import Condition
from repro.ir.entries import ExactValue, TableEntry
from repro.ir.tables import Pipeline
from repro.nic.counters import action_counter, branch_counter
from repro.nic.emulator import NicEmulator
from repro.nic.packet import make_packet
from repro.nic.targets import AGILIO_CX, BLUEFIELD2, EMULATED_NIC


class TestBasicExecution:
    def test_latency_scales_with_tables(self):
        short = linear_program("s", 5)
        long = linear_program("l", 20)
        lat_short = NicEmulator(short, BLUEFIELD2).process(
            make_packet()
        ).latency_ns
        lat_long = NicEmulator(long, BLUEFIELD2).process(
            make_packet()
        ).latency_ns
        assert lat_long == pytest.approx(lat_short * 4)

    def test_exact_table_cost_formula(self):
        """1 table, 1 action primitive, 1 counter update per packet."""
        program = linear_program("p", 1, n_actions=1, n_primitives=1)
        result = NicEmulator(program, BLUEFIELD2).process(make_packet())
        core = BLUEFIELD2.asic
        expected = core.lookup_ns + core.action_ns + core.counter_update_ns
        assert result.latency_ns == pytest.approx(expected)

    def test_uninstrumented_skips_counter_cost(self):
        program = linear_program("p", 1, n_actions=1, n_primitives=1)
        result = NicEmulator(
            program, BLUEFIELD2, instrument=False
        ).process(make_packet())
        core = BLUEFIELD2.asic
        assert result.latency_ns == pytest.approx(
            core.lookup_ns + core.action_ns
        )

    def test_entry_action_executes(self):
        builder = ProgramBuilder("p")
        builder.table(
            "t",
            ["ipv4.dst"],
            [
                Action("rewrite", (prim("set_field", "l4.dport", Param(0)),)),
                noop_action("miss"),
            ],
            default_action="miss",
        )
        program = builder.build(root="t")
        emulator = NicEmulator(program, BLUEFIELD2)
        packet = make_packet(dst=42)
        emulator.set_table_entries(
            "t", [TableEntry((ExactValue(42),), "rewrite", (9999,))]
        )
        emulator.process(packet)
        assert packet.get("l4.dport") == 9999

    def test_drop_halts_execution(self):
        builder = ProgramBuilder("p")
        builder.table(
            "acl",
            ["l4.dport"],
            [drop_action("deny"), noop_action("permit")],
            default_action="permit",
            next_node="t2",
        )
        builder.table("t2", ["ipv4.dst"], [noop_action("t2_a")])
        program = builder.build(root="acl")
        emulator = NicEmulator(program, BLUEFIELD2)
        emulator.set_table_entries(
            "acl", [TableEntry((ExactValue(6666),), "deny")]
        )
        dropped = emulator.process(make_packet(dport=6666))
        passed = emulator.process(make_packet(dport=80))
        assert dropped.dropped and not passed.dropped
        assert "t2" not in dropped.path
        assert "t2" in passed.path
        assert dropped.latency_ns < passed.latency_ns

    def test_conditional_branching(self, branching_program):
        emulator = NicEmulator(branching_program, BLUEFIELD2)
        left = emulator.process(make_packet(extra={"ipv4.tos": 1}))
        right = emulator.process(make_packet(extra={"ipv4.tos": 0}))
        assert "left" in left.path and "right" not in left.path
        assert "right" in right.path and "left" not in right.path

    def test_cycle_guard(self):
        program = linear_program("cyc", 2)
        tail = program.table("cyc_t1")
        for action in tail.next_map:
            tail.next_map[action] = "cyc_t0"
        emulator = NicEmulator(program, BLUEFIELD2, max_steps=50)
        with pytest.raises(EmulationError):
            emulator.process(make_packet())

    def test_counters_recorded(self, branching_program):
        emulator = NicEmulator(branching_program, BLUEFIELD2)
        emulator.process(make_packet(extra={"ipv4.tos": 1}))
        snapshot = emulator.counters.snapshot()
        assert snapshot[branch_counter("cond", True)] == 1
        # default action of t0 fired (no entries installed)
        assert snapshot[action_counter("t0", "t0_a1")] == 1


class TestThroughputModel:
    def test_line_rate_cap(self):
        tiny = linear_program("tiny", 1)
        stats = NicEmulator(tiny, BLUEFIELD2).run(
            [make_packet() for _ in range(10)]
        )
        assert stats.throughput_gbps(BLUEFIELD2) == pytest.approx(100.0)

    def test_22_exact_tables_in_fig9a_range(self):
        """The Fig. 9a baseline: ~50 Gbps at 22 exact tables."""
        program = linear_program("bench", 22)
        stats = NicEmulator(program, BLUEFIELD2).run(
            [make_packet() for _ in range(50)]
        )
        assert 40 < stats.throughput_gbps(BLUEFIELD2) < 65

    def test_agilio_slower_than_bluefield(self):
        program = linear_program("bench", 22)
        bf = NicEmulator(program, BLUEFIELD2, native_cache=False).run(
            [make_packet() for _ in range(20)]
        )
        ag = NicEmulator(program, AGILIO_CX, native_cache=False).run(
            [make_packet() for _ in range(20)]
        )
        assert ag.throughput_gbps(AGILIO_CX) < bf.throughput_gbps(
            BLUEFIELD2
        )

    def test_run_advances_clock(self):
        program = linear_program("p", 2)
        emulator = NicEmulator(program, BLUEFIELD2)
        emulator.run(
            [make_packet() for _ in range(100)], offered_pps=1000.0
        )
        assert emulator.clock.now_s == pytest.approx(0.1)


class TestMigration:
    def build_hetero(self):
        program = linear_program("het", 4)
        program.assign_pipeline(["het_t1", "het_t2"], Pipeline.CPU)
        return program

    def test_migrations_counted(self):
        result = NicEmulator(self.build_hetero(), EMULATED_NIC).process(
            make_packet()
        )
        assert result.migrations == 2  # asic->cpu and cpu->asic

    def test_migration_latency_charged(self):
        hetero = self.build_hetero()
        flat = linear_program("het", 4)
        lat_hetero = NicEmulator(hetero, EMULATED_NIC).process(
            make_packet()
        ).latency_ns
        lat_flat = NicEmulator(flat, EMULATED_NIC).process(
            make_packet()
        ).latency_ns
        # CPU tables cost 3x plus two migrations.
        assert lat_hetero > lat_flat + 2 * EMULATED_NIC.migration_ns - 1

    def test_busy_time_split_between_pools(self):
        result = NicEmulator(self.build_hetero(), EMULATED_NIC).process(
            make_packet()
        )
        assert result.busy_ns[Pipeline.ASIC] > 0
        assert result.busy_ns[Pipeline.CPU] > 0


class TestNativeCache:
    def test_native_cache_speeds_up_repeated_flow(self):
        program = linear_program("p", 10)
        emulator = NicEmulator(program, AGILIO_CX, native_cache=True)
        first = emulator.process(make_packet())
        second = emulator.process(make_packet())
        assert second.latency_ns < first.latency_ns / 2

    def test_native_cache_respects_program_metadata(self):
        program = linear_program("p", 4)
        program.metadata["native_cache_compatible"] = False
        emulator = NicEmulator(program, AGILIO_CX)
        assert emulator.native_cache is None

    def test_native_cache_preserves_effects(self):
        builder = ProgramBuilder("p")
        builder.table(
            "t",
            ["ipv4.dst"],
            [
                Action("mark", (prim("set_field", "ipv4.tos", 7),)),
                noop_action("miss"),
            ],
            default_action="miss",
        )
        program = builder.build(root="t")
        emulator = NicEmulator(program, AGILIO_CX, native_cache=True)
        emulator.set_table_entries(
            "t", [TableEntry((ExactValue(make_packet().get("ipv4.dst")),),
                             "mark")]
        )
        p1 = make_packet()
        emulator.process(p1)
        p2 = make_packet()
        emulator.process(p2)  # served from native cache
        assert p1.get("ipv4.tos") == 7
        assert p2.get("ipv4.tos") == 7
