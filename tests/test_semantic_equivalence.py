"""Semantic-equivalence properties: optimized == original behaviour.

The core soundness claim of a source-to-source optimizer: for any
program, entries, and traffic, the optimized deployment must produce the
same forwarding decisions (drop/egress) and the same header writes as
the original. We check it for each transformation and for full optimizer
plans, over randomized programs and traffic.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CostModel,
    Deployment,
    Pipeleon,
    partition,
    uniform_profile,
)
from repro.core.plan import Candidate, OptimizationPlan, Segment
from repro.ir import exact_entry
from repro.ir.dependency import valid_orders
from repro.ir.program import Program
from repro.nic.packet import Packet, make_packet
from repro.nic.targets import BLUEFIELD2, EMULATED_NIC
from repro.synthesis import ProgramSynthesizer, SynthesisConfig


def observable(packet: Packet) -> tuple:
    """Everything a downstream system can see about the packet.

    A dropped packet is discarded — its header contents are not
    observable, so the only fact that matters is *that* it dropped.
    (Reordering an ACL ahead of a header-writing table legitimately
    changes the in-flight fields of packets that end up dropped.)
    """
    if packet.dropped:
        return (True,)
    return (
        False,
        packet.egress_port,
        tuple(sorted(packet.fields.items())),
    )


def random_packets(seed: int, count: int = 30) -> list[Packet]:
    """Packets whose random fields overlap the synthesizer's field pool
    and entry values, so tables actually hit."""
    rng = random.Random(seed)
    packets = []
    for _ in range(count):
        packet = make_packet(
            src=rng.randrange(1, 50),
            dst=rng.randrange(1, 50),
            sport=rng.randrange(1, 20),
            dport=rng.randrange(1, 20),
        )
        packet.set("ipv4.tos", rng.randrange(0, 4))
        for i in range(0, 64, 4):
            packet.set(f"hdr.f{i}", rng.randrange(0, 6))
        packets.append(packet)
    return packets


def install_random_entries(deployment: Deployment, seed: int) -> None:
    """Install a few entries into every plain original table."""
    rng = random.Random(seed)
    program = deployment.original
    for table in program.plain_tables():
        if any(k.match_type.value != "exact" for k in table.keys):
            continue
        actions = list(table.actions)
        used = set()
        for _ in range(rng.randrange(0, 4)):
            values = tuple(
                rng.randrange(0, 6) for _ in table.keys
            )
            if values in used:
                continue
            used.add(values)
            deployment.insert_entry(
                table.name,
                exact_entry(values, rng.choice(actions)),
            )


def run_and_observe(
    program: Program,
    plan: OptimizationPlan | None,
    seed: int,
    target=EMULATED_NIC,
) -> list[tuple]:
    deployment = Deployment(
        program, target, plan=plan, native_cache=False
    )
    install_random_entries(deployment, seed)
    results = []
    for packet in random_packets(seed):
        deployment.emulator.process(packet)
        results.append(observable(packet))
    return results


def assert_equivalent(program, plan, seed):
    baseline = run_and_observe(program, None, seed)
    optimized = run_and_observe(program, plan, seed)
    assert optimized == baseline


def synthetic(seed: int, **kwargs) -> Program:
    defaults = dict(n_pipelets=4, seed=seed, dependency_fraction=0.1)
    defaults.update(kwargs)
    return ProgramSynthesizer(SynthesisConfig(**defaults)).generate()


def single_pipelet_plan(program, segments_fn, order_fn=None):
    """Build a plan touching the first multi-table pipelet, or None."""
    pipelets = [
        p
        for p in partition(program, max_len=6)
        if len(p) >= 2 and not p.is_switch_case
    ]
    if not pipelets:
        return None
    pipelet = pipelets[0]
    run = pipelet.table_names
    order = order_fn(program, run) if order_fn else run
    segments = segments_fn(order)
    if segments is None:
        return None
    return OptimizationPlan(
        candidates=[
            Candidate(
                pipelet_id=pipelet.pipelet_id,
                run=run,
                order=order,
                segments=segments,
                gain_ns=1.0,
                memory_bytes=0.0,
                update_pps=0.0,
            )
        ]
    )


class TestReorderEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=300))
    def test_reordered_program_equivalent(self, seed):
        program = synthetic(seed)

        def reorder(prog, run):
            tables = [prog.table(n) for n in run]
            orders = list(valid_orders(tables, limit=4))
            return orders[-1]  # some dependency-safe order

        plan = single_pipelet_plan(
            program,
            lambda order: tuple(Segment("none", (n,)) for n in order),
            order_fn=reorder,
        )
        if plan is None:
            return
        assert_equivalent(program, plan, seed)


class TestCacheEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=300))
    def test_cached_program_equivalent(self, seed):
        program = synthetic(seed)
        plan = single_pipelet_plan(
            program, lambda order: (Segment("cache", order),)
        )
        if plan is None:
            return
        assert_equivalent(program, plan, seed)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=301, max_value=400))
    def test_partial_cache_equivalent(self, seed):
        program = synthetic(seed)
        plan = single_pipelet_plan(
            program,
            lambda order: (
                Segment("cache", order[:1]),
                *(Segment("none", (n,)) for n in order[1:]),
            ),
        )
        if plan is None:
            return
        assert_equivalent(program, plan, seed)


class TestMergeEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=300))
    def test_merged_program_equivalent(self, seed):
        program = synthetic(seed, lpm_fraction=0.0, ternary_fraction=0.0)
        plan = single_pipelet_plan(
            program,
            lambda order: (
                Segment("merge", order[:2]),
                *(Segment("none", (n,)) for n in order[2:]),
            ),
        )
        if plan is None:
            return
        assert_equivalent(program, plan, seed)


class TestNaiveMergeEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_naive_ternary_merge_equivalent(self, seed):
        """Figure 6's wildcard-row construction preserves semantics."""
        from repro.core.transform import apply_naive_merge

        program = synthetic(
            seed, lpm_fraction=0.0, ternary_fraction=0.0
        )
        pipelets = [
            p
            for p in partition(program, max_len=6)
            if len(p) >= 2 and not p.is_switch_case
        ]
        if not pipelets:
            return
        covers = list(pipelets[0].table_names[:2])
        # Naive merge must not involve tables with shared fields that
        # conflict; the synthesizer picks distinct fields so it's safe.
        result = apply_naive_merge(program, covers)
        merged_name = result.created[0]

        baseline = run_and_observe(program, None, seed)
        deployment = Deployment(
            result.program, EMULATED_NIC, native_cache=False
        )
        # naive merge removed the originals: install via the original
        # program's control plane mirror.
        baseline_deployment = Deployment(
            program, EMULATED_NIC, native_cache=False
        )
        install_random_entries(baseline_deployment, seed)
        # Rebuild merged entries from the baseline's shadow snapshot.
        from repro.core.transform.merge import naive_merged_entries

        snapshot = baseline_deployment.control_plane.snapshot()
        merged_node = result.program.table(merged_name)
        entries = naive_merged_entries(
            merged_node,
            [program.table(c) for c in covers],
            [snapshot.get(c, []) for c in covers],
        )
        deployment.emulator.set_table_entries(merged_name, entries)
        for table_name, rows in snapshot.items():
            if table_name in covers:
                continue
            if table_name in deployment.emulator.runtime_tables:
                deployment.emulator.set_table_entries(
                    table_name, (r.clone() for r in rows)
                )
        optimized = []
        for packet in random_packets(seed):
            deployment.emulator.process(packet)
            optimized.append(observable(packet))
        assert optimized == baseline


class TestFullOptimizerEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_best_plan_preserves_semantics(self, seed):
        """The plan Pipeleon actually picks never changes behaviour."""
        program = synthetic(seed, n_pipelets=5)
        from repro.synthesis import synthesize_profile

        profile = synthesize_profile(program, seed=seed)
        pipeleon = Pipeleon(
            EMULATED_NIC, model=CostModel.for_target(EMULATED_NIC)
        )
        plan = pipeleon.optimize(program, profile)
        assert_equivalent(program, plan, seed)
