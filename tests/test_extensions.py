"""Tests for the §6 future-work extensions.

* hierarchical memory placement (MemoryTier + plan_placement)
* incremental redeployment (warm cache-state carry-over)
"""

import pytest

from repro.core import (
    CostModel,
    Deployment,
    Pipeleon,
    TierBudget,
    apply_placement,
    plan_placement,
    placement_within_budget,
    uniform_profile,
)
from repro.core.plan import Candidate, OptimizationPlan, Segment
from repro.core.pipelets import partition
from repro.ir import linear_program, loads_program, dumps_program
from repro.ir.tables import MatchType, MemoryTier
from repro.nic.emulator import NicEmulator
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2


@pytest.fixture
def model():
    return CostModel.for_target(BLUEFIELD2)


class TestMemoryTierEmulation:
    def test_faster_tier_reduces_latency(self):
        slow = linear_program("p", 4)
        fast = linear_program("p", 4)
        for table in fast.tables():
            table.memory_tier = MemoryTier.LMEM
        lat_slow = NicEmulator(slow, BLUEFIELD2, instrument=False).process(
            make_packet()
        ).latency_ns
        lat_fast = NicEmulator(fast, BLUEFIELD2, instrument=False).process(
            make_packet()
        ).latency_ns
        assert lat_fast < lat_slow
        # Only the lookup part shrinks (actions unchanged): the LMEM
        # multiplier is 0.25, so the saving is 0.75 x 4 lookups.
        saved = lat_slow - lat_fast
        assert saved == pytest.approx(
            0.75 * 4 * BLUEFIELD2.asic.lookup_ns
        )

    def test_tier_in_cost_model(self, model):
        program = linear_program("p", 1)
        profile = uniform_profile(program)
        table = program.table("p_t0")
        base = model.match_cost(table, profile)
        table.memory_tier = MemoryTier.IMEM
        assert model.match_cost(table, profile) == pytest.approx(
            base / 2
        )

    def test_tier_survives_json_round_trip(self):
        program = linear_program("p", 2)
        program.table("p_t0").memory_tier = MemoryTier.LMEM
        restored = loads_program(dumps_program(program))
        assert restored.table("p_t0").memory_tier is MemoryTier.LMEM
        assert restored.table("p_t1").memory_tier is MemoryTier.EMEM

    def test_tier_survives_clone(self):
        program = linear_program("p", 1)
        program.table("p_t0").memory_tier = MemoryTier.IMEM
        clone = program.clone()
        assert clone.table("p_t0").memory_tier is MemoryTier.IMEM


class TestPlacementPlanning:
    def make_profile(self, program, hot_table):
        """A profile where one table carries much more weight (drops
        upstream shrink downstream reach)."""
        profile = uniform_profile(program)
        for table in program.tables():
            profile.entry_counts[table.name] = 4
        # The hot table: few entries (small footprint) but expensive
        # lookups -> the best promotion density by far.
        profile.entry_counts[hot_table] = 1
        profile.table_m[hot_table] = 8
        return profile

    def test_promotes_hottest_table_first(self, model):
        program = linear_program("p", 4)
        profile = self.make_profile(program, "p_t2")
        table_bytes = model.table_memory_bytes(
            program.table("p_t2"), profile
        )
        budget = TierBudget(imem_bytes=table_bytes + 1)
        plan = plan_placement(program, profile, model, budget)
        assert plan.assignments["p_t2"] is MemoryTier.IMEM
        assert plan.gain_ns > 0

    def test_budget_respected(self, model):
        program = linear_program("p", 6)
        profile = uniform_profile(program)
        for table in program.tables():
            profile.entry_counts[table.name] = 10
        budget = TierBudget(imem_bytes=300.0, lmem_bytes=150.0)
        plan = plan_placement(program, profile, model, budget)
        placed = apply_placement(program, plan).program
        assert placement_within_budget(placed, profile, model, budget)

    def test_zero_budget_is_noop(self, model):
        program = linear_program("p", 3)
        profile = uniform_profile(program)
        plan = plan_placement(
            program, profile, model, TierBudget()
        )
        assert plan.is_noop
        assert plan.gain_ns == 0.0

    def test_lmem_preferred_over_imem(self, model):
        """With room in both tiers, the hottest table goes to LMEM."""
        program = linear_program("p", 2)
        profile = uniform_profile(program)
        profile.entry_counts["p_t0"] = 2
        profile.entry_counts["p_t1"] = 2
        profile.table_m["p_t0"] = 8
        budget = TierBudget(imem_bytes=1e6, lmem_bytes=200.0)
        plan = plan_placement(program, profile, model, budget)
        assert plan.assignments["p_t0"] is MemoryTier.LMEM

    def test_end_to_end_throughput_improves(self):
        pipeleon = Pipeleon(BLUEFIELD2)
        # Long exact chain: below line rate, lookup-dominated.
        program = linear_program("p", 30)
        deployment = Deployment(
            program, BLUEFIELD2, instrument=False
        )
        base = deployment.run(
            [make_packet() for _ in range(30)]
        ).throughput_gbps(BLUEFIELD2)
        profile = uniform_profile(program)
        plan = pipeleon.optimize_placement(
            program, profile, TierBudget(imem_bytes=1e6)
        )
        placed = pipeleon.apply_placement(program, plan)
        fast = Deployment(placed, BLUEFIELD2, instrument=False)
        improved = fast.run(
            [make_packet() for _ in range(30)]
        ).throughput_gbps(BLUEFIELD2)
        assert improved > base

    def test_unknown_table_rejected(self, model):
        from repro.errors import SearchError

        program = linear_program("p", 1)
        with pytest.raises(SearchError):
            apply_placement(program, {"ghost": MemoryTier.IMEM})


def cache_plan(run, covers):
    return OptimizationPlan(
        candidates=[
            Candidate(
                pipelet_id="pl_0",
                run=tuple(run),
                order=tuple(run),
                segments=(Segment("cache", tuple(covers)),),
                gain_ns=1.0,
                memory_bytes=0.0,
                update_pps=0.0,
            )
        ]
    )


class TestIncrementalRedeploy:
    def test_identical_cache_carried_warm(self, chain5):
        run = [f"chain5_t{i}" for i in range(5)]
        plan = cache_plan(run, run[:2])
        first = Deployment(chain5, BLUEFIELD2, plan=plan)
        first.run([make_packet() for _ in range(10)])
        cache_name = "cache__chain5_t0__chain5_t1"
        assert len(first.emulator.flow_caches[cache_name]) == 1
        first.close()
        second = Deployment(
            chain5,
            BLUEFIELD2,
            plan=plan,
            control_plane=first.control_plane,
            previous=first,
        )
        assert second.carried_caches == [cache_name]
        # The very first packet on the new deployment hits.
        result = second.emulator.process(make_packet())
        assert second.emulator.flow_caches[cache_name].stats.hits >= 1
        assert run[0] not in result.path

    def test_changed_coverage_not_carried(self, chain5):
        run = [f"chain5_t{i}" for i in range(5)]
        first = Deployment(
            chain5, BLUEFIELD2, plan=cache_plan(run, run[:2])
        )
        first.run([make_packet() for _ in range(5)])
        first.close()
        second = Deployment(
            chain5,
            BLUEFIELD2,
            plan=cache_plan(run, run[:3]),  # different covers
            control_plane=first.control_plane,
            previous=first,
        )
        assert second.carried_caches == []

    def test_controller_carries_caches_across_reopts(self):
        from repro.core import PipeleonController, ResourceBudget
        from repro.core.controller import ControllerOptions
        from repro.core.search import SearchOptions

        program = linear_program("p", 6, MatchType.TERNARY)
        controller = PipeleonController(
            program,
            BLUEFIELD2,
            budget=ResourceBudget(memory_bytes=1e6, update_pps=1e5),
            search=SearchOptions(k=1.0),
            options=ControllerOptions(profile_period_s=1.0),
        )
        controller.run([make_packet() for _ in range(20)])
        controller.maybe_reoptimize()
        first_deployment = controller.deployment
        controller.run([make_packet() for _ in range(20)])
        # Force a different plan structure by toggling the current one.
        controller.current_plan = OptimizationPlan()
        controller.maybe_reoptimize()
        if controller.deployment is not first_deployment:
            # Any cache with unchanged shape must have been carried.
            shared = set(
                first_deployment.emulator.flow_caches
            ) & set(controller.deployment.emulator.flow_caches)
            for name in shared:
                assert name in controller.deployment.carried_caches
