"""Tests for repro.ir.tables."""

import pytest

from repro.errors import IrError
from repro.ir.actions import drop_action, noop_action
from repro.ir.tables import (
    CacheInfo,
    MatchKey,
    MatchType,
    Pipeline,
    TableKind,
    TableNode,
)


def make_table(name="t", next_map=None, **kwargs):
    actions = {
        "a0": noop_action("a0"),
        "a1": noop_action("a1"),
    }
    defaults = dict(
        name=name,
        keys=(MatchKey("ipv4.dst"),),
        actions=actions,
        default_action="a1",
        next_map=next_map or {"a0": None, "a1": None},
    )
    defaults.update(kwargs)
    return TableNode(**defaults)


class TestMatchKey:
    def test_string_coercion(self):
        key = MatchKey("f", "lpm")
        assert key.match_type is MatchType.LPM

    def test_empty_field_rejected(self):
        with pytest.raises(IrError):
            MatchKey("")


class TestTableNode:
    def test_default_action_must_exist(self):
        with pytest.raises(IrError):
            make_table(default_action="missing")

    def test_next_map_unknown_action_rejected(self):
        with pytest.raises(IrError):
            make_table(next_map={"ghost": None})

    def test_next_map_filled_for_all_actions(self):
        table = make_table(next_map={"a0": "x"})
        assert table.next_map["a1"] is None

    def test_switch_case_detection(self):
        linear = make_table(next_map={"a0": "x", "a1": "x"})
        assert not linear.is_switch_case
        switch = make_table(next_map={"a0": "x", "a1": "y"})
        assert switch.is_switch_case

    def test_successors_deduplicated(self):
        table = make_table(next_map={"a0": "x", "a1": "x"})
        assert table.successors() == ["x"]

    def test_next_for_unknown_action(self):
        with pytest.raises(IrError):
            make_table().next_for("nope")

    def test_worst_match_type_ordering(self):
        table = TableNode(
            name="t",
            keys=(
                MatchKey("a", MatchType.EXACT),
                MatchKey("b", MatchType.TERNARY),
                MatchKey("c", MatchType.LPM),
            ),
            actions={"a0": noop_action("a0")},
            default_action="a0",
            next_map={"a0": None},
        )
        assert table.worst_match_type is MatchType.TERNARY

    def test_can_drop(self):
        table = TableNode(
            name="acl",
            keys=(MatchKey("f"),),
            actions={
                "deny": drop_action("deny"),
                "permit": noop_action("permit"),
            },
            default_action="permit",
            next_map={"deny": None, "permit": None},
        )
        assert table.can_drop
        assert not make_table().can_drop

    def test_read_fields_include_keys(self):
        assert "ipv4.dst" in make_table().read_fields()

    def test_clone_is_independent(self):
        table = make_table(next_map={"a0": "x", "a1": "x"})
        clone = table.clone()
        clone.next_map["a0"] = "y"
        assert table.next_map["a0"] == "x"

    def test_clone_with_overrides(self):
        clone = make_table().clone(name="other", pipeline=Pipeline.CPU)
        assert clone.name == "other"
        assert clone.pipeline is Pipeline.CPU

    def test_cache_kind_requires_cache_info(self):
        with pytest.raises(IrError):
            make_table(kind=TableKind.CACHE)


class TestCacheInfo:
    def test_mode_validation(self):
        with pytest.raises(IrError):
            CacheInfo(covers=("t",), hit_next=None, miss_next="t",
                      mode="bogus")

    def test_empty_covers_rejected(self):
        with pytest.raises(IrError):
            CacheInfo(covers=(), hit_next=None, miss_next="t")
