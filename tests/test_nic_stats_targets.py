"""Tests for run statistics and target models."""

import math

import pytest

from repro.errors import EmulationError
from repro.ir.tables import MatchType, MemoryTier, Pipeline
from repro.nic.stats import PacketResult, RunStats
from repro.nic.targets import (
    AGILIO_CX,
    BLUEFIELD2,
    EMULATED_NIC,
    TARGETS,
    get_target,
)


def result(latency_ns, dropped=False, busy=None, migrations=0):
    return PacketResult(
        latency_ns=latency_ns,
        dropped=dropped,
        egress_port=None,
        migrations=migrations,
        busy_ns=busy or {Pipeline.ASIC: latency_ns},
    )


class TestRunStats:
    def test_mean_latency(self):
        stats = RunStats()
        stats.record(result(100.0), 512)
        stats.record(result(300.0), 512)
        assert stats.mean_latency_ns == 200.0

    def test_percentile(self):
        stats = RunStats()
        for latency in range(1, 101):
            stats.record(result(float(latency)), 512)
        assert stats.percentile_latency_ns(50) == 50.0
        assert stats.percentile_latency_ns(99) == 99.0

    def test_empty_stats(self):
        stats = RunStats()
        assert stats.mean_latency_ns == 0.0
        assert stats.percentile_latency_ns(99) == 0.0
        assert stats.throughput_gbps(BLUEFIELD2) == 0.0

    def test_drop_rate(self):
        stats = RunStats()
        stats.record(result(10.0, dropped=True), 512)
        stats.record(result(10.0), 512)
        assert stats.drop_rate == 0.5

    def test_capacity_single_pool(self):
        stats = RunStats()
        stats.record(result(500.0), 512)
        # 12 cores / 500ns = 24 Mpps
        assert stats.capacity_pps(BLUEFIELD2) == pytest.approx(
            12 / 500e-9
        )

    def test_capacity_bottleneck_pool(self):
        """The slower pool per packet bounds throughput."""
        stats = RunStats()
        stats.record(
            result(
                300.0,
                busy={Pipeline.ASIC: 100.0, Pipeline.CPU: 200.0},
            ),
            512,
        )
        asic_cap = BLUEFIELD2.asic_cores / 100e-9
        cpu_cap = BLUEFIELD2.cpu_cores / 200e-9
        assert stats.capacity_pps(BLUEFIELD2) == pytest.approx(
            min(asic_cap, cpu_cap)
        )

    def test_line_rate_cap(self):
        stats = RunStats()
        stats.record(result(1.0), 512)
        assert stats.throughput_gbps(BLUEFIELD2) == 100.0

    def test_migrations_counted(self):
        stats = RunStats()
        stats.record(result(10.0, migrations=3), 512)
        assert stats.migrations == 3

    def test_summary_keys(self):
        stats = RunStats()
        stats.record(result(10.0), 512)
        summary = stats.summary(BLUEFIELD2)
        assert {"packets", "mean_latency_ns", "throughput_gbps"} <= set(
            summary
        )


class TestTargets:
    def test_registry(self):
        assert set(TARGETS) == {
            "bluefield2",
            "agilio_cx",
            "emulated_nic",
        }
        assert get_target("bluefield2") is BLUEFIELD2

    def test_unknown_target(self):
        with pytest.raises(EmulationError):
            get_target("tofino")

    def test_agilio_has_no_asic(self):
        assert not AGILIO_CX.has(Pipeline.ASIC)
        assert AGILIO_CX.default_pipeline is Pipeline.CPU
        with pytest.raises(EmulationError):
            AGILIO_CX.core(Pipeline.ASIC)

    def test_replace_makes_variant(self):
        scaled = BLUEFIELD2.replace(asic_cores=2)
        assert scaled.asic_cores == 2
        assert BLUEFIELD2.asic_cores == 12  # original untouched

    def test_emulated_match_multipliers(self):
        """§5.3.3: LPM and ternary cost 3x exact, entries ignored."""
        core = EMULATED_NIC.asic
        exact = core.match_cost_ns(MatchType.EXACT, entry_m=5)
        lpm = core.match_cost_ns(MatchType.LPM, entry_m=1)
        ternary = core.match_cost_ns(MatchType.TERNARY, entry_m=9)
        assert lpm == ternary == 3 * exact

    def test_bluefield_uses_entry_m(self):
        core = BLUEFIELD2.asic
        assert core.match_cost_ns(
            MatchType.TERNARY, entry_m=5
        ) == pytest.approx(5 * core.lookup_ns)

    def test_tier_multipliers(self):
        core = BLUEFIELD2.asic
        emem = core.match_cost_ns(MatchType.EXACT, 1, MemoryTier.EMEM)
        imem = core.match_cost_ns(MatchType.EXACT, 1, MemoryTier.IMEM)
        lmem = core.match_cost_ns(MatchType.EXACT, 1, MemoryTier.LMEM)
        assert imem == emem / 2
        assert lmem == emem / 4

    def test_line_rates(self):
        assert BLUEFIELD2.line_rate_gbps == 100.0
        assert AGILIO_CX.line_rate_gbps == 40.0
        assert AGILIO_CX.native_flow_cache
        assert not BLUEFIELD2.native_flow_cache
