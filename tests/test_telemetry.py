"""Tests for the observability subsystem (metrics, events, tracing).

Unit coverage for each collector plus the two integration contracts
that make telemetry safe to leave wired in: tracing never perturbs
replay statistics (traced and untraced runs are bit-identical on every
aggregate), and per-worker telemetry merges back into exactly what a
single collector would have recorded.
"""

import json
import math

import pytest

from repro.apps import EXAMPLE_APPS
from repro.core import Deployment, ShardedDeployment
from repro.core.costmodel import CostModel
from repro.ir import exact_entry, linear_program
from repro.nic.control_plane import ControlPlane, SimClock
from repro.nic.packet import Packet, make_packet
from repro.nic.targets import EMULATED_NIC
from repro.telemetry import (
    LATENCY_BUCKETS_NS,
    PARSER_STEP,
    EventLog,
    Histogram,
    MetricsRegistry,
    PacketTracer,
    Telemetry,
    export_cache_stats,
    export_emulator,
    export_run_stats,
    export_tracer,
)
from repro.telemetry.report import format_report, measured_vs_predicted
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator


def app_packets(seed: int, n: int = 400) -> list[Packet]:
    generator = TrafficGenerator(seed)
    flows = synth_flows(48) + synth_flows(16, dport=6666)
    return list(generator.stream(flows, n, locality="zipf"))


def make_deployment(app: str = "l2l3_acl", telemetry=None) -> Deployment:
    build, install = EXAMPLE_APPS[app]
    deployment = Deployment(
        build(), EMULATED_NIC, telemetry=telemetry
    )
    install(deployment.control_plane)
    return deployment


class TestHistogram:
    def test_observe_and_mean(self):
        hist = Histogram([10.0, 100.0])
        for value in (5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 555.0
        assert hist.mean == 185.0
        assert hist.counts == [1, 1, 1]

    def test_boundary_lands_in_le_bucket(self):
        # Prometheus `le` semantics: a value equal to a bound belongs
        # to that bound's bucket.
        hist = Histogram([10.0, 100.0])
        hist.observe(10.0)
        assert hist.counts == [1, 0, 0]

    def test_quantile_is_bucket_upper_bound(self):
        hist = Histogram([10.0, 100.0, 1000.0])
        for _ in range(90):
            hist.observe(5.0)
        for _ in range(10):
            hist.observe(500.0)
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(0.99) == 1000.0
        assert hist.quantile(0.0) == 10.0

    def test_quantile_overflow_is_inf(self):
        hist = Histogram([10.0])
        hist.observe(99.0)
        assert hist.quantile(0.99) == math.inf

    def test_merge_is_elementwise(self):
        a = Histogram([10.0, 100.0])
        b = Histogram([10.0, 100.0])
        a.observe(5.0)
        b.observe(50.0)
        b.observe(5000.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == 5055.0

    def test_merge_rejects_different_buckets(self):
        with pytest.raises(ValueError, match="buckets"):
            Histogram([1.0]).merge(Histogram([2.0]))

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram([10.0, 5.0])
        with pytest.raises(ValueError):
            Histogram([5.0, 5.0])

    def test_default_buckets_are_log_spaced(self):
        hist = Histogram()
        assert hist.buckets == LATENCY_BUCKETS_NS
        ratios = {
            b / a
            for a, b in zip(LATENCY_BUCKETS_NS, LATENCY_BUCKETS_NS[1:])
        }
        assert ratios == {2.0}


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", 2.0, table="a")
        registry.inc("hits_total", 3.0, table="a")
        registry.inc("hits_total", 7.0, table="b")
        assert registry.value("hits_total", table="a") == 5.0
        assert registry.value("hits_total", table="b") == 7.0
        assert registry.value("hits_total", table="missing") == 0.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().inc("x_total", -1.0)

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError, match="counter"):
            registry.set_gauge("x", 1.0)

    def test_gauge_is_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("temp", 1.0)
        registry.set_gauge("temp", 9.0)
        assert registry.value("temp") == 9.0

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c_total", 1.0)
        b.inc("c_total", 2.0)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 5.0)
        a.observe("h_ns", 10.0)
        b.observe("h_ns", 20.0)
        a.merge(b)
        assert a.value("c_total") == 3.0
        assert a.value("g") == 5.0  # last-observation-wins
        assert a.histogram("h_ns").count == 2
        # Merge is usable as a fresh-into-empty fold too.
        merged = MetricsRegistry().merge(a)
        assert merged.value("c_total") == 3.0

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        registry.inc("pkts_total", 3.0, help="Packets", app="demo")
        registry.set_gauge("rate", 0.5)
        registry.observe("lat_ns", 20.0, buckets=[16.0, 32.0])
        text = registry.to_prometheus()
        assert "# HELP pkts_total Packets\n" in text
        assert "# TYPE pkts_total counter\n" in text
        assert 'pkts_total{app="demo"} 3\n' in text
        assert "# TYPE rate gauge\n" in text
        assert "rate 0.5\n" in text
        assert "# TYPE lat_ns histogram\n" in text
        assert 'lat_ns_bucket{le="16"} 0\n' in text
        assert 'lat_ns_bucket{le="32"} 1\n' in text
        assert 'lat_ns_bucket{le="+Inf"} 1\n' in text
        assert "lat_ns_sum 20\n" in text
        assert "lat_ns_count 1" in text

    def test_prometheus_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (1.0, 20.0, 20.0, 999.0):
            registry.observe("h", value, buckets=[16.0, 32.0])
        lines = registry.to_prometheus().splitlines()
        buckets = [l for l in lines if l.startswith("h_bucket")]
        assert buckets == [
            'h_bucket{le="16"} 1',
            'h_bucket{le="32"} 3',
            'h_bucket{le="+Inf"} 4',
        ]

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.inc("x_total", 1.0, path='a"b\\c\nd')
        text = registry.to_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_json_round_trippable(self):
        registry = MetricsRegistry()
        registry.inc("c_total", 2.0, app="x")
        registry.observe("h_ns", 5.0)
        payload = json.loads(json.dumps(registry.to_json()))
        assert payload["c_total"]["type"] == "counter"
        assert payload["c_total"]["series"][0]["value"] == 2.0
        assert payload["h_ns"]["series"][0]["count"] == 1

    def test_reset_and_names(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        assert registry.names() == ["a", "b"]
        registry.reset()
        assert len(registry) == 0
        assert registry.to_prometheus() == ""


class TestEventLog:
    def test_emit_stamps_sequence_and_clock(self):
        clock = SimClock()
        log = EventLog(clock=clock)
        first = log.emit("boot")
        clock.advance(2.5)
        second = log.emit("tick", n=7)
        assert first == {"seq": 0, "ts_s": 0.0, "kind": "boot"}
        assert second["seq"] == 1
        assert second["ts_s"] == 2.5
        assert second["n"] == 7
        assert log.emitted == 2

    def test_ring_rotates_but_emitted_total_does_not(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("e", i=i)
        assert log.emitted == 5
        assert [e["i"] for e in log.events()] == [2, 3, 4]
        assert log.last()["i"] == 4
        assert log.last("missing") is None

    def test_kind_filter(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert len(log.events("a")) == 2
        assert log.last("b")["kind"] == "b"

    def test_jsonl_round_trip(self):
        log = EventLog()
        log.emit("x", value=1)
        log.emit("y", value=2)
        parsed = EventLog.parse_jsonl(log.to_jsonl())
        assert parsed == log.events()

    def test_file_sink_keeps_full_history(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(capacity=2, sink_path=str(path)) as log:
            for i in range(5):
                log.emit("e", i=i)
            assert len(log) == 2  # ring rotated
        on_disk = EventLog.parse_jsonl(path.read_text())
        assert [e["i"] for e in on_disk] == [0, 1, 2, 3, 4]

    def test_merge_orders_by_timestamp(self):
        mine = EventLog()
        mine.emit("late")
        mine._events[0]["ts_s"] = 5.0
        foreign = [{"seq": 0, "ts_s": 1.0, "kind": "early"}]
        mine.merge(foreign)
        assert [e["kind"] for e in mine.events()] == ["late", "early"][
            ::-1
        ]

    def test_merge_is_idempotent(self):
        # Regression: merging the same shard's log after every
        # collect() used to duplicate its entire history on each merge
        # (and never advanced `emitted`). An event already present —
        # same (ts_s, seq, source) — must be skipped.
        mine = EventLog()
        mine.emit("local")
        foreign = [
            {"seq": 0, "ts_s": 1.0, "kind": "remote", "source": "s0"},
            {"seq": 1, "ts_s": 2.0, "kind": "remote", "source": "s0"},
        ]
        mine.merge(foreign)
        assert len(mine) == 3
        assert mine.emitted == 3
        mine.merge(foreign)  # repeat merge: no duplicates
        mine.merge(list(foreign))
        assert len(mine) == 3
        assert mine.emitted == 3
        # A genuinely new event from the same source still lands.
        mine.merge(
            [{"seq": 2, "ts_s": 3.0, "kind": "remote", "source": "s0"}]
        )
        assert len(mine) == 4 and mine.emitted == 4

    def test_merge_distinguishes_sources(self):
        # Two emitters can collide on (ts_s, seq); the source stamp
        # keeps their events distinct.
        mine = EventLog()
        mine.merge([{"seq": 0, "ts_s": 0.0, "kind": "a", "source": "s0"}])
        mine.merge([{"seq": 0, "ts_s": 0.0, "kind": "b", "source": "s1"}])
        assert sorted(e["kind"] for e in mine.events()) == ["a", "b"]

    def test_source_stamped_into_emitted_events(self):
        log = EventLog(source="shard-3")
        event = log.emit("boot")
        assert event["source"] == "shard-3"
        assert EventLog().emit("boot").get("source") is None

    def test_observe_control_plane_records_mutations(self):
        program = linear_program("ev", 2)
        control_plane = ControlPlane(program, SimClock())
        log = EventLog()
        assert log.observe_control_plane(control_plane)
        # Idempotent: a second subscription is refused.
        assert not log.observe_control_plane(control_plane)
        table = program.table("ev_t0")
        action = next(iter(table.actions))
        entry_id = control_plane.insert_entry(
            "ev_t0", exact_entry(1, action)
        )
        control_plane.delete_entry("ev_t0", entry_id)
        kinds = [e["op"] for e in log.events("control_update")]
        assert kinds == ["insert", "delete"]
        assert log.events("control_update")[0]["table"] == "ev_t0"


class TestPacketTracer:
    def test_sampling_cadence_first_packet_always_sampled(self):
        tracer = PacketTracer(sample_interval=4)
        picks = [tracer.try_begin() is not None for _ in range(9)]
        assert picks == [
            True, False, False, False,
            True, False, False, False,
            True,
        ]
        assert tracer.seen == 9
        assert tracer.sampled == 3

    def test_interval_one_samples_everything(self):
        tracer = PacketTracer(sample_interval=1)
        assert all(tracer.try_begin() is not None for _ in range(5))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PacketTracer(sample_interval=0)
        with pytest.raises(ValueError):
            PacketTracer(max_traces=0)

    def test_span_latencies_sum_to_total(self):
        tracer = PacketTracer(1)
        trace = tracer.try_begin(ts_s=1.0)
        trace.enter("parser", "parser", 0.0)
        trace.enter("t0", "table", 10.0)
        trace.note("act_fwd")
        trace.enter("t1", "table", 35.0)
        tracer.finish(trace, 60.0, dropped=False, egress_port=3)
        assert trace.verdict == "forward:3"
        assert [s.latency_ns for s in trace.steps] == [10.0, 25.0, 25.0]
        assert sum(s.latency_ns for s in trace.steps) == trace.latency_ns
        assert trace.path() == ("parser", "t0", "t1")
        assert trace.steps[1].detail == "act_fwd"
        assert tracer.node_visits("t0") == 1
        assert tracer.node_mean_ns("t1") == 25.0
        assert tracer.node_total_ns("parser") == 10.0

    def test_drop_verdict(self):
        tracer = PacketTracer(1)
        trace = tracer.try_begin()
        trace.enter("t0", "table", 0.0)
        tracer.finish(trace, 5.0, dropped=True, egress_port=None)
        assert trace.verdict == "drop"
        assert trace.to_json()["steps"][0]["node"] == "t0"

    def test_merge_sums_and_interval_mismatch_raises(self):
        a, b = PacketTracer(4), PacketTracer(4)
        for tracer in (a, b):
            trace = tracer.try_begin()
            trace.enter("t0", "table", 0.0)
            tracer.finish(trace, 8.0, False, None)
            tracer.try_begin()
        a.merge(b)
        assert a.seen == 4
        assert a.sampled == 2
        assert a.node_visits("t0") == 2
        assert len(a.traces) == 2
        with pytest.raises(ValueError, match="sample intervals"):
            a.merge(PacketTracer(8))

    def test_reset_and_spawn_empty(self):
        tracer = PacketTracer(sample_interval=2, max_traces=9)
        trace = tracer.try_begin()
        tracer.finish(trace, 1.0, False, None)
        tracer.reset()
        assert (tracer.seen, tracer.sampled) == (0, 0)
        assert not tracer.traces and not tracer.node_ns
        twin = tracer.spawn_empty()
        assert twin.sample_interval == 2
        assert twin.max_traces == 9
        assert twin is not tracer


class TestTelemetryHub:
    def test_default_is_tracing_off(self):
        telemetry = Telemetry()
        assert telemetry.tracer is None
        assert not telemetry.tracing

    def test_trace_interval_enables_tracer(self):
        telemetry = Telemetry(trace_interval=8)
        assert telemetry.tracing
        assert telemetry.tracer.sample_interval == 8
        with pytest.raises(ValueError):
            Telemetry(trace_interval=-1)

    def test_events_path_opens_sink(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with Telemetry(events_path=str(path)) as telemetry:
            telemetry.events.emit("hello")
        assert EventLog.parse_jsonl(path.read_text())[0]["kind"] == (
            "hello"
        )

    def test_bind_clock_restamps_events(self):
        telemetry = Telemetry()
        clock = SimClock()
        clock.advance(4.0)
        telemetry.bind_clock(clock)
        assert telemetry.events.emit("t")["ts_s"] == 4.0


class TestExportHelpers:
    def test_export_run_stats(self):
        deployment = make_deployment()
        stats = deployment.run(app_packets(3, 200))
        registry = MetricsRegistry()
        export_run_stats(registry, stats, EMULATED_NIC, app="demo")
        assert registry.value(
            "pipeleon_packets_total", app="demo"
        ) == 200
        hist = registry.histogram(
            "pipeleon_packet_latency_ns", app="demo"
        )
        assert hist.count == 200
        assert registry.value(
            "pipeleon_throughput_gbps", app="demo"
        ) > 0

    def test_export_emulator_and_caches(self):
        deployment = make_deployment()
        deployment.run(app_packets(3, 200))
        registry = MetricsRegistry()
        export_emulator(registry, deployment.emulator)
        text = registry.to_prometheus()
        assert "pipeleon_p4_counter_packets_total" in text
        for name, cache in deployment.emulator.flow_caches.items():
            looked_up = registry.value(
                "pipeleon_cache_events_total", cache=name, event="hits"
            ) + registry.value(
                "pipeleon_cache_events_total", cache=name, event="misses"
            )
            assert looked_up == cache.stats.lookups

    def test_export_cache_stats_hit_rate_gauge(self):
        from repro.nic.flow_cache import CacheStats

        stats = CacheStats()
        stats.hits, stats.misses = 3, 1
        registry = MetricsRegistry()
        export_cache_stats(registry, "c0", stats)
        assert registry.value(
            "pipeleon_cache_hit_rate", cache="c0"
        ) == 0.75

    def test_export_tracer(self):
        tracer = PacketTracer(2)
        trace = tracer.try_begin()
        trace.enter("t0", "table", 0.0)
        tracer.finish(trace, 10.0, False, None)
        tracer.try_begin()
        registry = MetricsRegistry()
        export_tracer(registry, tracer)
        assert registry.value("pipeleon_trace_packets_seen_total") == 2
        assert registry.value(
            "pipeleon_trace_packets_sampled_total"
        ) == 1
        assert registry.histogram(
            "pipeleon_node_latency_ns", node="t0"
        ).count == 1


class TracedRunMixin:
    """Shared assertion: tracing must not perturb replay statistics."""

    @staticmethod
    def aggregates(deployment, stats):
        emulator = deployment.emulator
        return (
            stats.packets,
            stats.dropped,
            stats.total_latency_ns,
            stats.total_bytes,
            stats._busy_ns,
            emulator.counters.snapshot()
            if hasattr(emulator, "counters")
            else None,
        )


class TestTracedDeployment(TracedRunMixin):
    def test_tracing_does_not_perturb_replay(self):
        plain = make_deployment()
        traced = make_deployment(
            telemetry=Telemetry(trace_interval=16)
        )
        plain_stats = plain.replay(app_packets(5, 400))
        traced_stats = traced.replay(app_packets(5, 400))
        assert self.aggregates(plain, plain_stats) == self.aggregates(
            traced, traced_stats
        )
        tracer = traced.tracer
        assert tracer.seen == 400
        assert tracer.sampled == 25
        # Every retained trace is internally consistent.
        for trace in tracer.traces:
            assert trace.steps[0].node == PARSER_STEP
            assert trace.verdict
            assert sum(
                s.latency_ns for s in trace.steps
            ) == pytest.approx(trace.latency_ns)

    def test_interpreter_and_fastpath_trace_identically(self):
        interp = make_deployment(
            telemetry=Telemetry(trace_interval=8)
        )
        fast = make_deployment(telemetry=Telemetry(trace_interval=8))
        interp.emulator.run(app_packets(7, 200))
        fast.replay(app_packets(7, 200))
        a, b = interp.tracer, fast.tracer
        assert a.sampled == b.sampled
        assert [t.path() for t in a.traces] == [
            t.path() for t in b.traces
        ]
        assert [t.latency_ns for t in a.traces] == [
            t.latency_ns for t in b.traces
        ]

    def test_attaching_tracer_recompiles_fastpath(self):
        deployment = make_deployment()
        emulator = deployment.emulator
        engine = emulator.fastpath
        emulator.tracer = PacketTracer(4)
        assert engine.stale()
        assert emulator.fastpath is not engine
        emulator.replay(app_packets(2, 40))
        assert emulator.tracer.sampled == 10

    def test_report_joins_measured_and_predicted(self):
        telemetry = Telemetry(trace_interval=8)
        deployment = make_deployment(telemetry=telemetry)
        deployment.replay(app_packets(9, 800))
        profile = deployment.profile(offered_pps=1e6)
        model = CostModel.for_target(EMULATED_NIC)
        report = measured_vs_predicted(
            deployment.program, profile, model, telemetry.tracer
        )
        assert report.traced_packets == 100
        assert report.rows
        assert report.measured_total_ns > 0
        assert report.predicted_total_ns > 0
        measured_rows = [
            row for row in report.rows if row.traced_packets
        ]
        assert measured_rows
        for row in measured_rows:
            assert row.measured_ns > 0
            assert row.error_pct is not None
        text = format_report(report)
        assert "pipelet" in text and "error" in text
        for row in report.rows:
            assert row.pipelet_id in text
        assert "program" in text
        payload = report.to_json()
        assert len(payload["rows"]) == len(report.rows)

    def test_control_plane_mutations_land_in_event_log(self):
        telemetry = Telemetry()
        deployment = make_deployment(telemetry=telemetry)
        inserts = telemetry.events.events("control_update")
        assert inserts  # base entries were installed after wiring
        assert all(e["op"] == "insert" for e in inserts)
        deployment.control_plane.flush_caches()
        assert telemetry.events.last("control_update")["op"] == "flush"


class TestShardedTracing(TracedRunMixin):
    def test_sharded_merge_matches_single_core_aggregates(self):
        build, install = EXAMPLE_APPS["l2l3_acl"]
        sharded = ShardedDeployment(
            build(),
            EMULATED_NIC,
            n_workers=2,
            telemetry=Telemetry(trace_interval=16),
        )
        try:
            install(sharded.control_plane)
            stats = sharded.replay(app_packets(11, 400))
            assert stats.packets == 400
            tracer = sharded.tracer
            assert tracer is not None
            assert tracer.seen == 400
            # Each worker samples its own shard stream's first packet,
            # so the merged sample count is >= the single-core count.
            assert tracer.sampled >= 400 // 16
            assert tracer.node_ns
            for trace in tracer.traces:
                assert trace.steps[0].node == PARSER_STEP
            registry = MetricsRegistry()
            export_tracer(registry, tracer)
            assert registry.value(
                "pipeleon_trace_packets_seen_total"
            ) == 400
        finally:
            sharded.close()

    def test_telemetry_survives_worker_collect_cycles(self):
        build, install = EXAMPLE_APPS["l2l3_acl"]
        sharded = ShardedDeployment(
            build(),
            EMULATED_NIC,
            n_workers=2,
            telemetry=Telemetry(trace_interval=8),
        )
        try:
            install(sharded.control_plane)
            sharded.replay(app_packets(13, 200))
            first = sharded.tracer.seen
            sharded.replay(app_packets(14, 200))
            assert sharded.tracer.seen == first + 200
        finally:
            sharded.close()
