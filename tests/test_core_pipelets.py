"""Tests for pipelet formation, groups, and hot-pipelet detection."""

import pytest

from repro.core import (
    CostModel,
    find_groups,
    partition,
    rank_pipelets,
    top_k,
    traffic_entropy,
    uniform_profile,
)
from repro.core.hotspots import pipelet_latency
from repro.ir import linear_program
from repro.ir.actions import noop_action
from repro.ir.builder import ProgramBuilder
from repro.ir.conditionals import Condition
from repro.nic.targets import BLUEFIELD2


@pytest.fixture
def model():
    return CostModel.for_target(BLUEFIELD2)


class TestPartition:
    def test_linear_program_single_pipelet(self):
        program = linear_program("p", 4)
        pipelets = partition(program)
        assert len(pipelets) == 1
        assert pipelets[0].table_names == tuple(
            f"p_t{i}" for i in range(4)
        )
        assert pipelets[0].exit_next is None

    def test_long_run_split(self):
        program = linear_program("p", 14)
        pipelets = partition(program, max_len=6)
        assert [len(p) for p in pipelets] == [6, 6, 2]
        # chunks chain into one another
        assert pipelets[0].exit_next == pipelets[1].entry

    def test_branches_cut_pipelets(self, branching_program):
        pipelets = partition(branching_program)
        entries = {p.entry for p in pipelets}
        assert entries == {"t0", "left", "right", "join"}

    def test_conditional_not_in_any_pipelet(self, branching_program):
        pipelets = partition(branching_program)
        for pipelet in pipelets:
            assert "cond" not in pipelet.table_names

    def test_switch_case_table_is_own_pipelet(self):
        builder = ProgramBuilder("p")
        builder.table("t0", ["f0"], [noop_action("a")], next_node="sw")
        builder.table(
            "sw",
            ["f1"],
            [noop_action("x"), noop_action("y")],
            next_map={"x": "t1", "y": "t2"},
        )
        builder.table("t1", ["f2"], [noop_action("b")])
        builder.table("t2", ["f3"], [noop_action("c")])
        program = builder.build(root="t0")
        pipelets = partition(program)
        by_entry = {p.entry: p for p in pipelets}
        assert by_entry["sw"].is_switch_case
        assert len(by_entry["sw"]) == 1
        assert len(by_entry["t0"]) == 1  # cut before the switch-case

    def test_join_node_starts_new_pipelet(self, branching_program):
        pipelets = partition(branching_program)
        join = next(p for p in pipelets if p.entry == "join")
        assert join.table_names == ("join",)

    def test_empty_program(self):
        from repro.ir.program import Program

        assert partition(Program("empty")) == []

    def test_pipelets_cover_all_plain_tables(self, branching_program):
        pipelets = partition(branching_program)
        covered = {n for p in pipelets for n in p.table_names}
        plain = {t.name for t in branching_program.plain_tables()}
        assert covered == plain


class TestGroups:
    def test_diamond_detected(self, branching_program):
        pipelets = partition(branching_program)
        groups = find_groups(branching_program, pipelets)
        assert len(groups) == 1
        group = groups[0]
        assert group.branch == "cond"
        # The reconvergence pipelet is absorbed into the group, so the
        # group spans branch + both sides + the join run (Figure 8).
        assert set(group.table_names()) == {"left", "right", "join"}
        assert group.join is not None
        assert group.join.entry == "join"
        assert group.exit_next is None

    def test_no_group_for_half_diamond(self):
        """A branch whose false side skips straight to the join has no
        two-sided group (members must share the same exit)."""
        builder = ProgramBuilder("p")
        builder.conditional(
            "cond",
            Condition("ipv4.tos", "eq", 1),
            true_next="a",
            false_next="join",
        )
        builder.table("a", ["f1"], [noop_action("aa")], next_node="join")
        builder.table("join", ["f3"], [noop_action("xx")])
        program = builder.build(root="cond")
        groups = find_groups(program, partition(program))
        assert groups == []

    def test_group_needs_both_members_selected(self, branching_program):
        pipelets = partition(branching_program)
        only_left = [p for p in pipelets if p.entry != "right"]
        assert find_groups(branching_program, only_left) == []


class TestHotspots:
    def test_rank_orders_by_weighted_cost(self, model, branching_program):
        profile = uniform_profile(branching_program)
        profile.branch_probs["cond"] = 0.95
        pipelets = partition(branching_program)
        ranked = rank_pipelets(
            branching_program, pipelets, profile, model
        )
        entries = [c.pipelet.entry for c in ranked]
        # 'left' gets 95% of branch traffic, 'right' 5%.
        assert entries.index("left") < entries.index("right")

    def test_top_k_fraction(self, model):
        program = linear_program("p", 12)
        pipelets = partition(program, max_len=2)  # 6 pipelets
        profile = uniform_profile(program)
        hot = top_k(program, pipelets, profile, model, k=0.5)
        assert len(hot) == 3

    def test_top_k_at_least_one(self, model, chain5, chain5_profile):
        pipelets = partition(chain5)
        hot = top_k(chain5, pipelets, chain5_profile, model, k=0.01)
        assert len(hot) == 1

    def test_invalid_k(self, model, chain5, chain5_profile):
        with pytest.raises(ValueError):
            top_k(chain5, partition(chain5), chain5_profile, model, k=0)

    def test_pipelet_latency_accounts_for_drops(self, model, acl_program):
        profile = uniform_profile(acl_program)
        pipelets = partition(acl_program)
        base = pipelet_latency(acl_program, pipelets[0], profile, model)
        profile.set_action_probs(
            "acl0", {"acl0_deny": 0.99, "acl0_permit": 0.01}
        )
        heavy = pipelet_latency(acl_program, pipelets[0], profile, model)
        assert heavy < base

    def test_entropy_reflects_balance(self, model, branching_program):
        pipelets = partition(branching_program)
        even = uniform_profile(branching_program)
        skewed = uniform_profile(branching_program)
        skewed.branch_probs["cond"] = 0.999
        assert traffic_entropy(
            branching_program, pipelets, even, model
        ) > traffic_entropy(branching_program, pipelets, skewed, model)
