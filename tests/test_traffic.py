"""Tests for the traffic substrate (flows, generators, scenarios)."""

import collections

import pytest

from repro.nic.packet import DEFAULT_PACKET_BYTES
from repro.traffic import (
    Scenario,
    TrafficGenerator,
    drop_rate_stream,
    synth_flow,
    synth_flows,
)


class TestFlows:
    def test_synth_flows_distinct(self):
        flows = synth_flows(100)
        assert len({(f.src, f.sport) for f in flows}) == 100

    def test_flow_packet_fields(self):
        flow = synth_flow(3, dport=443)
        packet = flow.packet()
        assert packet.get("l4.dport") == 443
        assert packet.get("ipv4.src") == flow.src
        assert packet.size_bytes == DEFAULT_PACKET_BYTES

    def test_with_fields(self):
        flow = synth_flow(0).with_fields(**{"ipv4.tos": 3})
        assert flow.packet().get("ipv4.tos") == 3
        # Original five-tuple untouched.
        assert flow.dport == synth_flow(0).dport


class TestGenerator:
    def test_deterministic_per_seed(self):
        flows = synth_flows(10)
        a = [
            p.flow_key()
            for p in TrafficGenerator(5).stream(flows, 50)
        ]
        b = [
            p.flow_key()
            for p in TrafficGenerator(5).stream(flows, 50)
        ]
        assert a == b

    def test_uniform_covers_flows(self):
        flows = synth_flows(5)
        keys = {
            p.flow_key()
            for p in TrafficGenerator(1).stream(flows, 300)
        }
        assert len(keys) == 5

    def test_zipf_concentrates(self):
        flows = synth_flows(50)
        generator = TrafficGenerator(2)
        counts = collections.Counter(
            p.flow_key()
            for p in generator.stream(
                flows, 1000, locality="zipf", zipf_skew=1.5
            )
        )
        top = counts.most_common(5)
        top_share = sum(c for _k, c in top) / 1000
        assert top_share > 0.5  # heavy concentration

    def test_round_robin(self):
        flows = synth_flows(3)
        packets = list(
            TrafficGenerator(0).stream(
                flows, 6, locality="round_robin"
            )
        )
        keys = [p.flow_key() for p in packets]
        assert keys[0] == keys[3]
        assert keys[1] == keys[4]

    def test_unknown_locality(self):
        with pytest.raises(ValueError):
            list(
                TrafficGenerator(0).stream(
                    synth_flows(2), 5, locality="fractal"
                )
            )

    def test_empty_flows_yields_nothing(self):
        assert list(TrafficGenerator(0).stream([], 10)) == []

    def test_mixed_stream_respects_weights(self):
        group_a = synth_flows(4, dport=1111)
        group_b = synth_flows(4, dport=2222)
        packets = list(
            TrafficGenerator(3).mixed_stream(
                [(group_a, 0.9), (group_b, 0.1)], 1000
            )
        )
        share_a = sum(
            1 for p in packets if p.get("l4.dport") == 1111
        ) / len(packets)
        assert 0.85 < share_a < 0.95

    def test_drop_rate_stream_rate(self):
        from repro.apps.microbench import DENY_PORT

        packets = list(
            drop_rate_stream(TrafficGenerator(4), 1000, 0.25)
        )
        droppable = sum(
            1 for p in packets if p.get("l4.dport") == 6666
        )
        assert 0.2 < droppable / 1000 < 0.3

    def test_drop_rate_validation(self):
        with pytest.raises(ValueError):
            list(drop_rate_stream(TrafficGenerator(0), 10, 1.5))


class TestScenario:
    def make(self):
        return (
            Scenario("s")
            .add_phase("a", 3, lambda n: [])
            .add_phase("b", 2, lambda n: [])
        )

    def test_total_duration(self):
        assert self.make().total_duration_s == 5

    def test_phase_at(self):
        scenario = self.make()
        assert scenario.phase_at(0.0).name == "a"
        assert scenario.phase_at(2.9).name == "a"
        assert scenario.phase_at(3.0).name == "b"
        assert scenario.phase_at(10.0) is None

    def test_ticks_one_per_second(self):
        ticks = list(self.make().ticks())
        assert [t for t, _p in ticks] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert [p.name for _t, p in ticks] == ["a", "a", "a", "b", "b"]

    def test_empty_scenario(self):
        scenario = Scenario("empty")
        assert scenario.total_duration_s == 0
        assert scenario.phase_at(0.0) is None
        assert list(scenario.ticks()) == []

    def test_fractional_durations_tick_boundaries(self):
        # Ticks land on whole seconds; a phase owns the ticks that fall
        # strictly before its cumulative end. With 1.5s + 0.5s the
        # second phase starts mid-second, so the tick at t=2.0 is its
        # only one. The end boundary is explicit: exactly
        # total_duration_s belongs to the last real phase, not to None.
        scenario = (
            Scenario("frac")
            .add_phase("a", 1.5, lambda n: [])
            .add_phase("b", 0.5, lambda n: [])
        )
        assert scenario.total_duration_s == 2.0
        assert scenario.phase_at(1.4).name == "a"
        assert scenario.phase_at(1.5).name == "b"
        assert scenario.phase_at(2.0).name == "b"
        assert scenario.phase_at(2.0001) is None
        ticks = [(t, p.name) for t, p in scenario.ticks()]
        assert ticks == [(0.0, "a"), (1.0, "a"), (2.0, "b")]

    def test_zero_duration_phase_never_ticks(self):
        scenario = (
            Scenario("z")
            .add_phase("a", 1, lambda n: [])
            .add_phase("burst", 0, lambda n: [])
            .add_phase("b", 1, lambda n: [])
        )
        assert [p.name for _t, p in scenario.ticks()] == ["a", "b"]
        # phase_at skips the zero-length phase too: no instant belongs
        # to it.
        assert scenario.phase_at(1.0).name == "b"

    def test_control_action_passthrough(self):
        calls = []
        scenario = Scenario("c").add_phase(
            "a",
            2,
            lambda n: [f"pkt@{n}"],
            control_action=lambda cp, t: calls.append((cp, t)),
        )
        for time_s, phase in scenario.ticks():
            assert phase.stream_factory(int(time_s)) == [
                f"pkt@{int(time_s)}"
            ]
            if phase.control_action is not None:
                phase.control_action("cp", time_s)
        assert calls == [("cp", 0.0), ("cp", 1.0)]


class TestGeneratorEdges:
    def test_zipf_skew_zero_is_uniform(self):
        flows = synth_flows(8)
        counts = collections.Counter(
            p.get("ipv4.src")
            for p in TrafficGenerator(5).stream(
                flows, 4000, locality="zipf", zipf_skew=0.0
            )
        )
        assert len(counts) == 8
        # rank^0 weights are all equal: no flow should dominate.
        assert max(counts.values()) / 4000 < 0.25

    def test_zipf_high_skew_concentrates_on_top_flow(self):
        flows = synth_flows(8)
        counts = collections.Counter(
            p.get("ipv4.src")
            for p in TrafficGenerator(5).stream(
                flows, 2000, locality="zipf", zipf_skew=6.0
            )
        )
        top_share = counts[flows[0].packet().get("ipv4.src")] / 2000
        assert top_share > 0.95

    def test_single_flow_all_localities(self):
        flows = synth_flows(1)
        for locality in ("uniform", "zipf", "round_robin"):
            packets = list(
                TrafficGenerator(0).stream(flows, 10, locality=locality)
            )
            assert len(packets) == 10
            assert {p.get("ipv4.src") for p in packets} == {
                flows[0].packet().get("ipv4.src")
            }

    def test_zero_packets(self):
        assert list(TrafficGenerator(0).stream(synth_flows(4), 0)) == []

    def test_mixed_stream_skips_empty_groups(self):
        group = synth_flows(2, dport=1111)
        packets = list(
            TrafficGenerator(1).mixed_stream(
                [([], 0.9), (group, 0.1)], 50
            )
        )
        assert len(packets) == 50
        assert all(p.get("l4.dport") == 1111 for p in packets)

    def test_mixed_stream_all_groups_empty(self):
        assert list(TrafficGenerator(1).mixed_stream([([], 1.0)], 5)) == []
