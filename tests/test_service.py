"""Serve-mode job lifecycle, chaos determinism, and drain semantics.

Three layers, cheapest first: the :class:`JobQueue` alone, the
controller's per-episode SLO trigger idempotency (the double-breach
regression), then full :class:`ServeSession`/:class:`ServiceDaemon`
integration — including the acceptance scenario (two same-seed chaos
sessions with a worker kill and an SLO breach must produce
bit-identical merged stats) and SIGTERM during a replay.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import (
    JobQueue,
    JobState,
    ServeSession,
    ServiceClient,
    ServiceError,
    SessionConfig,
)
from repro.service.jobs import QueueClosedError


def wait_until(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


# ---------------------------------------------------------------------------
# JobQueue
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_fifo_execution_and_results(self):
        queue = JobQueue()
        order = []

        def make(tag):
            def fn(job):
                order.append(tag)
                return tag

            return fn

        jobs = [
            queue.submit("noop", {}, make(i)) for i in range(4)
        ]
        for job in jobs:
            assert job.done_event.wait(5.0)
        assert order == [0, 1, 2, 3]
        assert [j.state for j in jobs] == [JobState.DONE] * 4
        assert [j.result for j in jobs] == [0, 1, 2, 3]
        assert queue.drain(timeout_s=5.0)

    def test_cancel_queued_job_never_runs(self):
        queue = JobQueue()
        gate = threading.Event()
        ran = []

        first = queue.submit("slow", {}, lambda job: gate.wait(5.0))
        second = queue.submit(
            "victim", {}, lambda job: ran.append(True)
        )
        assert queue.cancel(second.id) is second
        assert second.state == JobState.CANCELLED
        gate.set()
        assert first.done_event.wait(5.0)
        assert ran == []
        assert queue.drain(timeout_s=5.0)

    def test_cancel_running_is_cooperative(self):
        queue = JobQueue()
        started = threading.Event()

        def fn(job):
            started.set()
            job.cancel_event.wait(5.0)
            return "stopped-early"

        job = queue.submit("loop", {}, fn)
        assert started.wait(5.0)
        queue.cancel(job.id)
        assert job.done_event.wait(5.0)
        # Ran to (early) completion but the cancel request wins the
        # terminal state; the partial result is still kept.
        assert job.state == JobState.CANCELLED
        assert job.result == "stopped-early"
        assert queue.drain(timeout_s=5.0)

    def test_failure_is_captured_not_fatal(self):
        queue = JobQueue()
        bad = queue.submit(
            "boom", {}, lambda job: (_ for _ in ()).throw(ValueError("x"))
        )
        good = queue.submit("ok", {}, lambda job: 7)
        assert bad.done_event.wait(5.0)
        assert good.done_event.wait(5.0)
        assert bad.state == JobState.FAILED
        assert "ValueError" in bad.error
        assert good.state == JobState.DONE
        assert queue.drain(timeout_s=5.0)

    def test_drain_rejects_new_and_cancels_backlog(self):
        queue = JobQueue()
        gate = threading.Event()
        running = queue.submit("slow", {}, lambda job: gate.wait(5.0))
        backlog = queue.submit("later", {}, lambda job: 1)
        drained = []
        t = threading.Thread(
            target=lambda: drained.append(
                queue.drain(cancel_running=False, timeout_s=10.0)
            )
        )
        t.start()
        assert wait_until(lambda: queue.closed)
        assert backlog.done_event.wait(5.0)
        assert backlog.state == JobState.CANCELLED
        with pytest.raises(QueueClosedError):
            queue.submit("nope", {}, lambda job: 2)
        gate.set()
        t.join(10.0)
        assert drained == [True]
        assert running.state == JobState.DONE

    def test_drain_cancel_running_flips_event(self):
        queue = JobQueue()
        started = threading.Event()

        def fn(job):
            started.set()
            job.cancel_event.wait(5.0)
            return "interrupted"

        job = queue.submit("slow", {}, fn)
        assert started.wait(5.0)
        assert queue.drain(cancel_running=True, timeout_s=10.0)
        assert job.state == JobState.CANCELLED


# ---------------------------------------------------------------------------
# SLO trigger idempotency (double-breach regression)
# ---------------------------------------------------------------------------


class TestSloEpisodeIdempotency:
    def make_controller(self):
        from repro.core.controller import (
            ControllerOptions,
            PipeleonController,
        )
        from repro.ir import linear_program
        from repro.ir.tables import MatchType
        from repro.nic.targets import BLUEFIELD2

        return PipeleonController(
            linear_program("p", 4, MatchType.TERNARY),
            BLUEFIELD2,
            options=ControllerOptions(profile_period_s=100.0),
            enabled=False,
        )

    def breach(self, rule="heartbeat_staleness_s", shard=0):
        return {"kind": "slo_breach", "rule": rule, "shard": shard}

    def clear(self, rule="heartbeat_staleness_s", shard=0):
        return {"kind": "slo_clear", "rule": rule, "shard": shard}

    def test_double_breach_consumes_once_per_episode(self):
        controller = self.make_controller()
        controller._on_slo_event(self.breach())
        # Re-latched breach of the same episode before its clear (the
        # kill-injection race): must NOT arm a second replan.
        controller._on_slo_event(self.breach())
        assert controller.slo_breaches_seen == 2
        assert controller.slo_breaches_suppressed == 1
        assert controller.consume_slo_trigger() is True
        assert controller.consume_slo_trigger() is False

    def test_clear_rearms_the_scope(self):
        controller = self.make_controller()
        controller._on_slo_event(self.breach())
        assert controller.consume_slo_trigger() is True
        controller._on_slo_event(self.breach())
        assert controller.consume_slo_trigger() is False
        controller._on_slo_event(self.clear())
        controller._on_slo_event(self.breach())
        assert controller.consume_slo_trigger() is True
        assert controller.slo_breaches_suppressed == 1

    def test_distinct_scopes_are_independent(self):
        controller = self.make_controller()
        controller._on_slo_event(self.breach(shard=0))
        controller._on_slo_event(self.breach(shard=1))
        assert controller.slo_breaches_suppressed == 0
        assert controller.consume_slo_trigger() is True
        controller._on_slo_event(self.breach(rule="p99_latency_ns", shard=None))
        assert controller.slo_breaches_suppressed == 0


# ---------------------------------------------------------------------------
# ServeSession + ServiceDaemon integration
# ---------------------------------------------------------------------------


def chaos_config(tmp_path, metrics=False):
    rules = tmp_path / "slo.json"
    rules.write_text(
        json.dumps([{"metric": "heartbeat_staleness_s", "max": 2.0}])
    )
    return SessionConfig(
        jobs=2,
        recovery="respawn",
        faults=("kill:shard=0,batch=3",),
        fault_seed="11",
        heartbeat_interval_s=0.01,
        live_interval_s=0.03,
        profile_period_s=100.0,
        slo_rules_path=str(rules),
        serve_metrics_port=0 if metrics else None,
    )


REPLAY = dict(
    scenario="flash_crowd",
    seed="7",
    packets_per_tick=150,
    kwargs={"steady_s": 4, "spike_s": 3, "decay_s": 0},
)


def thread_names():
    return sorted(t.name for t in threading.enumerate())


class TestServeSessionChaos:
    def run_chaos_session(self, tmp_path):
        session = ServeSession(chaos_config(tmp_path))
        try:
            result = session.run_replay(dict(REPLAY))
            # The staleness clear lands on the first aggregator sample
            # after the respawned worker heartbeats again — give the
            # episode a moment to close while the fleet is still up.
            watchdog = session.live_plane.watchdog
            wait_until(
                lambda: watchdog.clears >= watchdog.breaches, 10.0
            )
            result["slo_final"] = {
                "breaches": watchdog.breaches,
                "clears": watchdog.clears,
                "active": watchdog.active_breaches,
            }
        finally:
            session.close()
        return result

    def test_same_seed_chaos_runs_are_bit_identical(self, tmp_path):
        """The acceptance check: kill + SLO breach, two same-seed runs.

        The injected worker kill breaches heartbeat staleness exactly
        once (the respawn-counter latch), the breach schedules exactly
        one replan, and the merged RunStats of both runs agree bit for
        bit.
        """
        before = thread_names()
        first = self.run_chaos_session(tmp_path)
        second = self.run_chaos_session(tmp_path)
        assert first["ticks"] == 7
        assert first["cancelled"] is False
        assert sum(first["respawns"]) >= 1  # the kill really fired
        for result in (first, second):
            assert result["slo"]["breaches"] == 1
            assert result["slo_final"]["breaches"] == 1
            assert result["slo_final"]["clears"] == 1
            assert result["slo_final"]["active"] == []
        assert (
            first["stats"]["fingerprint"]
            == second["stats"]["fingerprint"]
        )
        assert first["stats"]["packets"] == 7 * 150
        # No leaked worker helpers or server threads after close.
        assert wait_until(lambda: thread_names() == before), (
            f"leaked threads: {set(thread_names()) - set(before)}"
        )

    def test_session_report_and_status(self, tmp_path):
        session = ServeSession(chaos_config(tmp_path))
        try:
            session.run_replay(dict(REPLAY))
            status = session.status()
            assert status["replays"] == 1
            assert status["slo_breaches"] == 1
            assert sum(status["worker_respawns"]) >= 1
            report = session.run_report({})
            assert report["replays"] == 1
            assert report["slo_breaches_seen"] >= 1
        finally:
            session.close()

    def test_jobs_must_be_sharded(self):
        with pytest.raises(ValueError, match="jobs"):
            SessionConfig(jobs=1)


class DaemonHarness:
    """Run a ServiceDaemon's asyncio loop on a worker thread."""

    def __init__(self, tmp_path, config=None):
        from repro.service import ServiceDaemon

        self.socket_path = str(tmp_path / "repro.sock")
        self.session = ServeSession(
            config
            or SessionConfig(jobs=2, profile_period_s=100.0)
        )
        self.daemon = ServiceDaemon(self.session, self.socket_path)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve()),
            daemon=True,
        )
        self.thread.start()
        # The socket file exists between bind() and listen(); retry
        # until a round-trip actually succeeds.
        def ready():
            try:
                with ServiceClient(self.socket_path, 5.0) as probe:
                    return probe.ping() == {"pong": True}
            except (OSError, ConnectionError):
                return False

        if not wait_until(ready, 15.0):
            raise RuntimeError("daemon never became ready")

    def client(self):
        return ServiceClient(self.socket_path, timeout_s=60.0)

    def join(self, timeout_s=30.0):
        self.thread.join(timeout_s)
        assert not self.thread.is_alive()


class TestServiceDaemon:
    def test_job_lifecycle_submit_wait_cancel_drain(self, tmp_path):
        harness = DaemonHarness(tmp_path)
        try:
            with harness.client() as client:
                assert client.ping() == {"pong": True}
                assert "flash_crowd" in client.scenarios()

                job_id = client.submit("replay", **REPLAY)
                done = client.wait(job_id, timeout_s=120.0)
                assert done["state"] == "done"
                assert done["result"]["ticks"] == 7

                # Cancellation mid-replay: a long scenario, cancelled
                # once running, settles as cancelled with the exact
                # stats of its completed ticks.
                long_id = client.submit(
                    "replay",
                    scenario="diurnal_zipf",
                    seed="1",
                    packets_per_tick=200,
                )
                assert wait_until(
                    lambda: client.job(long_id)["state"]
                    in ("running", "done"),
                    30.0,
                )
                client.cancel(long_id)
                settled = client.wait(long_id, timeout_s=120.0)
                assert settled["state"] == "cancelled"

                status = client.status()
                assert status["replays"] >= 1
                assert status["queue"]["draining"] is False

                bad = client.submit("replay")  # missing scenario name
                failed = client.wait(bad, timeout_s=30.0)
                assert failed["state"] == "failed"
                assert "scenario" in failed["error"]

                with pytest.raises(ServiceError) as excinfo:
                    client.request("submit", {"op": "nonsense"})
                assert excinfo.value.code == "bad_request"

                assert client.drain()["draining"] is True
            harness.join()
            assert harness.daemon.drained_cleanly is True
            assert not os.path.exists(harness.socket_path)
        finally:
            harness.session.close()  # idempotent belt-and-braces

    def test_drain_rejects_submit(self, tmp_path):
        harness = DaemonHarness(tmp_path)
        try:
            with harness.client() as client:
                client.drain()
                with pytest.raises((ServiceError, ConnectionError)):
                    client.submit("report")
            harness.join()
            assert harness.daemon.drained_cleanly is True
        finally:
            harness.session.close()


@pytest.mark.slow
class TestSigtermDuringReplay:
    def test_sigterm_cancels_replay_and_drains_cleanly(self, tmp_path):
        """SIGTERM mid-replay: cancel at a tick boundary, exit 0."""
        socket_path = str(tmp_path / "serve.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.getcwd(), "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--socket",
                socket_path,
                "--jobs",
                "2",
                "--profile-period",
                "100",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            assert ready["socket"] == socket_path
            with ServiceClient(socket_path) as client:
                job_id = client.submit(
                    "replay",
                    scenario="diurnal_zipf",
                    seed="3",
                    packets_per_tick=200,
                )
                assert wait_until(
                    lambda: client.job(job_id)["state"] == "running",
                    30.0,
                )
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=120)
            assert proc.returncode == 0, proc.stderr.read()
            assert not os.path.exists(socket_path)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
