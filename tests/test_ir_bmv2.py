"""Tests for the p4c/BMv2 JSON importer, using a miniature but
schema-faithful basic.p4-style compiler artifact."""

import json

import pytest

from repro.errors import IrError
from repro.ir.actions import Param
from repro.ir.bmv2 import (
    from_bmv2_json,
    loads_bmv2,
    looks_like_bmv2,
)
from repro.ir.tables import MatchType


def basic_bmv2() -> dict:
    """A hand-shrunk p4c-bm2-ss output for a basic L3 forwarder."""
    return {
        "program": "basic.p4",
        "actions": [
            {
                "name": "MyIngress.drop",
                "id": 0,
                "runtime_data": [],
                "primitives": [
                    {
                        "op": "mark_to_drop",
                        "parameters": [
                            {"type": "header", "value": "standard_metadata"}
                        ],
                    }
                ],
            },
            {
                "name": "MyIngress.ipv4_forward",
                "id": 1,
                "runtime_data": [
                    {"name": "dstAddr", "bitwidth": 48},
                    {"name": "port", "bitwidth": 9},
                ],
                "primitives": [
                    {
                        "op": "assign",
                        "parameters": [
                            {
                                "type": "field",
                                "value": ["ethernet", "dstAddr"],
                            },
                            {"type": "runtime_data", "value": 0},
                        ],
                    },
                    {
                        "op": "assign",
                        "parameters": [
                            {"type": "field", "value": ["ipv4", "ttl"]},
                            {"type": "hexstr", "value": "0x3f"},
                        ],
                    },
                ],
            },
            {
                "name": "NoAction",
                "id": 2,
                "runtime_data": [],
                "primitives": [],
            },
        ],
        "pipelines": [
            {
                "name": "ingress",
                "init_table": "node_2",
                "tables": [
                    {
                        "name": "MyIngress.ipv4_lpm",
                        "id": 0,
                        "key": [
                            {
                                "match_type": "lpm",
                                "target": ["ipv4", "dstAddr"],
                            }
                        ],
                        "max_size": 1024,
                        "actions": [
                            "MyIngress.ipv4_forward",
                            "MyIngress.drop",
                            "NoAction",
                        ],
                        "next_tables": {
                            "MyIngress.ipv4_forward": "MyIngress.acl",
                            "MyIngress.drop": None,
                            "NoAction": "MyIngress.acl",
                        },
                        "default_entry": {
                            "action_id": 2,
                            "action_const": False,
                        },
                    },
                    {
                        "name": "MyIngress.acl",
                        "id": 1,
                        "key": [
                            {
                                "match_type": "ternary",
                                "target": ["ipv4", "srcAddr"],
                            }
                        ],
                        "max_size": 512,
                        "actions": ["MyIngress.drop", "NoAction"],
                        "next_tables": {
                            "MyIngress.drop": None,
                            "NoAction": None,
                        },
                        "default_entry": {"action_id": 2},
                    },
                ],
                "conditionals": [
                    {
                        "name": "node_2",
                        "expression": {
                            "type": "expression",
                            "value": {
                                "op": "==",
                                "left": {
                                    "type": "field",
                                    "value": ["ethernet", "etherType"],
                                },
                                "right": {
                                    "type": "hexstr",
                                    "value": "0x800",
                                },
                            },
                        },
                        "true_next": "MyIngress.ipv4_lpm",
                        "false_next": None,
                    }
                ],
            }
        ],
    }


class TestImport:
    def test_structure(self):
        program = from_bmv2_json(basic_bmv2())
        assert program.root == "node_2"
        assert set(program.nodes) == {
            "node_2",
            "MyIngress.ipv4_lpm",
            "MyIngress.acl",
        }

    def test_match_types(self):
        program = from_bmv2_json(basic_bmv2())
        lpm = program.table("MyIngress.ipv4_lpm")
        assert lpm.keys[0].match_type is MatchType.LPM
        assert lpm.keys[0].field == "ipv4.dstAddr"
        acl = program.table("MyIngress.acl")
        assert acl.keys[0].match_type is MatchType.TERNARY

    def test_action_conversion(self):
        program = from_bmv2_json(basic_bmv2())
        forward = program.table("MyIngress.ipv4_lpm").actions[
            "MyIngress.ipv4_forward"
        ]
        ops = [p.op for p in forward.primitives]
        assert ops == ["set_field", "set_field"]
        assert forward.primitives[0].args == (
            "ethernet.dstAddr",
            Param(0),
        )
        assert forward.primitives[1].args == ("ipv4.ttl", 0x3F)
        drop = program.table("MyIngress.acl").actions["MyIngress.drop"]
        assert drop.drops

    def test_default_action_from_default_entry(self):
        program = from_bmv2_json(basic_bmv2())
        assert (
            program.table("MyIngress.ipv4_lpm").default_action
            == "NoAction"
        )

    def test_conditional(self):
        program = from_bmv2_json(basic_bmv2())
        node = program.node("node_2")
        assert node.condition.field == "ethernet.etherType"
        assert node.condition.op == "eq"
        assert node.condition.value == 0x800
        assert node.true_next == "MyIngress.ipv4_lpm"

    def test_loads_and_detection(self):
        text = json.dumps(basic_bmv2())
        program = loads_bmv2(text)
        assert len(program) == 3
        assert looks_like_bmv2(basic_bmv2())
        assert not looks_like_bmv2({"nodes": []})

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(IrError):
            from_bmv2_json(basic_bmv2(), pipeline_name="egress")

    def test_empty_rejected(self):
        with pytest.raises(IrError):
            from_bmv2_json({})


class TestImportedProgramRuns:
    def test_optimizes_and_executes(self):
        """The imported program goes through the full Pipeleon stack."""
        from repro.core import Deployment, Pipeleon
        from repro.ir.entries import LpmValue, TableEntry
        from repro.nic.packet import ipv4, make_packet
        from repro.nic.targets import BLUEFIELD2

        program = from_bmv2_json(basic_bmv2())
        pipeleon = Pipeleon(BLUEFIELD2)
        plan = pipeleon.optimize(program)
        optimized = pipeleon.apply(program, plan).program

        deployment = Deployment(program, BLUEFIELD2)
        deployment.insert_entry(
            "MyIngress.ipv4_lpm",
            TableEntry(
                (LpmValue(ipv4(10, 0, 0, 0), 8),),
                "MyIngress.ipv4_forward",
                (0x112233445566, 3),
            ),
        )
        packet = make_packet(dst=ipv4(10, 1, 2, 3))
        packet.set("ethernet.etherType", 0x800)
        packet.set("ipv4.dstAddr", ipv4(10, 1, 2, 3))
        result = deployment.emulator.process(packet)
        assert "MyIngress.ipv4_lpm" in result.path
        assert packet.get("ethernet.dstAddr") == 0x112233445566
        assert packet.get("ipv4.ttl") == 0x3F
