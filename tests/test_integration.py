"""End-to-end integration tests across the whole stack."""

import pytest

from repro.core import (
    CostModel,
    Deployment,
    Pipeleon,
    PipeleonController,
    ResourceBudget,
    collect_profile,
    uniform_profile,
)
from repro.core.controller import ControllerOptions
from repro.core.search import SearchOptions
from repro.apps import dash_routing, nf_composition
from repro.ir import dumps_program, exact_entry, loads_program
from repro.ir.tables import MatchType
from repro.nic.packet import ipv4, make_packet
from repro.nic.targets import AGILIO_CX, BLUEFIELD2, EMULATED_NIC
from repro.traffic import Scenario, TrafficGenerator, synth_flows


class TestProfileOptimizeRedeployLoop:
    def test_counter_map_round_trip_through_merge(self):
        """Profiles collected on the optimized program describe the
        original program (the §4.1.2 counter-map requirement)."""
        from repro.core.plan import (
            Candidate,
            OptimizationPlan,
            Segment,
        )
        from repro.ir import linear_program

        program = linear_program("p", 4)
        run = tuple(f"p_t{i}" for i in range(4))
        plan = OptimizationPlan(
            candidates=[
                Candidate(
                    pipelet_id="pl_0",
                    run=run,
                    order=run,
                    segments=(
                        Segment("merge", run[:2]),
                        Segment("none", (run[2],)),
                        Segment("none", (run[3],)),
                    ),
                    gain_ns=1.0,
                    memory_bytes=0.0,
                    update_pps=0.0,
                )
            ]
        )
        deployment = Deployment(program, BLUEFIELD2, plan=plan)
        deployment.insert_entry("p_t0", exact_entry(1, "p_t0_a0"))
        deployment.insert_entry("p_t1", exact_entry(2, "p_t1_a0"))
        # Half the traffic hits the merged pair, half misses.
        hit = make_packet(extra={"ipv4.f0": 1, "ipv4.f1": 2})
        miss = make_packet(extra={"ipv4.f0": 9, "ipv4.f1": 9})
        for _ in range(25):
            deployment.emulator.process(hit.clone())
            deployment.emulator.process(miss.clone())
        profile = deployment.profile()
        table = program.table("p_t2")
        # Downstream tables saw every packet regardless of the merge.
        assert profile.action_prob(table, "p_t2_a1") == 1.0
        # The merged cache reports its hit rate.
        merged_name = "merged__p_t0__p_t1"
        assert profile.cache_hit_rates[merged_name] == pytest.approx(
            0.5, abs=0.05
        )

    def test_dash_program_full_loop_on_agilio(self):
        program = dash_routing.build_program()
        controller = PipeleonController(
            program,
            AGILIO_CX,
            budget=ResourceBudget(memory_bytes=8e6, update_pps=1e4),
            search=SearchOptions(k=1.0, max_pipelet_len=10),
            options=ControllerOptions(profile_period_s=2.0),
            native_cache=False,
        )
        dash_routing.install_base_entries(controller.control_plane)
        controller.clock.advance(10.0)
        flows = synth_flows(32)
        generator = TrafficGenerator(seed=5)
        scenario = Scenario("loop").add_phase(
            "steady",
            6,
            lambda n: generator.stream(flows, n),
        )
        timeline = controller.run_scenario(
            scenario, packets_per_tick=100
        )
        assert controller.reoptimizations >= 1
        # Throughput after optimization is at least the unoptimized
        # steady-state.
        assert timeline[-1].throughput_gbps >= timeline[0].throughput_gbps

    def test_json_source_to_source_deployable(self):
        """Optimized JSON emitted by Pipeleon runs on the emulator and
        forwards identically."""
        program = nf_composition.build_program()
        pipeleon = Pipeleon(
            EMULATED_NIC, model=CostModel.for_target(EMULATED_NIC)
        )
        out_json, _plan = pipeleon.optimize_json(
            dumps_program(program)
        )
        optimized = loads_program(out_json)

        def outcomes(prog):
            deployment = Deployment(
                prog, EMULATED_NIC, native_cache=False
            )
            nf_composition.install_base_entries(
                deployment.control_plane
            )
            results = []
            for tos in (0, 1, 2):
                packet = make_packet(
                    dst=ipv4(192, 168, 0, 9),
                    extra={"ipv4.tos": tos},
                )
                deployment.emulator.process(packet)
                results.append((packet.dropped, packet.egress_port))
            return results

        assert outcomes(optimized) == outcomes(program)


class TestHeterogeneousEndToEnd:
    def test_partition_copy_and_run(self):
        from repro.apps import migration

        for n_copies in (0, 2):
            program = migration.partitioned_program(4, n_copies)
            deployment = Deployment(program, EMULATED_NIC)
            deployment.insert_entry(
                "cpu0", exact_entry(7, "cpu0_a0")
            )
            stats = deployment.run(
                [make_packet() for _ in range(10)]
            )
            assert stats.packets == 10
            assert stats.migrations > 0

    def test_navigation_state_restored(self):
        """Packets resume at the right table after migrating."""
        from repro.apps import migration

        program = migration.partitioned_program(3, 0)
        deployment = Deployment(
            program, EMULATED_NIC, instrument=False
        )
        result = deployment.emulator.process(make_packet())
        tables_seen = [
            n
            for n in result.path
            if n.startswith(("asic", "cpu")) and "__copy" not in n
        ]
        assert tables_seen == [
            "asic0", "cpu0", "asic1", "cpu1", "asic2", "cpu2",
        ]


class TestBudgetsEndToEnd:
    def test_zero_budget_means_reorder_only(self):
        from repro.ir import linear_program

        program = linear_program("p", 6, MatchType.TERNARY)
        pipeleon = Pipeleon(
            BLUEFIELD2,
            budget=ResourceBudget(memory_bytes=0.0, update_pps=0.0),
        )
        plan = pipeleon.optimize(program)
        for candidate in plan.candidates:
            assert all(s.op == "none" for s in candidate.segments)

    def test_memory_budget_limits_cache_count(self):
        from repro.ir import linear_program

        program = linear_program("p", 12, MatchType.TERNARY)
        small = Pipeleon(
            BLUEFIELD2,
            budget=ResourceBudget(memory_bytes=70000),
            search=SearchOptions(k=1.0, max_pipelet_len=3),
        ).optimize(program)
        large = Pipeleon(
            BLUEFIELD2,
            budget=ResourceBudget(memory_bytes=1e7),
            search=SearchOptions(k=1.0, max_pipelet_len=3),
        ).optimize(program)
        assert large.total_gain_ns >= small.total_gain_ns
        assert small.total_memory_bytes <= 70000
