"""Tests for table dependency analysis (reordering safety)."""

from repro.ir.actions import (
    Action,
    drop_action,
    noop_action,
    prim,
)
from repro.ir.dependency import (
    can_swap,
    dependency_graph,
    depends_on,
    movable_to_front,
    order_is_valid,
    valid_orders,
)
from repro.ir.tables import MatchKey, TableNode


def table(name, key_field, actions):
    action_map = {a.name: a for a in actions}
    return TableNode(
        name=name,
        keys=(MatchKey(key_field),),
        actions=action_map,
        default_action=actions[-1].name,
        next_map={a.name: None for a in actions},
    )


def noop_table(name, key_field):
    return table(name, key_field, [noop_action(f"{name}_a")])


def writer_table(name, key_field, written):
    return table(
        name,
        key_field,
        [
            Action(f"{name}_w", (prim("set_field", written, 1),)),
            noop_action(f"{name}_n"),
        ],
    )


def acl_table(name, key_field):
    return table(
        name,
        key_field,
        [drop_action(f"{name}_deny"), noop_action(f"{name}_permit")],
    )


class TestDependsOn:
    def test_independent_tables(self):
        assert not depends_on(noop_table("a", "f1"), noop_table("b", "f2"))

    def test_true_dependency(self):
        first = writer_table("a", "f1", "f2")
        second = noop_table("b", "f2")  # matches on f2
        assert depends_on(first, second)

    def test_anti_dependency(self):
        first = noop_table("a", "f2")
        second = writer_table("b", "f1", "f2")
        assert depends_on(first, second)

    def test_output_dependency(self):
        first = writer_table("a", "f1", "shared")
        second = writer_table("b", "f2", "shared")
        assert depends_on(first, second)

    def test_drop_writes_commute(self):
        """Two ACLs both 'write' the drop decision but can be swapped."""
        assert can_swap(acl_table("a", "f1"), acl_table("b", "f2"))

    def test_acl_vs_writer_independent(self):
        assert can_swap(acl_table("a", "f1"), writer_table("b", "f2", "f3"))

    def test_same_key_field_is_fine(self):
        """Reading the same field twice creates no dependency."""
        assert can_swap(noop_table("a", "f"), noop_table("b", "f"))


class TestOrders:
    def test_dependency_graph_edges(self):
        a = writer_table("a", "fa", "x")
        b = noop_table("b", "x")
        graph = dependency_graph([a, b])
        assert ("a", "b") in graph.edges

    def test_valid_orders_yields_identity_first(self):
        tables = [noop_table(n, f"f{n}") for n in "abc"]
        orders = list(valid_orders(tables))
        assert orders[0] == ("a", "b", "c")
        assert len(orders) == 6  # all permutations, all independent

    def test_valid_orders_respects_dependency(self):
        a = writer_table("a", "fa", "x")
        b = noop_table("b", "x")
        c = noop_table("c", "fc")
        orders = list(valid_orders([a, b, c]))
        for order in orders:
            assert order.index("a") < order.index("b")

    def test_valid_orders_limit(self):
        tables = [noop_table(f"t{i}", f"f{i}") for i in range(5)]
        orders = list(valid_orders(tables, limit=7))
        assert len(orders) == 7

    def test_order_is_valid(self):
        a = writer_table("a", "fa", "x")
        b = noop_table("b", "x")
        assert order_is_valid([a, b], ["a", "b"])
        assert not order_is_valid([a, b], ["b", "a"])
        assert not order_is_valid([a, b], ["a"])  # missing table


class TestMovableToFront:
    def test_hoists_as_far_as_allowed(self):
        a = noop_table("a", "fa")
        b = noop_table("b", "fb")
        c = acl_table("c", "fc")
        assert movable_to_front([a, b, c], "c") == ("c", "a", "b")

    def test_blocked_by_dependency(self):
        a = writer_table("a", "fa", "x")
        b = noop_table("b", "x")
        c = noop_table("c", "fc")
        # b can't move past a (a writes b's key).
        assert movable_to_front([a, b, c], "b") is None

    def test_partial_hoist(self):
        a = noop_table("a", "fa")
        b = writer_table("b", "fb", "x")
        c = noop_table("c", "x")  # depends on b
        # c can't pass b, and there's nothing before b to pass.
        assert movable_to_front([a, b, c], "c") is None

    def test_unknown_table(self):
        assert movable_to_front([noop_table("a", "f")], "zzz") is None
