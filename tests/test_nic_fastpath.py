"""Differential tests: compiled fast path vs. the reference interpreter.

The fast-path replay engine is only allowed to exist because it is
bit-identical to ``NicEmulator.process`` — same results, same counter
banks, same cache contents and stats, same per-pool busy time. These
tests replay identical traffic through both engines (on twin
deployments, so neither run perturbs the other's caches or counters)
and compare everything observable.
"""

import pytest

from repro.apps import (
    acl_chain,
    dash_routing,
    l2l3_acl,
    load_balancer,
    migration,
    nf_composition,
)
from repro.core import Deployment, Pipeleon
from repro.errors import EmulationError
from repro.ir import exact_entry, linear_program
from repro.nic.emulator import NicEmulator
from repro.nic.packet import Packet, PacketPool, make_packet
from repro.nic.stats import PacketResultPool, RunStats
from repro.nic.targets import AGILIO_CX, BLUEFIELD2, EMULATED_NIC
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator

#: The five example applications plus the migration benchmark (which
#: exercises navigation/migration nodes the others don't).
APPS = {
    "l2l3_acl": (l2l3_acl.build_program, l2l3_acl.install_base_entries),
    "acl_chain": (
        acl_chain.build_program,
        acl_chain.install_acl_entries,
    ),
    "dash_routing": (
        dash_routing.build_program,
        dash_routing.install_base_entries,
    ),
    "load_balancer": (
        load_balancer.build_program,
        load_balancer.install_base_entries,
    ),
    "nf_composition": (
        nf_composition.build_program,
        nf_composition.install_base_entries,
    ),
    "migration": (migration.build_program, lambda control_plane: None),
}

TARGETS = [BLUEFIELD2, AGILIO_CX, EMULATED_NIC]


def app_packets(seed: int, n: int = 300) -> list[Packet]:
    generator = TrafficGenerator(seed)
    flows = synth_flows(48) + synth_flows(16, dport=6666)
    return list(generator.stream(flows, n, locality="zipf"))


def stats_fingerprint(stats: RunStats) -> tuple:
    return (
        stats.packets,
        stats.dropped,
        stats.migrations,
        stats.total_latency_ns,
        stats.total_bytes,
        stats._latencies,
        stats._busy_ns,
    )


def make_twin_deployments(app: str, target, optimize: bool = False):
    build, install = APPS[app]
    deployments = []
    for _ in range(2):
        program = build()
        plan = Pipeleon(target).optimize(program) if optimize else None
        deployment = Deployment(program, target, plan=plan)
        install(deployment.control_plane)
        deployments.append(deployment)
    return deployments


def assert_emulators_identical(em_a: NicEmulator, em_b: NicEmulator):
    assert em_a.counters.snapshot() == em_b.counters.snapshot()
    assert em_a.explicit_counters == em_b.explicit_counters
    for name, cache in em_a.flow_caches.items():
        other = em_b.flow_caches[name]
        assert dict(cache._store) == dict(other._store)
        assert (cache.stats.hits, cache.stats.misses) == (
            other.stats.hits,
            other.stats.misses,
        )
        assert cache.stats.insertions == other.stats.insertions
    if em_a.native_cache is not None:
        assert dict(em_a.native_cache._store) == dict(
            em_b.native_cache._store
        )
        native_a, native_b = em_a.native_cache, em_b.native_cache
        assert (native_a.stats.hits, native_a.stats.misses) == (
            native_b.stats.hits,
            native_b.stats.misses,
        )


class TestDifferentialApps:
    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize(
        "target", TARGETS, ids=lambda t: t.name
    )
    def test_per_packet_results_identical(self, app, target):
        interp, fast = make_twin_deployments(app, target)
        for reference, replayed in zip(
            app_packets(7), app_packets(7)
        ):
            expected = interp.emulator.process(reference)
            actual = fast.emulator.replay_one(replayed)
            assert actual == expected
            assert replayed.fields == reference.fields
            assert replayed.metadata == reference.metadata
        assert_emulators_identical(interp.emulator, fast.emulator)

    @pytest.mark.parametrize("app", sorted(APPS))
    def test_optimized_batch_replay_identical(self, app):
        target = EMULATED_NIC
        interp, fast = make_twin_deployments(app, target, optimize=True)
        reference = interp.run(app_packets(11), offered_pps=1e6)
        replayed = fast.replay(
            app_packets(11), offered_pps=1e6, batch=37
        )
        assert stats_fingerprint(replayed) == stats_fingerprint(
            reference
        )
        assert_emulators_identical(interp.emulator, fast.emulator)


class TestRecompilation:
    def test_entry_update_triggers_recompile(self):
        program = linear_program("p", 2)
        emulator = NicEmulator(program, BLUEFIELD2)
        first = emulator.fastpath
        assert emulator.fastpath is first  # cached while fresh
        emulator.set_table_entries(
            "p_t0", [exact_entry((1,), "p_t0_a0")]
        )
        assert first.stale()
        assert emulator.fastpath is not first

    def test_results_track_entry_updates(self):
        interp, fast = make_twin_deployments("l2l3_acl", BLUEFIELD2)
        packets_a = app_packets(3, n=50)
        packets_b = app_packets(3, n=50)
        for reference, replayed in zip(packets_a, packets_b):
            assert fast.emulator.replay_one(
                replayed
            ) == interp.emulator.process(reference)
        # Deny a new port; both engines must agree on the post-update
        # behaviour (the fast path recompiles transparently).
        from repro.ir.entries import ExactValue, TableEntry

        for deployment in (interp, fast):
            deployment.insert_entry(
                "l2l3_acl",
                TableEntry((ExactValue(80),), "acl_deny"),
            )
        for reference, replayed in zip(
            app_packets(5, n=50), app_packets(5, n=50)
        ):
            assert fast.emulator.replay_one(
                replayed
            ) == interp.emulator.process(reference)

    def test_carried_cache_detected_as_stale(self):
        program = l2l3_acl.build_program()
        target = EMULATED_NIC
        plan = Pipeleon(target).optimize(program)
        deployment = Deployment(program, target, plan=plan)
        l2l3_acl.install_base_entries(deployment.control_plane)
        assert deployment.emulator.flow_caches
        engine = deployment.emulator.fastpath
        # Swap a cache object (what warm-carry redeployment does).
        name = next(iter(deployment.emulator.flow_caches))
        cache = deployment.emulator.flow_caches[name]
        deployment.emulator.flow_caches[name] = type(cache)(
            capacity=cache.capacity
        )
        assert engine.stale()
        assert deployment.emulator.fastpath is not engine

    def test_cycle_guard_matches_interpreter(self):
        program = linear_program("cyc", 2)
        tail = program.table("cyc_t1")
        for action in tail.next_map:
            tail.next_map[action] = "cyc_t0"
        emulator = NicEmulator(program, BLUEFIELD2, max_steps=50)
        with pytest.raises(EmulationError, match="exceeded 50 steps"):
            emulator.replay_one(make_packet())


class TestCacheInvalidation:
    def _deployed(self, target=EMULATED_NIC):
        program = l2l3_acl.build_program()
        plan = Pipeleon(target).optimize(program)
        deployment = Deployment(program, target, plan=plan)
        l2l3_acl.install_base_entries(deployment.control_plane)
        return deployment

    def test_reverse_index_matches_covers(self):
        deployment = self._deployed()
        emulator = deployment.emulator
        for name in emulator.flow_caches:
            info = emulator.program.table(name).cache_info
            for covered in info.covers:
                assert name in emulator._cache_cover_index[covered]

    def test_covered_update_invalidates(self):
        deployment = self._deployed()
        emulator = deployment.emulator
        name = next(iter(emulator.flow_caches))
        cache = emulator.flow_caches[name]
        covered = next(
            iter(emulator.program.table(name).cache_info.covers)
        )
        deployment.replay(app_packets(1, n=100))
        assert len(cache) > 0
        assert emulator.invalidate_caches_covering(covered) == [name]
        assert len(cache) == 0

    def test_uncovered_update_leaves_native_cache_warm(self):
        program = l2l3_acl.build_program()
        emulator = NicEmulator(program, AGILIO_CX, native_cache=True)
        emulator.replay(app_packets(2, n=100))
        warm = len(emulator.native_cache)
        assert warm > 0
        # A table this program doesn't read must not flush it...
        assert emulator.invalidate_caches_covering("other_prog_t") == []
        assert len(emulator.native_cache) == warm
        # ...but a datapath table must.
        emulator.invalidate_caches_covering(program.root)
        assert len(emulator.native_cache) == 0


class TestPooling:
    def test_packet_pool_reuses(self):
        pool = PacketPool()
        generator = TrafficGenerator(0)
        flows = synth_flows(4)
        emulator = NicEmulator(
            l2l3_acl.build_program(), BLUEFIELD2, native_cache=False
        )
        emulator.replay(
            generator.stream(flows, 200, pool=pool),
            batch=16,
            packet_pool=pool,
        )
        assert pool.allocated <= 16
        assert pool.reused >= 200 - pool.allocated

    def test_pooled_stream_matches_fresh(self):
        pool = PacketPool()
        flows = synth_flows(8)
        fresh = list(TrafficGenerator(9).stream(flows, 60))
        pooled = []
        for packet in TrafficGenerator(9).stream(
            flows, 60, pool=pool
        ):
            pooled.append(
                (dict(packet.fields), packet.size_bytes)
            )
            pool.release(packet)
        assert pooled == [
            (dict(p.fields), p.size_bytes) for p in fresh
        ]

    def test_result_pool_round_trip(self):
        pool = PacketResultPool(prealloc=1)
        emulator = NicEmulator(
            l2l3_acl.build_program(), BLUEFIELD2, native_cache=False
        )
        recycled = pool.acquire()
        filled = emulator.replay_one(make_packet(), into=recycled)
        assert filled is recycled
        assert filled == emulator.process(make_packet())
        pool.release(filled)
        assert pool.acquire() is filled
