"""Property tests: merge() is exact under any split of a stream.

The sharded engine's correctness rests on one algebraic fact: for
RunStats, CounterBank and CacheStats, recording a packet stream in one
place and recording an arbitrary partition of it in k places then
merging produce identical aggregates. Hypothesis drives random streams
and random partitions at both; RuntimeProfile's support-weighted merge
is checked against the pooled-counts profile it must reproduce.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiling import (
    RuntimeProfile,
    profile_from_counts,
    profile_from_json,
    profile_to_json,
)
from repro.ir import linear_program
from repro.ir.tables import Pipeline
from repro.nic.counters import CounterBank, action_counter
from repro.nic.flow_cache import CacheStats
from repro.nic.stats import RunStats

# One recorded packet: latency, size, dropped, migrations, asic, cpu.
packet_samples = st.tuples(
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    st.integers(64, 1500),
    st.booleans(),
    st.integers(0, 3),
    st.one_of(
        st.none(),
        st.floats(0.0, 1e5, allow_nan=False, allow_infinity=False),
    ),
    st.one_of(
        st.none(),
        st.floats(0.0, 1e5, allow_nan=False, allow_infinity=False),
    ),
)

streams = st.lists(packet_samples, max_size=60)


def record_stream(stats: RunStats, stream) -> RunStats:
    for latency, size, dropped, migrations, asic, cpu in stream:
        stats.record_fast(latency, size, dropped, migrations, asic, cpu)
    return stats


def stats_fingerprint(stats: RunStats) -> tuple:
    return (
        stats.packets,
        stats.dropped,
        stats.migrations,
        stats.total_bytes,
        stats.total_latency_ns,
        stats._busy_ns,
        stats.mean_latency_ns,
        sorted(stats._latencies),
    )


class TestRunStatsMerge:
    @settings(max_examples=60)
    @given(
        stream=streams,
        assignment=st.lists(st.integers(0, 3), max_size=60),
    )
    def test_any_split_merges_to_whole(self, stream, assignment):
        whole = record_stream(RunStats(), stream)
        shards = [RunStats() for _ in range(4)]
        for index, sample in enumerate(stream):
            shard = (
                assignment[index] if index < len(assignment) else 0
            )
            record_stream(shards[shard], [sample])
        merged = RunStats()
        for shard in shards:
            merged.merge(shard)
        assert stats_fingerprint(merged) == stats_fingerprint(whole)

    @settings(max_examples=30)
    @given(stream=streams)
    def test_merge_is_order_independent(self, stream):
        half = len(stream) // 2
        left = record_stream(RunStats(), stream[:half])
        right = record_stream(RunStats(), stream[half:])
        forward = RunStats().merge(left).merge(right)
        backward = (
            RunStats()
            .merge(record_stream(RunStats(), stream[half:]))
            .merge(record_stream(RunStats(), stream[:half]))
        )
        # fsum totals are exactly rounded, hence permutation-invariant.
        assert forward.total_latency_ns == backward.total_latency_ns
        assert forward._busy_ns == backward._busy_ns

    def test_lost_packets_accumulate_across_merges(self):
        # Degraded-mode accounting: lost_packets is an integer sum like
        # every other aggregate, and tolerates older worker pickles
        # that predate the field.
        left, right = RunStats(), RunStats()
        left.lost_packets = 32
        right.lost_packets = 7
        merged = RunStats().merge(left).merge(right)
        assert merged.lost_packets == 39
        legacy = RunStats()
        del legacy.lost_packets
        assert merged.merge(legacy).lost_packets == 39

    def test_lost_packets_in_summary_only_when_nonzero(self):
        stats = RunStats()
        assert "lost_packets" not in stats.summary()
        stats.lost_packets = 5
        assert stats.summary()["lost_packets"] == 5.0

    def test_merge_after_read_invalidates_memo(self):
        stats = record_stream(
            RunStats(), [(100.0, 512, False, 0, 10.0, None)]
        )
        assert stats.total_latency_ns == 100.0  # populate memo
        stats.merge(
            record_stream(
                RunStats(), [(50.0, 512, False, 0, None, 5.0)]
            )
        )
        assert stats.total_latency_ns == 150.0
        assert stats._busy_ns[Pipeline.ASIC] == 10.0
        assert stats._busy_ns[Pipeline.CPU] == 5.0


KEYS = [action_counter(f"t{i}", f"a{j}") for i in range(3) for j in range(2)]


class TestCounterBankMerge:
    @settings(max_examples=60)
    @given(
        bumps=st.lists(
            st.tuples(
                st.integers(0, len(KEYS) - 1), st.integers(64, 1500)
            ),
            max_size=80,
        ),
        assignment=st.lists(st.integers(0, 3), max_size=80),
    )
    def test_any_split_merges_to_whole(self, bumps, assignment):
        whole = CounterBank()
        shards = [CounterBank() for _ in range(4)]
        for index, (key_index, size) in enumerate(bumps):
            whole.begin_packet()
            whole.bump(KEYS[key_index], size)
            shard = shards[
                assignment[index] if index < len(assignment) else 0
            ]
            shard.begin_packet()
            shard.bump(KEYS[key_index], size)
        merged = CounterBank()
        for shard in shards:
            merged.merge(shard)
        assert merged.snapshot() == whole.snapshot()
        assert merged._packet_index == whole._packet_index

    def test_stride_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sample stride"):
            CounterBank(1).merge(CounterBank(2))

    def test_byte_counts_merge(self):
        a, b = CounterBank(), CounterBank()
        a.bump(KEYS[0], 100)
        b.bump(KEYS[0], 200)
        a.merge(b)
        assert a._counters[KEYS[0]].bytes == 300


class TestCacheStatsMerge:
    @settings(max_examples=40)
    @given(
        parts=st.lists(
            st.tuples(*[st.integers(0, 50)] * 6), max_size=6
        )
    )
    def test_merge_sums_fields(self, parts):
        merged = CacheStats()
        for hits, misses, ins, rej, ev, inv in parts:
            merged.merge(
                CacheStats(hits, misses, ins, rej, ev, inv)
            )
        assert merged.hits == sum(p[0] for p in parts)
        assert merged.misses == sum(p[1] for p in parts)
        assert merged.insertions == sum(p[2] for p in parts)
        assert merged.rejected_insertions == sum(p[3] for p in parts)
        assert merged.evictions == sum(p[4] for p in parts)
        assert merged.invalidations == sum(p[5] for p in parts)
        assert merged.lookups == merged.hits + merged.misses


PROGRAM = linear_program("mp", 3)

count_maps = st.dictionaries(
    st.sampled_from(
        [
            action_counter(f"mp_t{i}", f"mp_t{i}_a0")
            for i in range(3)
        ]
        + [
            action_counter(f"mp_t{i}", f"mp_t{i}_miss")
            for i in range(3)
        ]
        + [("branch", "mp_c0", "true"), ("branch", "mp_c0", "false")]
        + [("cache", "mp_cache", "hit"), ("cache", "mp_cache", "miss")]
    ),
    st.integers(0, 1000),
    max_size=12,
)


class TestRuntimeProfileMerge:
    @settings(max_examples=60)
    @given(left=count_maps, right=count_maps)
    def test_merge_equals_pooled_counts(self, left, right):
        pooled = dict(left)
        for key, value in right.items():
            pooled[key] = pooled.get(key, 0) + value
        merged = profile_from_counts(PROGRAM, left).merge(
            profile_from_counts(PROGRAM, right)
        )
        expected = profile_from_counts(PROGRAM, pooled)
        assert set(merged.action_probs) == set(expected.action_probs)
        for table, probs in expected.action_probs.items():
            for action, prob in probs.items():
                assert merged.action_probs[table][
                    action
                ] == pytest.approx(prob, abs=1e-9)
        for branch, prob in expected.branch_probs.items():
            assert merged.branch_probs[branch] == pytest.approx(
                prob, abs=1e-9
            )
        for cache, rate in expected.cache_hit_rates.items():
            assert merged.cache_hit_rates[cache] == pytest.approx(
                rate, abs=1e-9
            )

    def test_zero_count_side_keeps_key_union(self):
        # Regression (hypothesis-found): a shard that saw zero packets
        # for a table used to vanish from the merged action_probs key
        # set — merging profiles then disagreed with profiling pooled
        # counts. Zero-support sides must keep their keys at weight 0.
        key = action_counter("mp_t0", "mp_t0_miss")
        empty = profile_from_counts(PROGRAM, {key: 0})
        busy = profile_from_counts(
            PROGRAM, {action_counter("mp_t0", "mp_t0_a0"): 10}
        )
        for merged in (empty.merge(busy), busy.merge(empty)):
            probs = merged.action_probs["mp_t0"]
            assert probs["mp_t0_miss"] == 0.0
            assert probs["mp_t0_a0"] == pytest.approx(1.0)

    def test_merge_is_associative(self):
        counts = [
            {action_counter("mp_t0", "mp_t0_a0"): 10},
            {
                action_counter("mp_t0", "mp_t0_a0"): 5,
                action_counter("mp_t0", "mp_t0_miss"): 5,
            },
            {action_counter("mp_t0", "mp_t0_miss"): 20},
        ]
        profiles = lambda: [  # noqa: E731
            profile_from_counts(PROGRAM, c) for c in counts
        ]
        a, b, c = profiles()
        left_assoc = a.merge(b).merge(c)
        a2, b2, c2 = profiles()
        right_assoc = a2.merge(b2.merge(c2))
        for table in left_assoc.action_probs:
            for action, prob in left_assoc.action_probs[table].items():
                assert right_assoc.action_probs[table][
                    action
                ] == pytest.approx(prob, abs=1e-12)

    def test_global_facts_merge_by_max_and_loads_sum(self):
        left = RuntimeProfile(
            entry_counts={"t": 10},
            update_rates={"t": 2.0},
            table_m={"t": 3},
            offered_pps=4e5,
        )
        right = RuntimeProfile(
            entry_counts={"t": 12, "u": 1},
            update_rates={"t": 1.0},
            table_m={"t": 5},
            offered_pps=6e5,
        )
        left.merge(right)
        assert left.entry_counts == {"t": 12, "u": 1}
        assert left.update_rates == {"t": 2.0}
        assert left.table_m == {"t": 5}
        assert left.offered_pps == pytest.approx(1e6)

    def test_support_round_trips_through_json(self):
        profile = profile_from_counts(
            PROGRAM, {action_counter("mp_t0", "mp_t0_a0"): 7}
        )
        restored = profile_from_json(profile_to_json(profile))
        assert restored.action_support == profile.action_support
        assert restored.branch_support == profile.branch_support
        assert restored.cache_support == profile.cache_support

    def test_copy_preserves_support(self):
        profile = profile_from_counts(
            PROGRAM, {action_counter("mp_t0", "mp_t0_a0"): 7}
        )
        clone = profile.copy()
        assert clone.action_support == profile.action_support
        clone.action_support["mp_t0"] = 99.0
        assert profile.action_support["mp_t0"] == 7.0
