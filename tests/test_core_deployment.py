"""Tests for plan application and the deployment layer."""

import pytest

from repro.core import (
    CostModel,
    Deployment,
    apply_plan,
    optimize,
    partition,
    uniform_profile,
)
from repro.core.plan import (
    Candidate,
    OptimizationPlan,
    ResourceBudget,
    Segment,
)
from repro.ir import exact_entry, linear_program, validate_program
from repro.ir.entries import ExactValue, TableEntry
from repro.ir.tables import MatchType
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2


def cache_plan(run, covers):
    return OptimizationPlan(
        candidates=[
            Candidate(
                pipelet_id="pl_0",
                run=tuple(run),
                order=tuple(run),
                segments=(
                    Segment("cache", tuple(covers)),
                ),
                gain_ns=1.0,
                memory_bytes=0.0,
                update_pps=0.0,
            )
        ]
    )


def merge_plan(run, covers):
    plan = cache_plan(run, covers)
    candidate = plan.candidates[0]
    plan.candidates[0] = Candidate(
        pipelet_id=candidate.pipelet_id,
        run=candidate.run,
        order=candidate.order,
        segments=(Segment("merge", tuple(covers)),),
        gain_ns=1.0,
        memory_bytes=0.0,
        update_pps=0.0,
    )
    return plan


class TestApplyPlan:
    def test_noop_plan_clones(self, chain5):
        plan = OptimizationPlan()
        result = apply_plan(chain5, plan)
        assert result.program is not chain5
        assert result.program.topological_order() == (
            chain5.topological_order()
        )

    def test_reorder_then_cache_compose(self, chain5):
        run = tuple(f"chain5_t{i}" for i in range(5))
        order = (run[2], run[0], run[1], run[3], run[4])
        plan = OptimizationPlan(
            candidates=[
                Candidate(
                    pipelet_id="pl_0",
                    run=run,
                    order=order,
                    segments=(
                        Segment("cache", (order[0], order[1])),
                        Segment("none", (order[2],)),
                        Segment("merge", (order[3], order[4])),
                    ),
                    gain_ns=1.0,
                    memory_bytes=0.0,
                    update_pps=0.0,
                )
            ]
        )
        result = apply_plan(chain5, plan)
        validate_program(result.program)
        assert f"cache__{order[0]}__{order[1]}" in result.program
        assert f"merged__{order[3]}__{order[4]}" in result.program

    def test_optimized_plan_applies(self):
        program = linear_program("p", 6, MatchType.TERNARY)
        profile = uniform_profile(program)
        model = CostModel.for_target(BLUEFIELD2)
        plan = optimize(program, profile, model)
        result = apply_plan(program, plan)
        validate_program(result.program)


class TestDeploymentDirect:
    def test_entries_materialize(self, chain5):
        deployment = Deployment(chain5, BLUEFIELD2)
        entry = exact_entry(5, "chain5_t0_a0")
        deployment.insert_entry("chain5_t0", entry)
        runtime = deployment.emulator.runtime_tables["chain5_t0"]
        assert len(runtime) == 1

    def test_delete_propagates(self, chain5):
        deployment = Deployment(chain5, BLUEFIELD2)
        entry = exact_entry(5, "chain5_t0_a0")
        deployment.insert_entry("chain5_t0", entry)
        deployment.delete_entry("chain5_t0", entry.entry_id)
        assert len(deployment.emulator.runtime_tables["chain5_t0"]) == 0

    def test_profile_collection(self, chain5):
        deployment = Deployment(chain5, BLUEFIELD2)
        deployment.run([make_packet() for _ in range(10)])
        profile = deployment.profile()
        table = chain5.table("chain5_t0")
        assert profile.action_prob(table, "chain5_t0_a1") == 1.0


class TestDeploymentWithCache:
    def test_cache_invalidated_on_covered_update(self, chain5):
        plan = cache_plan(
            [f"chain5_t{i}" for i in range(5)],
            ["chain5_t1", "chain5_t2"],
        )
        deployment = Deployment(chain5, BLUEFIELD2, plan=plan)
        deployment.run([make_packet() for _ in range(5)])
        cache = deployment.emulator.flow_caches[
            "cache__chain5_t1__chain5_t2"
        ]
        assert len(cache) == 1
        deployment.insert_entry(
            "chain5_t1", exact_entry(9, "chain5_t1_a0")
        )
        assert len(cache) == 0  # whole-cache invalidation

    def test_update_of_uncovered_table_keeps_cache(self, chain5):
        plan = cache_plan(
            [f"chain5_t{i}" for i in range(5)],
            ["chain5_t1", "chain5_t2"],
        )
        deployment = Deployment(chain5, BLUEFIELD2, plan=plan)
        deployment.run([make_packet() for _ in range(5)])
        cache = deployment.emulator.flow_caches[
            "cache__chain5_t1__chain5_t2"
        ]
        deployment.insert_entry(
            "chain5_t4", exact_entry(9, "chain5_t4_a0")
        )
        assert len(cache) == 1

    def test_cache_hit_rates_reported(self, chain5):
        plan = cache_plan(
            [f"chain5_t{i}" for i in range(5)], ["chain5_t0"]
        )
        deployment = Deployment(chain5, BLUEFIELD2, plan=plan)
        deployment.run([make_packet() for _ in range(10)])
        rates = deployment.cache_hit_rates()
        assert rates["cache__chain5_t0"] == pytest.approx(0.9)


class TestDeploymentWithMerge:
    def make_deployment(self, chain5):
        plan = merge_plan(
            [f"chain5_t{i}" for i in range(5)],
            ["chain5_t1", "chain5_t2"],
        )
        return Deployment(chain5, BLUEFIELD2, plan=plan)

    def test_merged_entries_cross_product(self, chain5):
        deployment = self.make_deployment(chain5)
        for value in (1, 2):
            deployment.insert_entry(
                "chain5_t1", exact_entry(value, "chain5_t1_a0")
            )
        for value in (10, 20, 30):
            deployment.insert_entry(
                "chain5_t2", exact_entry(value, "chain5_t2_a0")
            )
        merged = deployment.emulator.runtime_tables[
            "merged__chain5_t1__chain5_t2"
        ]
        assert len(merged) == 6  # 2 x 3

    def test_merged_hit_executes_both_actions(self, chain5):
        deployment = self.make_deployment(chain5)
        deployment.insert_entry(
            "chain5_t1", exact_entry(1, "chain5_t1_a0")
        )
        deployment.insert_entry(
            "chain5_t2", exact_entry(2, "chain5_t2_a0")
        )
        packet = make_packet(extra={"ipv4.f1": 1, "ipv4.f2": 2})
        result = deployment.emulator.process(packet)
        merged_name = "merged__chain5_t1__chain5_t2"
        assert merged_name in result.path
        assert "chain5_t1" not in result.path

    def test_merged_miss_falls_back(self, chain5):
        deployment = self.make_deployment(chain5)
        deployment.insert_entry(
            "chain5_t1", exact_entry(1, "chain5_t1_a0")
        )
        packet = make_packet(extra={"ipv4.f1": 77, "ipv4.f2": 88})
        result = deployment.emulator.process(packet)
        assert "chain5_t1" in result.path
        assert "chain5_t2" in result.path

    def test_update_amplification_tracked(self, chain5):
        deployment = self.make_deployment(chain5)
        for value in (1, 2, 3):
            deployment.insert_entry(
                "chain5_t1", exact_entry(value, "chain5_t1_a0")
            )
        deployment.insert_entry(
            "chain5_t2", exact_entry(10, "chain5_t2_a0")
        )
        deployment.insert_entry(
            "chain5_t2", exact_entry(20, "chain5_t2_a0")
        )
        merged_name = "merged__chain5_t1__chain5_t2"
        # 5 control-plane updates materialised 3 + 6 = 9 merged entries:
        # the I(T_A)*N(T_B) amplification of §3.2.3.
        assert deployment.materialized_updates[merged_name] == 9
