"""The zero-copy shared-memory transport (DESIGN.md §13).

Three layers of proof:

* **Ring mechanics** — hypothesis drives random push/peek/advance
  schedules against a plain deque model: wraparound, full/empty
  boundaries and variable payload sizes all behave identically, and a
  corrupted slot surfaces as :class:`TornRecordError`, never as a
  silently decoded batch.
* **Codec** — the SoA batch encoding round-trips bit-exactly (values,
  sizes, timestamps, field names) and refuses exactly the batches the
  pipe fallback exists for.
* **Transport semantics** — a sharded replay over shm is bit-identical
  to single-core, sends **zero** pickled batch messages over the pipe
  (the acceptance criterion: ``pickle.dumps`` is monkeypatched to raise
  mid-replay), streams per-packet outcome columns to ``outcome_sink``,
  cleans up every ``/dev/shm`` segment, and — the supervision bugfix —
  a worker slowly draining a full ring resets the hung deadline via its
  consumer cursor while the identical scenario over the pipe transport
  is (correctly) classified hung.
"""

import pickle
from collections import deque
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import EXAMPLE_APPS
from repro.core import ShardedDeployment
from repro.errors import EmulationError
from repro.nic import shm_transport
from repro.nic.faults import FaultPlan, FaultSpec
from repro.nic.packet import Packet, make_packet
from repro.nic.sharding import ShardedEmulator, SupervisorOptions
from repro.nic.targets import EMULATED_NIC
from repro.nic.shm_transport import (
    BATCH_RECORD,
    COMMIT_MAGIC,
    DEFAULT_RING_SLOTS,
    RECORD_HEADER_BYTES,
    ShardChannel,
    ShmRing,
    TornRecordError,
    batch_record_bytes,
    data_slot_bytes,
    decode_names,
    read_batch_record,
    read_result_record,
    result_slot_bytes,
    soa_encode,
    write_batch_record,
    write_result_record,
)
from repro.telemetry import Telemetry
from tests.test_faults import make_sharded, make_single
from tests.test_nic_sharding import (
    app_packets,
    make_twins,
    stats_fingerprint,
)

SLOTS = 4
PAYLOAD_CAP = 64


def small_ring() -> ShmRing:
    return ShmRing(SLOTS, RECORD_HEADER_BYTES + PAYLOAD_CAP)


# ---------------------------------------------------------------------------
# Ring mechanics
# ---------------------------------------------------------------------------


class TestRingModel:
    """Random schedules against a deque model of an SPSC ring."""

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("push"),
                    st.integers(0, PAYLOAD_CAP),
                    st.integers(0, 255),
                ),
                st.just(("pop",)),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_ring_matches_deque_model(self, ops):
        ring = small_ring()
        try:
            model: deque = deque()
            pushed = 0
            for op in ops:
                if op[0] == "push":
                    _, length, fill = op
                    payload = bytes([fill]) * length

                    def writer(view, payload=payload, length=length):
                        view[:length] = payload

                    ok = ring.try_push(
                        BATCH_RECORD,
                        (length, fill, pushed, 0, 0),
                        length,
                        writer,
                    )
                    # Full/empty boundary: accepted iff a slot is free.
                    assert ok == (len(model) < SLOTS)
                    if ok:
                        model.append((pushed, length, fill))
                        pushed += 1
                else:
                    record = ring.peek()
                    if not model:
                        assert record is None
                        continue
                    index, length, fill = model.popleft()
                    assert record.index == index
                    assert record.kind == BATCH_RECORD
                    assert record.meta == (length, fill, index, 0, 0)
                    assert (
                        bytes(record.payload[:length])
                        == bytes([fill]) * length
                    )
                    del record  # drop payload view before close()
                    ring.advance()
            assert len(ring) == len(model)
            assert ring.free_slots == SLOTS - len(model)
            assert ring.occupancy() == len(model) / SLOTS
        finally:
            ring.close(unlink=True)

    def test_long_wraparound_preserves_every_record(self):
        ring = small_ring()
        try:
            for index in range(50 * SLOTS):
                fill = index % 251

                def writer(view, fill=fill):
                    view[:8] = bytes([fill]) * 8

                assert ring.try_push(
                    BATCH_RECORD, (fill, 0, 0, 0, 0), 8, writer
                )
                record = ring.peek()
                assert record.index == index
                assert bytes(record.payload[:8]) == bytes([fill]) * 8
                del record
                ring.advance()
            assert ring.peek() is None
            assert ring.produced == ring.consumed == 50 * SLOTS
        finally:
            ring.close(unlink=True)

    @pytest.mark.parametrize("word", [0, 7])
    def test_corrupted_header_raises_torn_record(self, word):
        ring = small_ring()
        try:
            assert ring.try_push(
                BATCH_RECORD, (1, 2, 3, 4, 5), 8, lambda view: None
            )
            header = np.ndarray(
                (8,),
                dtype=np.int64,
                buffer=ring._slot(0)[:RECORD_HEADER_BYTES],
            )
            header[word] = header[word] ^ 0x1  # single bit flip
            with pytest.raises(TornRecordError, match="integrity"):
                ring.peek()
            # Repair: peek must succeed again (detection, not poison).
            header[0] = 0
            header[7] = 0 ^ COMMIT_MAGIC
            assert ring.peek() is not None
            del header
        finally:
            ring.close(unlink=True)

    def test_push_validates_payload_and_meta(self):
        ring = small_ring()
        try:
            with pytest.raises(ValueError, match="exceeds slot"):
                ring.try_push(
                    BATCH_RECORD,
                    (0,) * 5,
                    PAYLOAD_CAP + 1,
                    lambda view: None,
                )
            with pytest.raises(ValueError, match="5 int64"):
                ring.try_push(
                    BATCH_RECORD, (1, 2, 3), 8, lambda view: None
                )
        finally:
            ring.close(unlink=True)

    def test_closed_ring_rejects_all_operations(self):
        ring = small_ring()
        ring.close(unlink=True)
        ring.close(unlink=True)  # idempotent
        with pytest.raises(EmulationError, match="closed"):
            ring.try_push(BATCH_RECORD, (0,) * 5, 8, lambda view: None)
        with pytest.raises(EmulationError, match="closed"):
            ring.peek()

    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="slots"):
            ShmRing(0, RECORD_HEADER_BYTES + 8)
        with pytest.raises(ValueError, match="slot_bytes"):
            ShmRing(2, RECORD_HEADER_BYTES)  # no payload room
        with pytest.raises(ValueError, match="slot_bytes"):
            ShmRing(2, RECORD_HEADER_BYTES + 9)  # unaligned


# ---------------------------------------------------------------------------
# SoA codec
# ---------------------------------------------------------------------------


def uniform_packets(n: int = 7) -> list:
    return [
        make_packet(sport=1000 + i, dport=80 + (i % 3)) for i in range(n)
    ]


class TestSoaCodec:
    def test_round_trip_through_ring(self):
        packets = uniform_packets()
        encoded = soa_encode(packets)
        assert encoded is not None
        names, rows, sizes = encoded
        channel = ShardChannel(batch=len(packets))
        try:
            timestamps = [0.5 * i for i in range(len(packets))]
            assert channel.try_push_batch(
                names, rows, sizes, timestamps, pipe_watermark=3
            )
            record = channel.data.peek()
            watermark, blob, values, out_sizes, ts = read_batch_record(
                record
            )
            assert watermark == 3
            assert decode_names(blob) == names
            # Field-major: every field one contiguous int64 row.
            assert values.shape == (len(names), len(packets))
            assert values.flags["C_CONTIGUOUS"]
            np.testing.assert_array_equal(values, rows.T)
            np.testing.assert_array_equal(out_sizes, sizes)
            np.testing.assert_allclose(ts, timestamps)
            for field, row in zip(names, values):
                assert row.tolist() == [
                    p.fields[field] for p in packets
                ]
            del record, values, out_sizes, ts
            channel.data.advance()
        finally:
            channel.close()

    def test_round_trip_without_timestamps(self):
        packets = uniform_packets(3)
        names, rows, sizes = soa_encode(packets)
        channel = ShardChannel(batch=4)
        try:
            assert channel.try_push_batch(
                names, rows, sizes, None, pipe_watermark=0
            )
            record = channel.data.peek()
            _wm, _blob, values, _sizes, ts = read_batch_record(record)
            assert ts is None
            np.testing.assert_array_equal(values, rows.T)
            del record, values, _sizes
            channel.data.advance()
        finally:
            channel.close()

    def test_non_encodable_batches_return_none(self):
        assert soa_encode([]) is None
        tagged = make_packet()
        tagged.metadata["meta.mark"] = 1
        assert soa_encode([tagged]) is None
        dropped = make_packet()
        dropped.dropped = True
        assert soa_encode([dropped]) is None
        routed = make_packet()
        routed.egress_port = 2
        assert soa_encode([make_packet(), routed]) is None
        hetero = [make_packet(), Packet(fields={"weird": 1})]
        assert soa_encode(hetero) is None
        huge = make_packet()
        huge.fields["ipv4.dst"] = 2**70
        assert soa_encode([make_packet(), huge]) is None

    def test_names_blob_memoized_and_decoded(self):
        channel = ShardChannel(batch=2)
        try:
            names = ("a.b", "c.d")
            assert channel.names_blob(names) is channel.names_blob(
                names
            )
            assert decode_names(channel.names_blob(names)) == names
            assert decode_names(b"") == ()
        finally:
            channel.close()

    def test_batch_fits_matches_geometry(self):
        channel = ShardChannel(batch=32)
        try:
            assert channel.batch_fits(32, 5, 64)
            # Far past the sizing assumptions: cannot fit.
            assert not channel.batch_fits(32, 2 * channel.max_fields, 64)
            assert batch_record_bytes(1, 1, 0, False) == 16
            assert data_slot_bytes(32) % 8 == 0
            assert result_slot_bytes(32) % 8 == 0
        finally:
            channel.close()

    def test_result_record_round_trip(self):
        ring = ShmRing(2, result_slot_bytes(4))
        try:
            assert write_result_record(
                ring,
                batch_index=9,
                latencies_ns=[10.0, 20.0, 30.0],
                egress_ports=[1, None, 3],
                dropped=[False, True, False],
                n_packets=3,
            )
            index, lat, egress, drop, n_dropped = read_result_record(
                ring.peek()
            )
            assert index == 9 and n_dropped == 1
            assert lat.tolist() == [10.0, 20.0, 30.0]
            assert egress.tolist() == [1, -1, 3]  # None encodes as -1
            assert drop.tolist() == [0, 1, 0]
            del lat, egress, drop
            ring.advance()
        finally:
            ring.close(unlink=True)


# ---------------------------------------------------------------------------
# Segment lifecycle
# ---------------------------------------------------------------------------


class TestSegmentCleanup:
    def test_channel_close_unlinks_segments(self):
        channel = ShardChannel(batch=8)
        names = [channel.data.name, channel.results.name]
        for name in names:
            assert name in shm_transport._CREATED
        channel.close()
        shm_dir = Path("/dev/shm")
        for name in names:
            assert name not in shm_transport._CREATED
            if shm_dir.is_dir():
                assert not (shm_dir / name).exists()

    def test_fleet_close_leaves_no_segments(self):
        _single, sharded = make_twins("l2l3_acl", 2)
        engine = sharded.emulator
        names = [
            ring.name
            for channel in engine._channels
            for ring in (channel.data, channel.results)
        ]
        sharded.replay(app_packets(2, 100), offered_pps=1e6)
        sharded.close()
        shm_dir = Path("/dev/shm")
        for name in names:
            assert name not in shm_transport._CREATED
            if shm_dir.is_dir():
                assert not (shm_dir / name).exists()


# ---------------------------------------------------------------------------
# Transport semantics over a real fleet
# ---------------------------------------------------------------------------


class TestShmReplaySemantics:
    def test_no_pickled_batches_on_shm_path(self, monkeypatch):
        """Acceptance: a shm replay pickles no packet data, ever.

        ``pickle.dumps`` is poisoned for the whole replay, and every
        pipe send is spied on: only control ops may cross the pipe and
        every batch must travel the ring.
        """
        single, sharded = make_twins("l2l3_acl", 2)
        try:
            reference = single.replay(app_packets(9), offered_pps=1e6)
            sent_ops = []
            real_send = ShardedEmulator._guarded_send

            def spying_send(self, shard, message, **kwargs):
                sent_ops.append(message[0])
                return real_send(self, shard, message, **kwargs)

            monkeypatch.setattr(
                ShardedEmulator, "_guarded_send", spying_send
            )

            def poisoned_dumps(*args, **kwargs):
                raise AssertionError(
                    "pickle.dumps called on the shm hot path"
                )

            monkeypatch.setattr(pickle, "dumps", poisoned_dumps)
            replayed = sharded.replay(app_packets(9), offered_pps=1e6)
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            assert "batch" not in sent_ops
            totals = sharded.emulator.transport_stats()["totals"]
            assert totals["pushed_batches"] > 0
            assert totals["pushed_packets"] == 300
            assert totals["fallback_encoding"] == 0
            assert totals["fallback_capacity"] == 0
            # Every ring batch was acknowledged with a result record.
            assert (
                totals["result_batches"] == totals["pushed_batches"]
            )
            assert totals["result_packets"] == 300
        finally:
            sharded.close()

    def test_outcome_sink_streams_per_packet_columns(self):
        single, sharded = make_twins("l2l3_acl", 2)
        try:
            outcomes = []
            sharded.emulator.outcome_sink = (
                lambda shard, ordinal, lat, egress, drop: outcomes.append(
                    (shard, ordinal, lat, egress, drop)
                )
            )
            packets = app_packets(13)
            reference = single.replay(app_packets(13), offered_pps=1e6)
            replayed = sharded.replay(packets, offered_pps=1e6)
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            total = sum(len(lat) for _, _, lat, _, _ in outcomes)
            assert total == 300
            # The outcome columns are the run's exact latencies and
            # drop count, streamed out-of-band.
            all_latencies = sorted(
                value
                for _, _, lat, _, _ in outcomes
                for value in lat.tolist()
            )
            assert all_latencies == sorted(replayed._latencies)
            assert (
                sum(int(drop.sum()) for _, _, _, _, drop in outcomes)
                == replayed.dropped
            )
            # Per shard, batch ordinals arrive contiguously from 0.
            for shard in (0, 1):
                ordinals = [o for s, o, _, _, _ in outcomes if s == shard]
                assert ordinals == sorted(set(ordinals))
                if ordinals:
                    assert ordinals[0] == 0
        finally:
            sharded.close()

    def test_non_encodable_batches_fall_back_to_pipe(self):
        """Mixed-header traffic rides the pipe — counted, not dropped."""
        telemetry = Telemetry()
        sharded = make_sharded(
            "l2l3_acl",
            2,
            options=SupervisorOptions(recv_timeout_s=10.0),
            telemetry=telemetry,
        )
        try:
            packets = app_packets(4, 120)
            for packet in packets[::3]:
                packet.metadata["meta.mark"] = 1  # defeats soa_encode
            stats = sharded.replay(packets, offered_pps=1e6, batch=16)
            assert stats.packets == 120
            totals = sharded.emulator.transport_stats()["totals"]
            assert totals["fallback_encoding"] > 0
            assert totals["pushed_batches"] == 0
            registry = telemetry.registry
            fallbacks = sum(
                registry.value(
                    "pipeleon_pipe_fallback_total",
                    shard=shard,
                    reason="encoding",
                )
                for shard in (0, 1)
            )
            assert fallbacks == totals["fallback_encoding"]
        finally:
            sharded.close()

    def test_tiny_ring_backpressure_counts_stalls_and_occupancy(self):
        telemetry = Telemetry()
        single = make_single("l2l3_acl")
        build, install = EXAMPLE_APPS["l2l3_acl"]
        sharded = ShardedDeployment(
            build(),
            EMULATED_NIC,
            n_workers=2,
            ring_slots=1,
            telemetry=telemetry,
        )
        install(sharded.control_plane)
        try:
            reference = single.replay(app_packets(6), offered_pps=1e6)
            replayed = sharded.replay(
                app_packets(6), offered_pps=1e6, batch=16
            )
            # Backpressure never corrupts: identical under a 1-slot ring.
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            stats = sharded.transport_stats()
            assert stats["ring_slots"] == 1
            totals = stats["totals"]
            # The dispatcher outruns a 1-slot ring immediately.
            assert totals["stalls"] > 0
            assert totals["max_occupancy"] == 1.0
            registry = telemetry.registry
            stall_metric = sum(
                registry.value(
                    "pipeleon_ring_stalls_total", shard=shard
                )
                for shard in (0, 1)
            )
            assert stall_metric == totals["stalls"]
            occupancy = sum(
                registry.histogram(
                    "pipeleon_ring_occupancy", shard=shard
                ).count
                for shard in (0, 1)
            )
            assert occupancy == totals["pushed_batches"]
        finally:
            sharded.close()

    def test_default_ring_slots_exported(self):
        _single, sharded = make_twins("l2l3_acl", 2)
        try:
            stats = sharded.emulator.transport_stats()
            assert stats["transport"] == "shm"
            assert stats["ring_slots"] == DEFAULT_RING_SLOTS
        finally:
            sharded.close()


# ---------------------------------------------------------------------------
# Ring-progress-aware supervision (the satellite bugfix)
# ---------------------------------------------------------------------------


def slow_drain_fleet(transport: str):
    """A fleet whose shard 0 sleeps 0.4s on two consecutive batches.

    With ``recv_timeout_s=0.6`` the worker is pipe-silent for ~0.8s
    around the end-of-replay gather. Over shm its consumer cursor still
    advances between the two delays, so progress-aware supervision
    keeps waiting; over the pipe there is no progress signal and the
    supervisor (correctly) classifies it hung.
    """
    plan = FaultPlan(
        (
            FaultSpec("delay", shard=0, at_batch=5, delay_s=0.4),
            FaultSpec("delay", shard=0, at_batch=6, delay_s=0.4),
        )
    )
    options = SupervisorOptions(
        recv_timeout_s=0.6,
        slow_after_s=30.0,  # keep slow-reporting out of this picture
        heartbeat_interval_s=0.01,
        send_timeout_s=1.0,
        send_retries=2,
        backoff_base_s=0.01,
        close_timeout_s=0.5,
        recovery="fail",
    )
    return make_sharded(
        "l2l3_acl",
        2,
        options=options,
        fault_plan=plan,
        transport=transport,
    )


class TestRingProgressSupervision:
    def test_shm_worker_draining_ring_is_not_hung(self):
        single = make_single("l2l3_acl")
        sharded = slow_drain_fleet("shm")
        try:
            packets = app_packets(7, 600)
            reference = single.replay(
                app_packets(7, 600), offered_pps=1e6
            )
            replayed = sharded.replay(
                packets, offered_pps=1e6, batch=32
            )
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
        finally:
            sharded.close()

    def test_pipe_transport_still_classifies_silence_as_hung(self):
        """Differential pin: without ring cursors the same scenario
        exceeds the reply deadline — proving the shm success above is
        the progress signal, not a loosened timeout."""
        sharded = slow_drain_fleet("pipe")
        try:
            with pytest.raises(EmulationError, match="unresponsive"):
                sharded.replay(
                    app_packets(7, 600), offered_pps=1e6, batch=32
                )
        finally:
            sharded.close()
