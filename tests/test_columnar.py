"""Differential tests: columnar batch kernels vs. the interpreter.

The columnar tier exists under the same license as the closure fast
path: it must be bit-identical to ``NicEmulator.process`` on RunStats,
counter banks, flow-cache contents and per-packet results — and on top
of that it must account for every packet it could *not* express as a
batch kernel (the per-reason demotion counters). These tests replay
identical traffic through twin deployments and compare everything
observable, including under mid-stream control-plane updates, over
random synthesized programs, and across the sharded shm transport.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Deployment, Pipeleon
from repro.core.sharded import ShardedDeployment
from repro.ir import exact_entry
from repro.ir.entries import ExactValue, TableEntry
from repro.nic.columnar import ColumnBatch
from repro.nic.packet import Packet, PacketPool, make_packet
from repro.nic.stats import RunStats
from repro.nic.targets import AGILIO_CX, BLUEFIELD2, EMULATED_NIC
from repro.synthesis import ProgramSynthesizer, SynthesisConfig

from .test_nic_fastpath import (
    APPS,
    TARGETS,
    app_packets,
    assert_emulators_identical,
    make_twin_deployments,
    stats_fingerprint,
)

#: Every legal demotion reason (keep in sync with repro.nic.columnar).
DEMOTION_REASONS = {
    "cache-record",
    "migrated",
    "unsupported",
    "traced",
    "input",
    "cascade",
}


def assert_demotions_accounted(emulator, total_packets: int) -> None:
    """Columnar retirements + demotions must cover every packet."""
    demoted = sum(emulator.columnar_demotions.values())
    assert set(emulator.columnar_demotions) <= DEMOTION_REASONS
    assert emulator.columnar_packets + demoted == total_packets


class TestColumnarDifferential:
    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
    def test_apps_bit_identical(self, app, target):
        interp, col = make_twin_deployments(app, target)
        reference = interp.run(app_packets(11), offered_pps=1e6)
        replayed = col.replay(
            app_packets(11), offered_pps=1e6, batch=37, engine="columnar"
        )
        assert stats_fingerprint(replayed) == stats_fingerprint(reference)
        assert_emulators_identical(interp.emulator, col.emulator)
        assert_demotions_accounted(col.emulator, reference.packets)

    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
    def test_optimized_apps_bit_identical(self, app, target):
        interp, col = make_twin_deployments(app, target, optimize=True)
        reference = interp.run(app_packets(12), offered_pps=1e6)
        replayed = col.replay(
            app_packets(12), offered_pps=1e6, batch=37, engine="columnar"
        )
        assert stats_fingerprint(replayed) == stats_fingerprint(reference)
        assert_emulators_identical(interp.emulator, col.emulator)
        assert_demotions_accounted(col.emulator, reference.packets)

    def test_batch_outcome_matches_per_packet_results(self):
        interp, col = make_twin_deployments("l2l3_acl", BLUEFIELD2)
        stats = RunStats()
        outcome = col.emulator.replay_batch(
            app_packets(3, n=120), stats, engine="columnar"
        )
        for i, packet in enumerate(app_packets(3, n=120)):
            result = interp.emulator.process(packet)
            assert outcome.latencies[i] == result.latency_ns
            assert bool(outcome.dropped[i]) == result.dropped
            expected = (
                -1 if result.egress_port is None else result.egress_port
            )
            assert outcome.egress[i] == expected

    def test_auto_engine_is_columnar(self):
        """``engine="auto"`` resolves to the columnar tier."""
        _, col = make_twin_deployments("l2l3_acl", BLUEFIELD2)
        col.replay(app_packets(4, n=90), batch=30)  # deployment default
        assert_demotions_accounted(col.emulator, 90)
        assert col.emulator.columnar_packets == 90

    def test_tracer_demotes_whole_batches(self):
        """A bound tracer forces the closure tier (reason "traced")."""
        from repro.telemetry import Telemetry

        def traced_twin():
            build, install = APPS["l2l3_acl"]
            deployment = Deployment(
                build(), BLUEFIELD2, telemetry=Telemetry(trace_interval=8)
            )
            install(deployment.control_plane)
            return deployment

        interp, col = traced_twin(), traced_twin()
        reference = interp.run(app_packets(7, n=96), offered_pps=1e6)
        replayed = col.replay(
            app_packets(7, n=96), offered_pps=1e6, batch=32,
            engine="columnar",
        )
        assert stats_fingerprint(replayed) == stats_fingerprint(reference)
        assert col.emulator.columnar_demotions == {"traced": 96}
        assert col.emulator.columnar_packets == 0


class TestMidstreamUpdates:
    """Mirror of test_fastpath_midstream for the columnar tier."""

    @pytest.mark.parametrize(
        "target", [BLUEFIELD2, EMULATED_NIC], ids=lambda t: t.name
    )
    def test_updates_between_batches_stay_identical(self, target):
        interp, col = make_twin_deployments("l2l3_acl", target)

        def both_phases(seed):
            reference = interp.run(
                app_packets(seed, n=150), offered_pps=1e6
            )
            replayed = col.replay(
                app_packets(seed, n=150),
                offered_pps=1e6,
                batch=32,
                engine="columnar",
            )
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )

        both_phases(21)
        deny = TableEntry((ExactValue(80),), "acl_deny")
        inserted = [
            deployment.insert_entry("l2l3_acl", deny.clone())
            for deployment in (interp, col)
        ]
        both_phases(22)
        for deployment, entry_id in zip((interp, col), inserted):
            deployment.delete_entry("l2l3_acl", entry_id)
        both_phases(23)
        for deployment in (interp, col):
            deployment.control_plane.flush_caches()
        both_phases(24)
        assert_emulators_identical(interp.emulator, col.emulator)
        assert_demotions_accounted(col.emulator, 600)

    def test_optimized_updates_recompile_kernels(self):
        """Cache invalidation mid-stream must recompile the kernels."""
        interp, col = make_twin_deployments(
            "l2l3_acl", EMULATED_NIC, optimize=True
        )

        def both_phases(seed):
            reference = interp.run(
                app_packets(seed, n=150), offered_pps=1e6
            )
            replayed = col.replay(
                app_packets(seed, n=150),
                offered_pps=1e6,
                batch=32,
                engine="columnar",
            )
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )

        both_phases(25)
        engine_before = col.emulator._columnar
        deny = TableEntry((ExactValue(80),), "acl_deny")
        for deployment in (interp, col):
            deployment.insert_entry("l2l3_acl", deny.clone())
        both_phases(26)
        assert col.emulator._columnar is not engine_before  # recompiled
        assert_emulators_identical(interp.emulator, col.emulator)


class TestNoPerPacketObjects:
    """The satellite contract: a columnar-accepted shm batch must never
    materialise per-packet objects (the whole point of the tier)."""

    @staticmethod
    def _matrix_batch(n=128):
        packets = app_packets(9, n=n)
        names = tuple(packets[0].fields)
        values = np.array(
            [[p.fields[name] for p in packets] for name in names],
            dtype=np.int64,
        )
        sizes = np.array([p.size_bytes for p in packets], dtype=np.int32)
        return names, values, sizes

    def test_matrix_replay_builds_no_packets(self, monkeypatch):
        _, col = make_twin_deployments("l2l3_acl", BLUEFIELD2)
        names, values, sizes = self._matrix_batch()
        pristine = values.copy()
        warm = ColumnBatch.from_matrix(names, values, sizes)
        col.emulator.replay_batch(warm, RunStats(), engine="columnar")

        def poisoned(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "columnar path materialised a per-packet object"
            )

        monkeypatch.setattr(Packet, "__init__", poisoned)
        monkeypatch.setattr(PacketPool, "acquire", poisoned)
        stats = RunStats()
        batch = ColumnBatch.from_matrix(names, values, sizes)
        outcome = col.emulator.replay_batch(
            batch, stats, engine="columnar"
        )
        assert outcome.demoted == 0
        assert stats.packets == batch.n
        # Copy-on-write: the base columns (the shm ring slot) stay
        # byte-identical even though the program rewrites fields.
        assert np.array_equal(values, pristine)

    def test_demoted_packets_materialise_from_base_columns(self):
        """Agilio's native cache demotes recording packets — those (and
        only those) may build Packets, from the untouched base data."""
        interp, col = make_twin_deployments("l2l3_acl", AGILIO_CX)
        names, values, sizes = self._matrix_batch()
        pristine = values.copy()
        stats = RunStats()
        batch = ColumnBatch.from_matrix(names, values, sizes)
        col.emulator.replay_batch(batch, stats, engine="columnar")
        assert col.emulator.columnar_demotions.get("cache-record", 0) > 0
        assert np.array_equal(values, pristine)
        reference = interp.run(app_packets(9, n=128))
        assert stats_fingerprint(stats) == stats_fingerprint(reference)
        assert_emulators_identical(interp.emulator, col.emulator)


class TestShardedColumnar:
    def test_shm_workers_consume_in_place(self):
        """Sharded columnar over shm: multiset-identical to single-core,
        every ring batch accepted columnar with zero demotions."""
        build, install = APPS["l2l3_acl"]
        single = Deployment(build(), BLUEFIELD2)
        install(single.control_plane)
        reference = single.emulator.run(
            app_packets(5, n=600), offered_pps=1e6
        )
        sharded = ShardedDeployment(
            build(),
            BLUEFIELD2,
            n_workers=3,
            batch=64,
            transport="shm",
            engine="columnar",
        )
        install(sharded.control_plane)
        try:
            replayed = sharded.replay(
                app_packets(5, n=600), offered_pps=1e6
            )
            assert sorted(replayed._latencies) == sorted(
                reference._latencies
            )
            assert (
                replayed.packets,
                replayed.dropped,
                replayed.total_latency_ns,
                replayed.total_bytes,
            ) == (
                reference.packets,
                reference.dropped,
                reference.total_latency_ns,
                reference.total_bytes,
            )
            assert replayed._busy_ns == reference._busy_ns
            assert sharded.columnar_packets == 600
            assert sharded.columnar_demotions == {}
            totals = sharded.transport_stats()["totals"]
            assert totals["pushed_batches"] > 0
            assert totals["fallback_encoding"] == 0
        finally:
            sharded.close()

    def test_sharded_engine_validation(self):
        with pytest.raises(ValueError, match="Unknown engine"):
            build, _ = APPS["l2l3_acl"]
            ShardedDeployment(build(), BLUEFIELD2, engine="warp")

    def test_sharded_demotions_merge_back(self):
        """Worker-side demotions (native cache) surface in the parent."""
        build, install = APPS["l2l3_acl"]
        sharded = ShardedDeployment(
            build(), AGILIO_CX, n_workers=2, batch=64
        )
        install(sharded.control_plane)
        try:
            stats = sharded.replay(app_packets(6, n=400))
            demoted = sum(sharded.columnar_demotions.values())
            assert demoted > 0
            assert set(sharded.columnar_demotions) <= DEMOTION_REASONS
            assert sharded.columnar_packets + demoted == stats.packets
        finally:
            sharded.close()


def install_random_entries(deployment: Deployment, seed: int) -> None:
    rng = random.Random(seed)
    for table in deployment.original.plain_tables():
        if any(k.match_type.value != "exact" for k in table.keys):
            continue
        actions = list(table.actions)
        used = set()
        for _ in range(rng.randrange(0, 4)):
            values = tuple(rng.randrange(0, 6) for _ in table.keys)
            if values in used:
                continue
            used.add(values)
            deployment.insert_entry(
                table.name, exact_entry(values, rng.choice(actions))
            )


def random_packets(seed: int, count: int) -> list:
    rng = random.Random(seed)
    packets = []
    for _ in range(count):
        packet = make_packet(
            src=rng.randrange(1, 50),
            dst=rng.randrange(1, 50),
            sport=rng.randrange(1, 20),
            dport=rng.randrange(1, 20),
        )
        packet.set("ipv4.tos", rng.randrange(0, 4))
        for i in range(0, 64, 4):
            packet.set(f"hdr.f{i}", rng.randrange(0, 6))
        packets.append(packet)
    return packets


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    optimize=st.booleans(),
    batch=st.integers(min_value=1, max_value=48),
)
def test_property_random_programs_bit_identical(seed, optimize, batch):
    """Random DAGs, entries and traffic: stats and state bit-identical,
    every packet accounted columnar-or-demoted."""
    target = EMULATED_NIC if optimize else BLUEFIELD2

    def build(stride):
        program = ProgramSynthesizer(
            SynthesisConfig(seed=seed, n_pipelets=3)
        ).generate()
        plan = Pipeleon(target).optimize(program) if optimize else None
        deployment = Deployment(
            program,
            target,
            plan=plan,
            native_cache=False,
            sample_stride=stride,
        )
        install_random_entries(deployment, seed)
        return deployment

    stride = 3 if seed % 2 else 1
    interp, col = build(stride), build(stride)
    n = 60
    reference = interp.run(random_packets(seed, n), offered_pps=1e6)
    replayed = col.replay(
        random_packets(seed, n),
        offered_pps=1e6,
        batch=batch,
        engine="columnar",
    )
    assert stats_fingerprint(replayed) == stats_fingerprint(reference)
    assert (
        col.emulator.counters.snapshot()
        == interp.emulator.counters.snapshot()
    )
    assert col.emulator.explicit_counters == interp.emulator.explicit_counters
    for name, cache in interp.emulator.flow_caches.items():
        assert dict(col.emulator.flow_caches[name]._store) == dict(
            cache._store
        )
    assert_demotions_accounted(col.emulator, n)
