"""Differential tests: sharded multi-core replay vs. single-core.

The sharded engine is only allowed to exist because the merge of its
per-worker telemetry is bit-identical to a single-core replay of the
unsplit stream: same run stats (fsum totals), same counter banks, same
cache stats, and worker cache stores that partition the single-core
store. These tests drive identical traffic through both, on every
example app, at 2 and 4 workers, with and without mid-stream
control-plane updates.
"""

import pytest

from repro.apps import EXAMPLE_APPS
from repro.core import Deployment, Pipeleon, ShardedDeployment
from repro.errors import EmulationError
from repro.nic.packet import Packet, make_packet
from repro.nic.sharding import (
    ShardedEmulator,
    decode_batch,
    encode_batch,
    flow_shard,
    shard_seed,
)
from repro.nic.stats import RunStats
from repro.nic.targets import EMULATED_NIC
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator

WORKER_COUNTS = [2, 4]


def app_packets(seed: int, n: int = 300) -> list[Packet]:
    generator = TrafficGenerator(seed)
    flows = synth_flows(48) + synth_flows(16, dport=6666)
    return list(generator.stream(flows, n, locality="zipf"))


def stats_fingerprint(stats: RunStats) -> tuple:
    return (
        stats.packets,
        stats.dropped,
        stats.migrations,
        stats.total_latency_ns,
        stats.total_bytes,
        sorted(stats._latencies),
        {
            pool: sorted(values)
            for pool, values in stats._busy_samples.items()
        },
        stats._busy_ns,
    )


def make_twins(
    app: str,
    n_workers: int,
    optimize: bool = False,
    transport: str = "shm",
):
    """A single-core deployment and a sharded one, identically set up."""
    build, install = EXAMPLE_APPS[app]
    target = EMULATED_NIC
    single_program = build()
    plan = (
        Pipeleon(target).optimize(single_program) if optimize else None
    )
    single = Deployment(single_program, target, plan=plan)
    install(single.control_plane)
    sharded_program = build()
    plan = (
        Pipeleon(target).optimize(sharded_program) if optimize else None
    )
    sharded = ShardedDeployment(
        sharded_program,
        target,
        n_workers=n_workers,
        plan=plan,
        transport=transport,
    )
    install(sharded.control_plane)
    return single, sharded


def assert_sharded_identical(
    single: Deployment, sharded: ShardedDeployment
):
    emulator = single.emulator
    merged = sharded.emulator
    assert emulator.counters.snapshot() == merged.counters.snapshot()
    assert dict(emulator.explicit_counters) == merged.explicit_counters
    for name, cache in emulator.flow_caches.items():
        stats = merged.cache_stats[name]
        assert (cache.stats.hits, cache.stats.misses) == (
            stats.hits,
            stats.misses,
        )
        assert cache.stats.insertions == stats.insertions
        assert cache.stats.invalidations == stats.invalidations
    if emulator.native_cache is not None:
        native = merged.native_cache_stats
        assert native is not None
        assert (
            emulator.native_cache.stats.hits,
            emulator.native_cache.stats.misses,
        ) == (native.hits, native.misses)
    # Worker cache stores must partition the single-core store: flows
    # never cross shards, so the disjoint union reproduces it exactly.
    dumps = sharded.emulator.dump_caches()
    for name, cache in emulator.flow_caches.items():
        union: dict = {}
        for stores, _native, _tables in dumps:
            store = stores[name]
            assert not (set(union) & set(store))
            union.update(store)
        assert union == dict(cache._store)
    # And every worker's runtime tables mirror the template's
    # (structurally — entry ids are freshly assigned per replica).
    def table_shape(entries):
        return sorted(
            (
                entry.action_name,
                repr(entry.match_values),
                repr(entry.action_data),
                entry.priority,
            )
            for entry in entries
        )

    template_tables = {
        name: table_shape(runtime.entries())
        for name, runtime in (
            sharded.deployment.emulator.runtime_tables.items()
        )
    }
    for _stores, _native, tables in dumps:
        assert {
            name: table_shape(entries)
            for name, entries in tables.items()
        } == template_tables


def perturb_control_plane(deployment) -> None:
    """App-agnostic mid-stream churn: delete + re-insert + flush."""
    control_plane = deployment.control_plane
    for table in control_plane.table_names():
        entries = control_plane.entries(table)
        if entries:
            victim = entries[0]
            control_plane.delete_entry(table, victim.entry_id)
            control_plane.insert_entry(table, victim.clone())
            break
    control_plane.flush_caches()


class TestShardedDifferential:
    @pytest.mark.parametrize("app", sorted(EXAMPLE_APPS))
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    def test_replay_identical_with_midstream_updates(
        self, app, n_workers
    ):
        single, sharded = make_twins(app, n_workers)
        try:
            first_single = single.replay(
                app_packets(7), offered_pps=1e6
            )
            first_sharded = sharded.replay(
                app_packets(7), offered_pps=1e6
            )
            assert stats_fingerprint(first_sharded) == (
                stats_fingerprint(first_single)
            )
            # Mid-stream churn lands between batches on both sides.
            perturb_control_plane(single)
            perturb_control_plane(sharded)
            second_single = single.replay(
                app_packets(8), offered_pps=1e6, batch=33
            )
            second_sharded = sharded.replay(
                app_packets(8), offered_pps=1e6, batch=33
            )
            assert stats_fingerprint(second_sharded) == (
                stats_fingerprint(second_single)
            )
            assert_sharded_identical(single, sharded)
        finally:
            sharded.close()

    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    def test_optimized_plan_replay_identical(self, n_workers):
        single, sharded = make_twins(
            "l2l3_acl", n_workers, optimize=True
        )
        # The optimized plan's flow cache keys on ``ipv4.dst`` alone.
        # Exact equivalence requires each cache key to resolve within
        # one shard, so every flow here has a distinct dst (flows that
        # share a dst across shards would each warm their own copy --
        # correct outputs, but more cold misses than one core).
        flows = synth_flows(64)
        packets = lambda: list(  # noqa: E731
            TrafficGenerator(11).stream(flows, 300, locality="zipf")
        )
        try:
            reference = single.replay(packets(), offered_pps=1e6)
            replayed = sharded.replay(packets(), offered_pps=1e6)
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            assert_sharded_identical(single, sharded)
        finally:
            sharded.close()

    def test_unpaced_replay_identical(self):
        single, sharded = make_twins("acl_chain", 2)
        try:
            reference = single.replay(app_packets(3))
            replayed = sharded.replay(app_packets(3))
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
        finally:
            sharded.close()

    def test_pipe_transport_replay_identical(self):
        """The legacy pipe transport stays a faithful fallback."""
        single, sharded = make_twins("l2l3_acl", 2, transport="pipe")
        try:
            reference = single.replay(app_packets(5), offered_pps=1e6)
            replayed = sharded.replay(app_packets(5), offered_pps=1e6)
            assert stats_fingerprint(replayed) == stats_fingerprint(
                reference
            )
            assert_sharded_identical(single, sharded)
            stats = sharded.emulator.transport_stats()
            assert stats["transport"] == "pipe"
            # Pipe mode never touches the rings.
            assert stats["totals"]["pushed_batches"] == 0
            assert stats["totals"]["result_batches"] == 0
        finally:
            sharded.close()


class TestBroadcastEpochs:
    def test_epoch_advances_and_workers_stay_synced(self):
        _, sharded = make_twins("l2l3_acl", 2)
        try:
            engine = sharded.emulator
            before = engine.epoch
            perturb_control_plane(sharded)
            # delete + insert each broadcast entries + invalidation;
            # flush broadcasts once more.
            assert engine.epoch > before
            # collect() asserts every worker acked the latest epoch.
            engine.collect()
        finally:
            sharded.close()

    def test_worker_failure_surfaces_as_emulation_error(self):
        _, sharded = make_twins("l2l3_acl", 2)
        try:
            engine = sharded.emulator
            engine.set_table_entries("no_such_table", [])
            with pytest.raises(EmulationError, match="worker failed"):
                engine.collect()
        finally:
            sharded.close()

    def test_closed_engine_rejects_replay(self):
        _, sharded = make_twins("l2l3_acl", 2)
        sharded.close()
        sharded.close()  # idempotent
        with pytest.raises(EmulationError, match="closed"):
            sharded.emulator.replay([make_packet()])

    def test_killed_worker_surfaces_shard_and_exitcode(self):
        # Regression: a worker dying mid-conversation used to hang the
        # parent or raise a bare EOFError; it must surface as a clear
        # EmulationError naming the shard, and close() must still reap
        # the surviving workers.
        _, sharded = make_twins("l2l3_acl", 2)
        try:
            engine = sharded.emulator
            victim = engine._procs[0]
            victim.kill()
            victim.join(timeout=10.0)
            with pytest.raises(
                EmulationError, match="died without replying"
            ) as excinfo:
                engine.collect()
            message = str(excinfo.value)
            assert "0" in message  # shard index
            assert "repro-shard-0" in message
            assert "exitcode" in message
        finally:
            sharded.close()
        # Post-mortem close is clean and idempotent.
        sharded.close()
        assert all(not p.is_alive() for p in sharded.emulator._procs)

    def test_context_manager_tears_down_workers(self):
        build, install = EXAMPLE_APPS["l2l3_acl"]
        with ShardedDeployment(
            build(), EMULATED_NIC, n_workers=2
        ) as sharded:
            install(sharded.control_plane)
            sharded.replay(app_packets(21, 50))
            procs = list(sharded.emulator._procs)
            assert all(p.is_alive() for p in procs)
        assert all(not p.is_alive() for p in procs)
        with pytest.raises(EmulationError, match="closed"):
            sharded.replay([make_packet()])

    def test_atexit_hook_registered_then_released(self, monkeypatch):
        # Leak guard: the engine registers its close() with atexit at
        # spawn (so a mid-replay crash can't orphan forked workers) and
        # unregisters it on explicit close.
        import repro.nic.sharding as sharding_mod

        registered: list = []
        monkeypatch.setattr(
            sharding_mod.atexit, "register", registered.append
        )
        monkeypatch.setattr(
            sharding_mod.atexit,
            "unregister",
            lambda fn: registered.remove(fn),
        )
        _, sharded = make_twins("l2l3_acl", 2)
        try:
            assert registered == [sharded.emulator.close]
        finally:
            sharded.close()
        assert registered == []


class TestFlowSharding:
    def test_flow_shard_deterministic_and_in_range(self):
        for flow in synth_flows(100):
            key = flow.flow_key()
            for n in (1, 2, 4, 7):
                shard = flow_shard(key, n)
                assert 0 <= shard < n
                assert shard == flow_shard(key, n)
        assert flow_shard(synth_flows(1)[0].flow_key(), 1) == 0

    def test_flow_key_matches_packet(self):
        for flow in synth_flows(10):
            assert flow.flow_key() == flow.packet().flow_key()

    def test_shard_seed_distinct(self):
        seeds = {shard_seed(3, shard) for shard in range(16)}
        assert len(seeds) == 16

    def test_flows_for_shard_partitions(self):
        flows = synth_flows(64)
        generator = TrafficGenerator(seed=0)
        seen: list = []
        for shard in range(4):
            subset = generator.flows_for_shard(flows, shard, 4)
            for flow in subset:
                assert flow_shard(flow.flow_key(), 4) == shard
            seen.extend(subset)
        assert sorted(map(repr, seen)) == sorted(map(repr, flows))

    def test_shard_stream_stays_on_shard(self):
        flows = synth_flows(64)
        generator = TrafficGenerator(seed=5)
        packets = list(generator.shard_stream(flows, 100, 1, 4))
        assert len(packets) == 100
        assert all(
            flow_shard(p.flow_key(), 4) == 1 for p in packets
        )
        again = list(
            TrafficGenerator(seed=5).shard_stream(flows, 100, 1, 4)
        )
        assert [p.fields for p in again] == [p.fields for p in packets]

    def test_shard_stream_rejects_bad_shard(self):
        with pytest.raises(ValueError, match="out of range"):
            list(
                TrafficGenerator().shard_stream(synth_flows(4), 10, 4, 4)
            )


class TestBatchCodec:
    def test_uniform_batch_uses_numpy_block(self):
        packets = [make_packet(sport=1000 + i) for i in range(8)]
        payload = encode_batch(packets)
        assert payload[0] == "np"
        decoded = decode_batch(payload)
        assert [p.fields for p in decoded] == [
            p.fields for p in packets
        ]
        assert [p.size_bytes for p in decoded] == [
            p.size_bytes for p in packets
        ]
        assert all(
            not p.dropped and p.egress_port is None and not p.metadata
            for p in decoded
        )

    def test_metadata_falls_back_to_python(self):
        tagged = make_packet()
        tagged.metadata["meta.next_tab_id"] = 3
        payload = encode_batch([make_packet(), tagged])
        assert payload[0] == "py"
        decoded = decode_batch(payload)
        assert decoded[1].metadata == {"meta.next_tab_id": 3}

    def test_oversized_value_falls_back_to_python(self):
        wide = make_packet()
        wide.fields["ipv6.src"] = 1 << 100
        payload = encode_batch([wide])
        assert payload[0] == "py"
        decoded = decode_batch(payload)
        assert decoded[0].fields["ipv6.src"] == 1 << 100

    def test_heterogeneous_headers_fall_back(self):
        other = make_packet()
        other.fields["vlan.id"] = 7
        payload = encode_batch([make_packet(), other])
        assert payload[0] == "py"
        decoded = decode_batch(payload)
        assert decoded[1].fields["vlan.id"] == 7

    def test_dropped_and_egress_preserved(self):
        packet = make_packet()
        packet.dropped = True
        packet.egress_port = 9
        (decoded,) = decode_batch(encode_batch([packet]))
        assert decoded.dropped and decoded.egress_port == 9

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []


class TestShardedEmulatorStandalone:
    def test_template_constructor_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            ShardedEmulator(None, 2)

    def test_invalid_worker_and_batch_counts(self):
        single, _sharded = None, None
        build, _install = EXAMPLE_APPS["l2l3_acl"]
        from repro.nic.emulator import NicEmulator

        emulator = NicEmulator(build(), EMULATED_NIC)
        with pytest.raises(ValueError, match="n_workers"):
            ShardedEmulator(emulator, 0)
        with pytest.raises(ValueError, match="batch"):
            ShardedEmulator(emulator, 1, batch=0)

    def test_invalid_transport_and_ring_slots(self):
        build, _install = EXAMPLE_APPS["l2l3_acl"]
        from repro.nic.emulator import NicEmulator

        emulator = NicEmulator(build(), EMULATED_NIC)
        with pytest.raises(ValueError, match="transport"):
            ShardedEmulator(emulator, 1, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="ring_slots"):
            ShardedEmulator(emulator, 1, ring_slots=0)
