"""Tests for ProgramBuilder, validation, and JSON round-tripping."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IrError, ValidationError
from repro.ir import (
    Condition,
    MatchType,
    Param,
    dumps_program,
    entry_from_json,
    entry_to_json,
    linear_program,
    loads_program,
    program_from_json,
    program_to_json,
    validate_program,
)
from repro.ir.actions import Action, noop_action, prim
from repro.ir.builder import ProgramBuilder
from repro.ir.entries import (
    ExactValue,
    LpmValue,
    RangeValue,
    TableEntry,
    TernaryValue,
)
from repro.synthesis import ProgramSynthesizer, SynthesisConfig


class TestBuilder:
    def test_chain_preserves_explicit_next(self):
        builder = ProgramBuilder("p")
        builder.table(
            "a",
            ["f"],
            [noop_action("x"), noop_action("y")],
            next_map={"x": "c"},
        )
        builder.table("b", ["g"], [noop_action("b_a")])
        builder.table("c", ["h"], [noop_action("c_a")])
        builder.chain(["a", "b", "c"])
        program = builder.build(root="a")
        # x was explicitly routed to c; only y got chained to b.
        assert program.table("a").next_map["x"] == "c"
        assert program.table("a").next_map["y"] == "b"

    def test_duplicate_action_names_rejected(self):
        builder = ProgramBuilder("p")
        with pytest.raises(IrError):
            builder.table(
                "t", ["f"], [noop_action("same"), noop_action("same")]
            )

    def test_acl_table_defaults_to_permit(self):
        builder = ProgramBuilder("p")
        builder.acl_table("acl")
        program = builder.build(root="acl")
        table = program.table("acl")
        assert table.default_action == "acl_permit"
        assert table.annotations["role"] == "acl"

    def test_build_validates(self):
        builder = ProgramBuilder("p")
        builder.table("t", ["f"], [noop_action("a")], next_node="ghost")
        with pytest.raises(ValidationError):
            builder.build(root="t")

    def test_unknown_root_rejected(self):
        builder = ProgramBuilder("p")
        builder.table("t", ["f"], [noop_action("a")])
        with pytest.raises(IrError):
            builder.build(root="ghost")

    def test_set_next(self):
        builder = ProgramBuilder("p")
        builder.table("a", ["f"], [noop_action("a0"), noop_action("a1")])
        builder.table("b", ["g"], [noop_action("b0")])
        builder.set_next("a", "b")
        program = builder.build(root="a")
        assert program.successors("a") == ["b"]


class TestValidation:
    def test_missing_next_reference(self, chain5):
        node = chain5.table("chain5_t0")
        node.next_map["chain5_t0_a0"] = "ghost"
        with pytest.raises(ValidationError) as info:
            validate_program(chain5)
        assert any("ghost" in p for p in info.value.problems)

    def test_no_root(self):
        from repro.ir.program import Program

        with pytest.raises(ValidationError):
            validate_program(Program("empty"))

    def test_all_problems_reported(self, chain5):
        chain5.table("chain5_t0").next_map["chain5_t0_a0"] = "g1"
        chain5.table("chain5_t1").next_map["chain5_t1_a0"] = "g2"
        with pytest.raises(ValidationError) as info:
            validate_program(chain5)
        assert len(info.value.problems) >= 2


class TestJsonRoundTrip:
    def test_linear_program(self):
        program = linear_program("p", 4, MatchType.LPM, n_primitives=2)
        restored = loads_program(dumps_program(program))
        assert program_to_json(restored) == program_to_json(program)

    def test_param_serialization(self):
        builder = ProgramBuilder("p")
        builder.table(
            "t",
            ["f"],
            [Action("set", (prim("set_field", "ipv4.dst", Param(0)),))],
        )
        program = builder.build(root="t")
        restored = loads_program(dumps_program(program))
        action = restored.table("t").actions["set"]
        assert action.primitives[0].args[1] == Param(0)

    def test_cache_info_round_trip(self, chain5):
        from repro.core.transform import apply_cache

        cached = apply_cache(
            chain5, ["chain5_t1", "chain5_t2"], capacity=99
        ).program
        restored = loads_program(dumps_program(cached))
        node = restored.table("cache__chain5_t1__chain5_t2")
        assert node.cache_info is not None
        assert node.cache_info.capacity == 99
        assert node.cache_info.covers == ("chain5_t1", "chain5_t2")

    def test_unknown_version_rejected(self):
        with pytest.raises(IrError):
            program_from_json({"format_version": 99, "nodes": []})

    def test_unknown_node_type_rejected(self):
        with pytest.raises(IrError):
            program_from_json(
                {"format_version": 1, "nodes": [{"type": "alien"}]}
            )

    def test_json_is_valid_json(self, branching_program):
        text = dumps_program(branching_program)
        json.loads(text)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10000))
    def test_synthetic_program_round_trip(self, seed):
        """Property: any synthesized program survives JSON round trip."""
        program = ProgramSynthesizer(
            SynthesisConfig(n_pipelets=5, seed=seed)
        ).generate()
        restored = loads_program(dumps_program(program))
        assert program_to_json(restored) == program_to_json(program)
        assert (
            restored.topological_order() == program.topological_order()
        )


class TestEntryJson:
    @pytest.mark.parametrize(
        "value",
        [
            ExactValue(42),
            LpmValue(0x0A000000, 8),
            TernaryValue(0x12, 0xFF),
            RangeValue(1, 10),
        ],
    )
    def test_entry_round_trip(self, value):
        entry = TableEntry((value,), "act", (1, Param(0)), priority=3)
        restored = entry_from_json(entry_to_json(entry))
        assert restored.match_values == entry.match_values
        assert restored.action_name == entry.action_name
        assert restored.action_data == entry.action_data
        assert restored.priority == entry.priority
