"""Shared fixtures for the Pipeleon reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import uniform_profile
from repro.ir import linear_program
from repro.ir.actions import drop_action, noop_action
from repro.ir.builder import ProgramBuilder
from repro.ir.conditionals import Condition


def pytest_collection_modifyitems(items):
    """Everything under tests/ is tier-1 (fast, run on every verify).

    Benchmarks opt in individually (``bench_smoke.py`` carries the
    marker itself); select with ``-m tier1``.
    """
    for item in items:
        item.add_marker(pytest.mark.tier1)


@pytest.fixture
def chain5():
    """Five exact tables in a chain."""
    return linear_program("chain5", 5)


@pytest.fixture
def chain5_profile(chain5):
    return uniform_profile(chain5)


@pytest.fixture
def acl_program():
    """Three independent ACL tables then a processing table."""
    builder = ProgramBuilder("acl3")
    for i, field in enumerate(("ipv4.src", "ipv4.dst", "l4.dport")):
        name = f"acl{i}"
        builder.table(
            name,
            [field],
            [drop_action(f"{name}_deny"), noop_action(f"{name}_permit")],
            default_action=f"{name}_permit",
        )
    builder.table(
        "proc",
        ["ipv4.tos"],
        [noop_action("proc_a0"), noop_action("proc_a1")],
    )
    builder.chain(["acl0", "acl1", "acl2", "proc"])
    return builder.build(root="acl0")


@pytest.fixture
def branching_program():
    """A diamond: t0 -> cond -> (left | right) -> join."""
    builder = ProgramBuilder("diamond")
    builder.table(
        "t0", ["ipv4.src"], [noop_action("t0_a0"), noop_action("t0_a1")]
    )
    builder.conditional(
        "cond",
        Condition("ipv4.tos", "eq", 1),
        true_next="left",
        false_next="right",
    )
    builder.table(
        "left",
        ["ipv4.dst"],
        [noop_action("left_a0"), noop_action("left_a1")],
        next_node="join",
    )
    builder.table(
        "right",
        ["l4.dport"],
        [noop_action("right_a0"), noop_action("right_a1")],
        next_node="join",
    )
    builder.table(
        "join",
        ["l4.sport"],
        [noop_action("join_a0"), noop_action("join_a1")],
    )
    builder.chain(["t0", "cond"])
    return builder.build(root="t0")
