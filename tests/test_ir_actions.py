"""Tests for repro.ir.actions."""

import pytest

from repro.errors import IrError
from repro.ir.actions import (
    Action,
    ActionPrimitive,
    DROP_FIELD,
    PORT_FIELD,
    Param,
    drop_action,
    forward_action,
    noop_action,
    prim,
    set_field_action,
)


class TestParam:
    def test_valid_index(self):
        assert Param(0).index == 0
        assert Param(3).index == 3

    def test_negative_index_rejected(self):
        with pytest.raises(IrError):
            Param(-1)

    def test_equality(self):
        assert Param(1) == Param(1)
        assert Param(1) != Param(2)


class TestActionPrimitive:
    def test_unknown_op_rejected(self):
        with pytest.raises(IrError):
            ActionPrimitive("teleport", ())

    def test_arity_checked(self):
        with pytest.raises(IrError):
            ActionPrimitive("set_field", ("only_one",))
        with pytest.raises(IrError):
            ActionPrimitive("drop", ("extra",))

    def test_writes_field_set_field(self):
        assert prim("set_field", "ipv4.ttl", 64).writes_field == "ipv4.ttl"

    def test_writes_field_drop_and_forward(self):
        assert prim("drop").writes_field == DROP_FIELD
        assert prim("forward", 3).writes_field == PORT_FIELD

    def test_writes_field_noop(self):
        assert prim("no_op").writes_field is None

    def test_reads_fields_copy(self):
        p = prim("copy_field", "a.x", "b.y")
        assert p.reads_fields == ("b.y",)
        assert p.writes_field == "a.x"

    def test_reads_fields_add(self):
        p = prim("add_to_field", "ipv4.ttl", -1)
        assert p.reads_fields == ("ipv4.ttl",)


class TestAction:
    def test_primitive_count(self):
        assert noop_action("n", 3).primitive_count == 3

    def test_empty_name_rejected(self):
        with pytest.raises(IrError):
            Action("")

    def test_drops(self):
        assert drop_action().drops
        assert not noop_action().drops

    def test_mixed_drop_detected(self):
        action = Action("a", (prim("no_op"), prim("drop")))
        assert action.drops

    def test_written_fields(self):
        action = set_field_action("s", {"ipv4.ttl": 64, "l4.dport": 80})
        assert action.written_fields() == {"ipv4.ttl", "l4.dport"}

    def test_read_fields(self):
        action = Action(
            "a",
            (prim("copy_field", "x", "y"), prim("add_to_field", "z", 1)),
        )
        assert action.read_fields() == {"y", "z"}

    def test_forward_action(self):
        action = forward_action(7)
        assert action.primitives[0].op == "forward"
        assert action.primitives[0].args == (7,)

    def test_param_in_action(self):
        action = set_field_action("s", {"ipv4.dst": Param(0)})
        assert Param(0) in action.primitives[0].args
