"""Tests for the program DAG container."""

import pytest

from repro.errors import IrError
from repro.ir import linear_program
from repro.ir.actions import noop_action
from repro.ir.builder import ProgramBuilder
from repro.ir.conditionals import Condition
from repro.ir.program import Program
from repro.ir.tables import Pipeline


class TestConstruction:
    def test_duplicate_name_rejected(self, chain5):
        with pytest.raises(IrError):
            chain5.add(chain5.node("chain5_t0"))

    def test_first_node_becomes_root(self):
        program = linear_program("p", 3)
        assert program.root == "p_t0"

    def test_missing_node_raises(self, chain5):
        with pytest.raises(IrError):
            chain5.node("ghost")

    def test_table_accessor_rejects_conditionals(self, branching_program):
        with pytest.raises(IrError):
            branching_program.table("cond")

    def test_contains_and_len(self, chain5):
        assert "chain5_t0" in chain5
        assert "ghost" not in chain5
        assert len(chain5) == 5


class TestTraversal:
    def test_successors(self, chain5):
        assert chain5.successors("chain5_t0") == ["chain5_t1"]
        assert chain5.successors("chain5_t4") == []

    def test_predecessors(self, branching_program):
        assert set(branching_program.predecessors("join")) == {
            "left",
            "right",
        }

    def test_topological_order_linear(self, chain5):
        assert chain5.topological_order() == [
            f"chain5_t{i}" for i in range(5)
        ]

    def test_topological_order_diamond(self, branching_program):
        order = branching_program.topological_order()
        assert order.index("t0") < order.index("cond")
        assert order.index("cond") < order.index("left")
        assert order.index("left") < order.index("join")
        assert order.index("right") < order.index("join")

    def test_cycle_detected(self):
        program = linear_program("cyc", 3)
        tail = program.table("cyc_t2")
        for action in tail.next_map:
            tail.next_map[action] = "cyc_t0"
        with pytest.raises(IrError):
            program.topological_order()

    def test_reachable_excludes_orphans(self, chain5):
        builder_orphan = linear_program("orphan", 1).node("orphan_t0")
        chain5.nodes["orphan_t0"] = builder_orphan
        assert "orphan_t0" not in chain5.reachable()

    def test_prune_unreachable(self, chain5):
        chain5.nodes["zombie"] = linear_program("z", 1).node("z_t0").clone(
            name="zombie"
        )
        removed = chain5.prune_unreachable()
        assert removed == ["zombie"]
        assert "zombie" not in chain5

    def test_paths_diamond(self, branching_program):
        paths = branching_program.paths()
        as_sets = {tuple(p) for p in paths}
        assert ("t0", "cond", "left", "join") in as_sets
        assert ("t0", "cond", "right", "join") in as_sets
        assert len(paths) == 2

    def test_edges_labelled(self, branching_program):
        edges = list(branching_program.edges())
        assert ("cond", "left", "true") in edges
        assert ("cond", "right", "false") in edges


class TestRewriting:
    def test_replace_next(self, chain5):
        count = chain5.replace_next("chain5_t1", "chain5_t2")
        assert count == 2  # two actions of t0 pointed at t1
        assert chain5.successors("chain5_t0") == ["chain5_t2"]

    def test_replace_next_updates_root(self, chain5):
        chain5.replace_next("chain5_t0", "chain5_t1")
        assert chain5.root == "chain5_t1"

    def test_clone_deep(self, chain5):
        clone = chain5.clone()
        node = clone.table("chain5_t0")
        for action in node.next_map:
            node.next_map[action] = None
        assert chain5.successors("chain5_t0") == ["chain5_t1"]


class TestPipelines:
    def test_homogeneous_by_default(self, chain5):
        assert not chain5.is_heterogeneous

    def test_assign_pipeline(self, chain5):
        chain5.assign_pipeline(["chain5_t3", "chain5_t4"], Pipeline.CPU)
        assert chain5.is_heterogeneous
        assert chain5.node("chain5_t3").pipeline is Pipeline.CPU

    def test_summary_lists_all_nodes(self, branching_program):
        summary = branching_program.summary()
        for name in branching_program.nodes:
            assert name in summary
