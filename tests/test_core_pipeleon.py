"""Tests for the Pipeleon facade (plan/apply/source-to-source)."""

import json

import pytest

from repro.core import Pipeleon, ResourceBudget, SearchOptions
from repro.errors import ValidationError
from repro.ir import linear_program, loads_program
from repro.ir.tables import MatchType, TableKind
from repro.nic.targets import AGILIO_CX, BLUEFIELD2


@pytest.fixture
def pipeleon():
    return Pipeleon(BLUEFIELD2)


class TestOptimize:
    def test_default_profile_is_uniform(self, pipeleon):
        program = linear_program("p", 6, MatchType.TERNARY)
        plan = pipeleon.optimize(program)
        assert plan.total_gain_ns > 0

    def test_invalid_program_rejected(self, pipeleon, chain5):
        chain5.table("chain5_t0").next_map["chain5_t0_a0"] = "ghost"
        with pytest.raises(ValidationError):
            pipeleon.optimize(chain5)

    def test_optimize_program_returns_both(self, pipeleon):
        program = linear_program("p", 6, MatchType.TERNARY)
        optimized, plan = pipeleon.optimize_program(program)
        assert not plan.is_noop
        cache_nodes = [
            t for t in optimized.tables() if t.kind is TableKind.CACHE
        ]
        assert cache_nodes

    def test_esearch_at_least_as_good(self, pipeleon):
        program = linear_program("p", 12, MatchType.TERNARY)
        options = SearchOptions(k=0.2, max_pipelet_len=3)
        scoped = Pipeleon(BLUEFIELD2, search=options)
        top = scoped.optimize(program)
        full = scoped.esearch(program)
        assert full.total_gain_ns >= top.total_gain_ns - 1e-9


class TestSourceToSource:
    def test_json_round_trip(self, pipeleon):
        program = linear_program("p", 6, MatchType.TERNARY)
        from repro.ir import dumps_program

        out_json, plan = pipeleon.optimize_json(dumps_program(program))
        optimized = loads_program(out_json)
        assert not plan.is_noop
        assert len(optimized) >= len(program)
        json.loads(out_json)  # stays valid JSON

    def test_apply_validates_output(self, pipeleon):
        program = linear_program("p", 4, MatchType.TERNARY)
        plan = pipeleon.optimize(program)
        result = pipeleon.apply(program, plan)
        # validate_program ran inside apply; re-run defensively.
        from repro.ir import validate_program

        validate_program(result.program)


class TestDeployHelper:
    def test_deploy_creates_running_deployment(self, pipeleon):
        from repro.nic.packet import make_packet

        program = linear_program("p", 4, MatchType.TERNARY)
        plan = pipeleon.optimize(program)
        deployment = pipeleon.deploy(program, plan)
        stats = deployment.run([make_packet() for _ in range(5)])
        assert stats.packets == 5

    def test_budgeted_pipeleon(self):
        program = linear_program("p", 8, MatchType.TERNARY)
        tight = Pipeleon(
            BLUEFIELD2,
            budget=ResourceBudget(memory_bytes=1000, update_pps=10),
        )
        plan = tight.optimize(program)
        assert plan.total_memory_bytes <= 1000
        assert plan.total_update_pps <= 10
