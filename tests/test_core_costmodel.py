"""Tests for the §3.1 cost model, including model-vs-emulator agreement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CostModel, uniform_profile
from repro.core.costmodel import CostParams
from repro.core.profiling import RuntimeProfile
from repro.ir import linear_program
from repro.ir.actions import drop_action, noop_action
from repro.ir.builder import ProgramBuilder
from repro.ir.tables import MatchType
from repro.nic.emulator import NicEmulator
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2, EMULATED_NIC
from repro.synthesis import ProgramSynthesizer, SynthesisConfig


@pytest.fixture
def model():
    return CostModel.for_target(BLUEFIELD2)


class TestNodeCosts:
    def test_exact_match_cost(self, model, chain5, chain5_profile):
        table = chain5.table("chain5_t0")
        assert model.match_cost(table, chain5_profile) == pytest.approx(
            BLUEFIELD2.asic.lookup_ns
        )

    def test_ternary_match_uses_default_m(self, model):
        program = linear_program("p", 1, MatchType.TERNARY)
        profile = uniform_profile(program)
        cost = model.match_cost(program.table("p_t0"), profile)
        assert cost == pytest.approx(5 * BLUEFIELD2.asic.lookup_ns)

    def test_measured_m_overrides(self, model):
        program = linear_program("p", 1, MatchType.TERNARY)
        profile = uniform_profile(program)
        profile.table_m["p_t0"] = 2
        cost = model.match_cost(program.table("p_t0"), profile)
        assert cost == pytest.approx(2 * BLUEFIELD2.asic.lookup_ns)

    def test_emulated_nic_multiplier_policy(self):
        """EMULATED_NIC: ternary = 3x exact regardless of entries."""
        model = CostModel.for_target(EMULATED_NIC)
        program = linear_program("p", 1, MatchType.TERNARY)
        profile = uniform_profile(program)
        profile.table_m["p_t0"] = 7  # must be ignored
        cost = model.match_cost(program.table("p_t0"), profile)
        assert cost == pytest.approx(3 * EMULATED_NIC.asic.lookup_ns)

    def test_action_cost_weighted(self, model):
        builder = ProgramBuilder("p")
        builder.table(
            "t",
            ["f"],
            [noop_action("cheap", 1), noop_action("pricey", 5)],
        )
        program = builder.build(root="t")
        profile = RuntimeProfile()
        profile.set_action_probs("t", {"cheap": 0.8, "pricey": 0.2})
        expected = (0.8 * 1 + 0.2 * 5) * BLUEFIELD2.asic.action_ns
        assert model.action_cost(
            program.table("t"), profile
        ) == pytest.approx(expected)


class TestReachProbs:
    def test_linear_program_all_reached(self, model, chain5, chain5_profile):
        probs = model.reach_probs(chain5, chain5_profile)
        assert all(p == pytest.approx(1.0) for p in probs.values())

    def test_branching_split(self, model, branching_program):
        profile = uniform_profile(branching_program)
        profile.branch_probs["cond"] = 0.7
        probs = model.reach_probs(branching_program, profile)
        assert probs["left"] == pytest.approx(0.7)
        assert probs["right"] == pytest.approx(0.3)
        assert probs["join"] == pytest.approx(1.0)

    def test_drop_reduces_downstream(self, model, acl_program):
        profile = uniform_profile(acl_program)
        profile.set_action_probs(
            "acl0", {"acl0_deny": 0.4, "acl0_permit": 0.6}
        )
        probs = model.reach_probs(acl_program, profile)
        assert probs["acl1"] == pytest.approx(0.6)


class TestExpectedLatency:
    def test_scales_linearly_with_tables(self, model):
        p5 = linear_program("a", 5)
        p10 = linear_program("b", 10)
        l5 = model.expected_latency(p5, uniform_profile(p5))
        l10 = model.expected_latency(p10, uniform_profile(p10))
        assert l10 == pytest.approx(2 * l5)

    def test_drop_shortens_expected_latency(self, model, acl_program):
        neutral = uniform_profile(acl_program)
        for name in ("acl0", "acl1", "acl2"):
            neutral.set_action_probs(
                name, {f"{name}_deny": 0.0, f"{name}_permit": 1.0}
            )
        heavy = neutral.copy()
        heavy.set_action_probs(
            "acl0", {"acl0_deny": 0.9, "acl0_permit": 0.1}
        )
        assert model.expected_latency(
            acl_program, heavy
        ) < model.expected_latency(acl_program, neutral)

    def test_matches_emulator_linear(self, model, chain5):
        """The analytic model equals the emulator on a profile-free run."""
        emulator = NicEmulator(chain5, BLUEFIELD2, instrument=False)
        measured = emulator.run(
            [make_packet() for _ in range(10)]
        ).mean_latency_ns
        profile = uniform_profile(chain5)
        # Without entries only default actions fire.
        for i in range(5):
            profile.set_action_probs(
                f"chain5_t{i}",
                {f"chain5_t{i}_a0": 0.0, f"chain5_t{i}_a1": 1.0},
            )
        predicted = model.expected_latency(chain5, profile)
        assert predicted == pytest.approx(measured, rel=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_matches_emulator_on_synthetic_programs(self, seed):
        """Property: model(L) == emulator mean latency when the model is
        fed the emulator's own measured profile (uninstrumented run,
        default actions only)."""
        program = ProgramSynthesizer(
            SynthesisConfig(
                n_pipelets=4, seed=seed, drop_table_fraction=0.0
            )
        ).generate()
        emulator = NicEmulator(program, EMULATED_NIC, instrument=True)
        packets = [make_packet() for _ in range(40)]
        counter_cost_free = NicEmulator(
            program, EMULATED_NIC, instrument=False
        )
        measured = counter_cost_free.run(packets).mean_latency_ns
        # Re-run instrumented to learn the actual branch behaviour.
        emulator.run([make_packet() for _ in range(40)])
        from repro.core.profiling import profile_from_counts

        profile = profile_from_counts(
            program, emulator.counters.snapshot()
        )
        model = CostModel.for_target(EMULATED_NIC)
        predicted = model.expected_latency(program, profile)
        assert predicted == pytest.approx(measured, rel=0.01)


class TestMemoryAccounting:
    def test_table_memory_scales_with_m(self, model):
        program = linear_program("p", 1, MatchType.TERNARY)
        profile = uniform_profile(program)
        profile.entry_counts["p_t0"] = 10
        profile.table_m["p_t0"] = 4
        table = program.table("p_t0")
        expected = 10 * model.entry_bytes(table) * 4
        assert model.table_memory_bytes(table, profile) == expected

    def test_cache_memory_is_reserved_capacity(self, model, chain5):
        from repro.core.transform import apply_cache

        cached = apply_cache(
            chain5, ["chain5_t0", "chain5_t1"], capacity=128
        ).program
        cache_node = cached.table("cache__chain5_t0__chain5_t1")
        profile = uniform_profile(chain5)
        memory = model.table_memory_bytes(cache_node, profile)
        assert memory == 128 * model.entry_bytes(cache_node)

    def test_program_memory_sums_tables(self, model, chain5):
        profile = uniform_profile(chain5)
        for i in range(5):
            profile.entry_counts[f"chain5_t{i}"] = 2
        total = model.program_memory_bytes(chain5, profile)
        per_table = 2 * model.entry_bytes(chain5.table("chain5_t0"))
        assert total == pytest.approx(5 * per_table)


class TestCostParams:
    def test_from_core_with_counters(self):
        params = CostParams.from_core(
            BLUEFIELD2.asic, include_counters=True
        )
        assert params.counter_ns == BLUEFIELD2.asic.counter_update_ns

    def test_from_core_without_counters(self):
        params = CostParams.from_core(BLUEFIELD2.asic)
        assert params.counter_ns == 0.0
