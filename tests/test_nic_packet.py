"""Tests for packets and primitive execution."""

import pytest

from repro.errors import EmulationError
from repro.ir.actions import Action, Param, noop_action, prim
from repro.nic.packet import (
    DEFAULT_PACKET_BYTES,
    FIVE_TUPLE,
    Packet,
    ipv4,
    make_packet,
)
from repro.nic.pipeline import apply_primitive, bind_action, bind_primitive


class TestPacket:
    def test_default_size(self):
        assert make_packet().size_bytes == DEFAULT_PACKET_BYTES

    def test_get_set_header(self):
        packet = make_packet()
        packet.set("ipv4.ttl", 10)
        assert packet.get("ipv4.ttl") == 10

    def test_metadata_namespace(self):
        packet = make_packet()
        packet.set("meta.x", 5)
        assert packet.get("meta.x") == 5
        assert "meta.x" not in packet.fields
        assert packet.metadata["meta.x"] == 5

    def test_absent_field_is_none(self):
        assert make_packet().get("vxlan.vni") is None

    def test_key_uses_zero_for_absent(self):
        packet = make_packet()
        assert packet.key(("vxlan.vni", "ipv4.proto")) == (0, 6)

    def test_flow_key_five_tuple(self):
        packet = make_packet(src=1, dst=2, proto=17, sport=3, dport=4)
        assert packet.flow_key() == (1, 2, 17, 3, 4)
        assert len(FIVE_TUPLE) == 5

    def test_add(self):
        packet = make_packet()
        packet.add("ipv4.ttl", -1)
        assert packet.get("ipv4.ttl") == 63

    def test_clone_independent(self):
        packet = make_packet()
        clone = packet.clone()
        clone.set("ipv4.ttl", 1)
        clone.dropped = True
        assert packet.get("ipv4.ttl") == 64
        assert not packet.dropped

    def test_ipv4_helper(self):
        assert ipv4(10, 0, 0, 1) == 0x0A000001
        assert ipv4(255, 255, 255, 255) == 0xFFFFFFFF


class TestPrimitiveExecution:
    def test_set_field(self):
        packet = make_packet()
        apply_primitive(packet, "set_field", ("ipv4.dst", 99))
        assert packet.get("ipv4.dst") == 99

    def test_add_to_field(self):
        packet = make_packet()
        apply_primitive(packet, "add_to_field", ("ipv4.ttl", -1))
        assert packet.get("ipv4.ttl") == 63

    def test_copy_field(self):
        packet = make_packet(src=123)
        apply_primitive(packet, "copy_field", ("ipv4.dst", "ipv4.src"))
        assert packet.get("ipv4.dst") == 123

    def test_copy_missing_source_is_zero(self):
        packet = make_packet()
        apply_primitive(packet, "copy_field", ("ipv4.dst", "ghost.f"))
        assert packet.get("ipv4.dst") == 0

    def test_set_meta_normalises_prefix(self):
        packet = make_packet()
        apply_primitive(packet, "set_meta", ("vip_id", 7))
        assert packet.get("meta.vip_id") == 7

    def test_forward(self):
        packet = make_packet()
        apply_primitive(packet, "forward", (3,))
        assert packet.egress_port == 3

    def test_drop(self):
        packet = make_packet()
        apply_primitive(packet, "drop", ())
        assert packet.dropped

    def test_count_bumps_explicit_counter(self):
        counters: dict[str, int] = {}
        apply_primitive(make_packet(), "count", ("c1",), counters)
        apply_primitive(make_packet(), "count", ("c1",), counters)
        assert counters["c1"] == 2

    def test_unknown_op_raises(self):
        with pytest.raises(EmulationError):
            apply_primitive(make_packet(), "warp", ())


class TestBinding:
    def test_bind_constant_args(self):
        bound = bind_primitive(prim("set_field", "f", 1), ())
        assert bound == ("set_field", ("f", 1))

    def test_bind_param(self):
        bound = bind_primitive(
            prim("set_field", "f", Param(1)), (10, 20)
        )
        assert bound == ("set_field", ("f", 20))

    def test_bind_param_out_of_range(self):
        with pytest.raises(EmulationError):
            bind_primitive(prim("set_field", "f", Param(2)), (1,))

    def test_bind_action(self):
        action = Action(
            "a",
            (prim("set_field", "x", Param(0)), prim("no_op")),
        )
        bound = bind_action(action, (5,))
        assert bound == [("set_field", ("x", 5)), ("no_op", ())]

    def test_bind_noop_action(self):
        assert bind_action(noop_action("n", 2), ()) == [
            ("no_op", ()),
            ("no_op", ()),
        ]
