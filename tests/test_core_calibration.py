"""Tests for the §3.1 calibration methodology."""

import pytest

from repro.core.calibration import (
    CalibrationPoint,
    fit,
    measure_throughput,
    mean_deviation,
    run_suite,
    validate,
)
from repro.errors import CalibrationError
from repro.ir import linear_program
from repro.ir.tables import MatchType
from repro.nic.targets import BLUEFIELD2


@pytest.fixture(scope="module")
def suite():
    """One measured suite shared across tests (measurement is the slow
    part; fitting is instant)."""
    return run_suite(
        BLUEFIELD2,
        exact_lengths=range(8, 41, 4),
        primitive_counts=range(1, 9),
        lpm_lengths=range(8, 17, 2),
        ternary_lengths=range(8, 17, 2),
        n_packets=60,
    )


@pytest.fixture(scope="module")
def fitted(suite):
    return fit(suite)


class TestMeasurement:
    def test_throughput_decreases_with_length(self):
        t10 = measure_throughput(
            linear_program("a", 10), BLUEFIELD2, n_packets=40
        )
        t40 = measure_throughput(
            linear_program("b", 40), BLUEFIELD2, n_packets=40
        )
        assert t40 < t10

    def test_relative_latency_is_reciprocal(self):
        point = CalibrationPoint("exact", 10, 50.0)
        assert point.relative_latency == pytest.approx(0.02)

    def test_zero_throughput_rejected(self):
        with pytest.raises(CalibrationError):
            CalibrationPoint("exact", 10, 0.0).relative_latency


class TestFit:
    def test_positive_constants(self, fitted):
        assert fitted.lmat > 0
        assert fitted.lact >= 0

    def test_lmat_to_lact_ratio_recovered(self, fitted):
        """The fitted ratio should resemble the emulator's 36:4."""
        true_ratio = (
            BLUEFIELD2.asic.lookup_ns / BLUEFIELD2.asic.action_ns
        )
        assert fitted.lmat / fitted.lact == pytest.approx(
            true_ratio, rel=0.35
        )

    def test_lpm_multiplier_near_three_prefixes(self, fitted):
        """Calibration entries use 3 prefixes, so m_lpm ~ 3."""
        assert 2.0 < fitted.m_lpm < 4.5

    def test_ternary_multiplier_near_five_masks(self, fitted):
        assert 3.5 < fitted.m_ternary < 7.0

    def test_insufficient_points_rejected(self):
        with pytest.raises(CalibrationError):
            fit([CalibrationPoint("exact", 10, 50.0)])

    def test_cost_model_built_from_fit(self, fitted):
        model = fitted.cost_model()
        assert model.params.lmat_ns == fitted.lmat


class TestValidation:
    def test_figure5_mean_deviation_small(self, fitted):
        """The paper reports ~5% average deviation; we check < 15%."""
        rows = validate(fitted, BLUEFIELD2, n_packets=60)
        assert rows
        assert mean_deviation(rows) < 0.15

    def test_validation_covers_four_scenarios(self, fitted):
        rows = validate(fitted, BLUEFIELD2, n_packets=40)
        kinds = {row.scenario for row in rows}
        assert kinds == {"exact", "primitives", "lpm", "ternary"}

    def test_mean_deviation_empty(self):
        assert mean_deviation([]) == 0.0
