"""Tests for the runtime adaptation controller (§5.3)."""

import pytest

from repro.core import PipeleonController, ResourceBudget
from repro.core.controller import ControllerOptions, plan_signature
from repro.core.plan import Candidate, OptimizationPlan, Segment
from repro.core.search import SearchOptions
from repro.ir import exact_entry, linear_program
from repro.ir.tables import MatchType
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2
from repro.traffic import Scenario


def make_plan(gain=1.0):
    return OptimizationPlan(
        candidates=[
            Candidate(
                pipelet_id="pl_0",
                run=("a", "b"),
                order=("b", "a"),
                segments=(
                    Segment("none", ("b",)),
                    Segment("none", ("a",)),
                ),
                gain_ns=gain,
                memory_bytes=0.0,
                update_pps=0.0,
            )
        ]
    )


class TestPlanSignature:
    def test_ignores_gain(self):
        assert plan_signature(make_plan(1.0)) == plan_signature(
            make_plan(99.0)
        )

    def test_detects_structural_change(self):
        other = OptimizationPlan(
            candidates=[
                Candidate(
                    pipelet_id="pl_0",
                    run=("a", "b"),
                    order=("a", "b"),
                    segments=(Segment("cache", ("a", "b")),),
                    gain_ns=1.0,
                    memory_bytes=0.0,
                    update_pps=0.0,
                )
            ]
        )
        assert plan_signature(make_plan()) != plan_signature(other)

    def test_order_insensitive_across_pipelets(self):
        a = make_plan()
        b = make_plan()
        b.candidates = list(reversed(b.candidates))
        assert plan_signature(a) == plan_signature(b)


class TestController:
    def make_controller(self, enabled=True):
        program = linear_program("p", 6, MatchType.TERNARY)
        return PipeleonController(
            program,
            BLUEFIELD2,
            budget=ResourceBudget(memory_bytes=1e6, update_pps=1e5),
            search=SearchOptions(k=1.0),
            options=ControllerOptions(profile_period_s=1.0),
            enabled=enabled,
        )

    def test_first_reoptimization_applies_plan(self):
        controller = self.make_controller()
        controller.run([make_packet() for _ in range(20)])
        changed = controller.maybe_reoptimize()
        assert changed
        assert controller.current_plan is not None
        assert controller.reoptimizations == 1

    def test_stable_profile_no_redeploy(self):
        controller = self.make_controller()
        controller.run([make_packet() for _ in range(20)])
        controller.maybe_reoptimize()
        controller.run([make_packet() for _ in range(20)])
        changed = controller.maybe_reoptimize()
        assert not changed
        assert controller.reoptimizations == 1

    def test_disabled_controller_never_optimizes(self):
        controller = self.make_controller(enabled=False)
        controller.run([make_packet() for _ in range(20)])
        assert not controller.maybe_reoptimize()
        assert controller.current_plan is None

    def test_entries_survive_redeployment(self):
        controller = self.make_controller()
        program = controller.original
        table = program.table("p_t0")
        action = next(iter(table.actions))
        controller.deployment.insert_entry(
            "p_t0", exact_entry(1, action)
        )
        controller.run([make_packet() for _ in range(20)])
        controller.maybe_reoptimize()
        assert controller.control_plane.entry_count("p_t0") == 1

    def test_run_scenario_produces_timeline(self):
        controller = self.make_controller()
        scenario = Scenario("s").add_phase(
            "steady",
            5.0,
            lambda n: [make_packet() for _ in range(n)],
        )
        timeline = controller.run_scenario(
            scenario, packets_per_tick=30
        )
        assert len(timeline) == 5
        assert any(point.reoptimized for point in timeline)
        assert all(point.throughput_gbps > 0 for point in timeline)

    def test_scenario_control_action_invoked(self):
        controller = self.make_controller()
        calls = []

        def burst(deployment, time_s):
            calls.append(time_s)

        scenario = Scenario("s").add_phase(
            "phase",
            3.0,
            lambda n: [make_packet() for _ in range(n)],
            control_action=burst,
        )
        controller.run_scenario(scenario, packets_per_tick=5)
        assert len(calls) == 3
