"""Tests for the runtime adaptation controller (§5.3)."""

import pytest

from repro.core import PipeleonController, ResourceBudget
from repro.core.controller import (
    ControllerOptions,
    plan_ops,
    plan_signature,
)
from repro.core.plan import Candidate, OptimizationPlan, Segment
from repro.core.search import SearchOptions
from repro.ir import exact_entry, linear_program
from repro.ir.tables import MatchType
from repro.nic.packet import make_packet
from repro.nic.targets import BLUEFIELD2
from repro.telemetry import Telemetry
from repro.traffic import Scenario


def make_plan(gain=1.0, segments=None):
    return OptimizationPlan(
        candidates=[
            Candidate(
                pipelet_id="pl_0",
                run=("a", "b"),
                order=("b", "a"),
                segments=tuple(
                    segments
                    if segments is not None
                    else (
                        Segment("none", ("b",)),
                        Segment("none", ("a",)),
                    )
                ),
                gain_ns=gain,
                memory_bytes=0.0,
                update_pps=0.0,
            )
        ]
    )


class TestPlanSignature:
    def test_ignores_gain(self):
        assert plan_signature(make_plan(1.0)) == plan_signature(
            make_plan(99.0)
        )

    def test_detects_structural_change(self):
        other = OptimizationPlan(
            candidates=[
                Candidate(
                    pipelet_id="pl_0",
                    run=("a", "b"),
                    order=("a", "b"),
                    segments=(Segment("cache", ("a", "b")),),
                    gain_ns=1.0,
                    memory_bytes=0.0,
                    update_pps=0.0,
                )
            ]
        )
        assert plan_signature(make_plan()) != plan_signature(other)

    def test_order_insensitive_across_pipelets(self):
        a = make_plan()
        b = make_plan()
        b.candidates = list(reversed(b.candidates))
        assert plan_signature(a) == plan_signature(b)


class TestController:
    def make_controller(self, enabled=True):
        program = linear_program("p", 6, MatchType.TERNARY)
        return PipeleonController(
            program,
            BLUEFIELD2,
            budget=ResourceBudget(memory_bytes=1e6, update_pps=1e5),
            search=SearchOptions(k=1.0),
            options=ControllerOptions(profile_period_s=1.0),
            enabled=enabled,
        )

    def test_first_reoptimization_applies_plan(self):
        controller = self.make_controller()
        controller.run([make_packet() for _ in range(20)])
        changed = controller.maybe_reoptimize()
        assert changed
        assert controller.current_plan is not None
        assert controller.reoptimizations == 1

    def test_stable_profile_no_redeploy(self):
        controller = self.make_controller()
        controller.run([make_packet() for _ in range(20)])
        controller.maybe_reoptimize()
        controller.run([make_packet() for _ in range(20)])
        changed = controller.maybe_reoptimize()
        assert not changed
        assert controller.reoptimizations == 1

    def test_disabled_controller_never_optimizes(self):
        controller = self.make_controller(enabled=False)
        controller.run([make_packet() for _ in range(20)])
        assert not controller.maybe_reoptimize()
        assert controller.current_plan is None

    def test_entries_survive_redeployment(self):
        controller = self.make_controller()
        program = controller.original
        table = program.table("p_t0")
        action = next(iter(table.actions))
        controller.deployment.insert_entry(
            "p_t0", exact_entry(1, action)
        )
        controller.run([make_packet() for _ in range(20)])
        controller.maybe_reoptimize()
        assert controller.control_plane.entry_count("p_t0") == 1

    def test_run_scenario_produces_timeline(self):
        controller = self.make_controller()
        scenario = Scenario("s").add_phase(
            "steady",
            5.0,
            lambda n: [make_packet() for _ in range(n)],
        )
        timeline = controller.run_scenario(
            scenario, packets_per_tick=30
        )
        assert len(timeline) == 5
        assert any(point.reoptimized for point in timeline)
        assert all(point.throughput_gbps > 0 for point in timeline)

    def test_scenario_control_action_invoked(self):
        controller = self.make_controller()
        calls = []

        def burst(deployment, time_s):
            calls.append(time_s)

        scenario = Scenario("s").add_phase(
            "phase",
            3.0,
            lambda n: [make_packet() for _ in range(n)],
            control_action=burst,
        )
        controller.run_scenario(scenario, packets_per_tick=5)
        assert len(calls) == 3


class TestPlanOps:
    def test_none_segments_and_empty_plan_produce_no_ops(self):
        assert plan_ops(None) == set()
        assert plan_ops(make_plan()) == set()

    def test_active_ops_are_keyed_by_pipelet_op_tables(self):
        plan = make_plan(
            segments=(
                Segment("cache", ("a", "b")),
                Segment("merge", ("c",)),
            )
        )
        assert plan_ops(plan) == {
            ("pl_0", "cache", ("a", "b")),
            ("pl_0", "merge", ("c",)),
        }


def make_hysteresis_controller(telemetry=None, margin=0.1):
    program = linear_program("p", 6, MatchType.TERNARY)
    return PipeleonController(
        program,
        BLUEFIELD2,
        budget=ResourceBudget(memory_bytes=1e6, update_pps=1e5),
        search=SearchOptions(k=1.0),
        options=ControllerOptions(
            profile_period_s=1.0, replan_margin=margin
        ),
        telemetry=telemetry,
    )


class TestReplanHysteresis:
    """Decision-logic tests with the search pinned (§5.3 hysteresis)."""

    def pin_search(
        self, monkeypatch, controller, candidate, deployed_gain
    ):
        """Pin optimize() and the deployed plan's re-evaluated gain."""
        monkeypatch.setattr(
            "repro.core.controller.optimize",
            lambda *args, **kwargs: candidate,
        )
        monkeypatch.setattr(
            "repro.core.controller.evaluate_plan_gain",
            lambda *args, **kwargs: deployed_gain,
        )
        # The plan structures are synthetic (tables "a"/"b" are not in
        # the program), so redeployment is stubbed out: these tests pin
        # the accept/reject decision, not plan materialisation.
        applied = []
        monkeypatch.setattr(
            controller, "_redeploy", lambda plan: applied.append(plan)
        )
        return applied

    def test_within_margin_keeps_deployed_plan(self, monkeypatch):
        telemetry = Telemetry()
        controller = make_hysteresis_controller(telemetry, margin=0.1)
        controller.current_plan = make_plan(
            gain=100.0, segments=(Segment("cache", ("a", "b")),)
        )
        # Structurally different, 5% better: below the 10% margin.
        candidate = make_plan(gain=105.0)
        applied = self.pin_search(
            monkeypatch, controller, candidate, deployed_gain=100.0
        )
        controller.run([make_packet() for _ in range(20)])
        assert not controller.maybe_reoptimize()
        assert not applied
        rejected = telemetry.events.last("replan_rejected")
        assert rejected is not None
        assert rejected["margin"] == 0.1
        assert rejected["current_gain_ns"] == 100.0
        assert rejected["candidate_gain_ns"] == 105.0
        assert rejected["threshold_ns"] == pytest.approx(110.0)
        assert telemetry.events.last("replan_accepted") is None

    def test_beyond_margin_redeploys(self, monkeypatch):
        telemetry = Telemetry()
        controller = make_hysteresis_controller(telemetry, margin=0.1)
        controller.current_plan = make_plan(gain=100.0)
        candidate = make_plan(
            gain=150.0, segments=(Segment("cache", ("a",)),)
        )
        applied = self.pin_search(
            monkeypatch, controller, candidate, deployed_gain=100.0
        )
        controller.run([make_packet() for _ in range(20)])
        assert controller.maybe_reoptimize()
        assert applied == [candidate]
        accepted = telemetry.events.last("replan_accepted")
        assert accepted is not None
        assert accepted["gain_ns"] == 150.0
        assert telemetry.events.last("replan_rejected") is None

    def test_negative_deployed_gain_does_not_invert_margin(
        self, monkeypatch
    ):
        # Regression: the hysteresis threshold used to be
        # current_gain * (1 + margin) even when the deployed plan
        # re-evaluated *negative* under the fresh profile — which
        # LOWERS the bar below the deployed gain (margin inverted) yet
        # still rejected modest positive candidates relative to zero.
        # A regressing deployed plan must not be sticky: any
        # positive-gain candidate displaces it.
        telemetry = Telemetry()
        controller = make_hysteresis_controller(telemetry, margin=0.1)
        controller.current_plan = make_plan(
            gain=100.0, segments=(Segment("cache", ("a", "b")),)
        )
        candidate = make_plan(gain=5.0)
        applied = self.pin_search(
            monkeypatch, controller, candidate, deployed_gain=-50.0
        )
        controller.run([make_packet() for _ in range(20)])
        assert controller.maybe_reoptimize()
        assert applied == [candidate]
        accepted = telemetry.events.last("replan_accepted")
        assert accepted is not None and accepted["gain_ns"] == 5.0

    def test_negative_gains_on_both_sides_keeps_deployed(
        self, monkeypatch
    ):
        # The floor is at zero: a candidate that is itself negative
        # still loses to the (floored) threshold, so churn between two
        # bad plans is suppressed and the rejection event records the
        # floored threshold.
        telemetry = Telemetry()
        controller = make_hysteresis_controller(telemetry, margin=0.1)
        controller.current_plan = make_plan(
            gain=100.0, segments=(Segment("cache", ("a", "b")),)
        )
        candidate = make_plan(gain=-5.0)
        applied = self.pin_search(
            monkeypatch, controller, candidate, deployed_gain=-50.0
        )
        controller.run([make_packet() for _ in range(20)])
        assert not controller.maybe_reoptimize()
        assert not applied
        rejected = telemetry.events.last("replan_rejected")
        assert rejected is not None
        assert rejected["current_gain_ns"] == -50.0
        assert rejected["threshold_ns"] == pytest.approx(0.0, abs=1e-6)

    def test_zero_margin_accepts_any_improvement(self, monkeypatch):
        controller = make_hysteresis_controller(margin=0.0)
        controller.current_plan = make_plan(gain=100.0)
        candidate = make_plan(
            gain=100.5, segments=(Segment("cache", ("a",)),)
        )
        applied = self.pin_search(
            monkeypatch, controller, candidate, deployed_gain=100.0
        )
        controller.run([make_packet() for _ in range(20)])
        assert controller.maybe_reoptimize()
        assert applied == [candidate]

    def test_identical_signature_never_redeploys(self, monkeypatch):
        # Same structure, wildly better gain estimate: no-op, and no
        # accept/reject event (hysteresis only arbitrates real changes).
        telemetry = Telemetry()
        controller = make_hysteresis_controller(telemetry)
        controller.current_plan = make_plan(gain=1.0)
        applied = self.pin_search(
            monkeypatch,
            controller,
            make_plan(gain=1000.0),
            deployed_gain=1.0,
        )
        controller.run([make_packet() for _ in range(20)])
        assert not controller.maybe_reoptimize()
        assert not applied
        assert telemetry.events.last("replan_accepted") is None
        assert telemetry.events.last("replan_rejected") is None

    def test_dropped_cache_and_reversed_merge_are_logged(
        self, monkeypatch
    ):
        telemetry = Telemetry()
        controller = make_hysteresis_controller(telemetry)
        controller.current_plan = make_plan(
            gain=10.0,
            segments=(
                Segment("cache", ("a", "b")),
                Segment("merge", ("c", "d")),
            ),
        )
        candidate = make_plan(
            gain=100.0, segments=(Segment("cache", ("b",)),)
        )
        self.pin_search(
            monkeypatch, controller, candidate, deployed_gain=10.0
        )
        controller.run([make_packet() for _ in range(20)])
        assert controller.maybe_reoptimize()
        dropped = telemetry.events.last("cache_dropped")
        assert dropped["pipelet"] == "pl_0"
        assert dropped["tables"] == ["a", "b"]
        reversed_ = telemetry.events.last("merge_reversed")
        assert reversed_["pipelet"] == "pl_0"
        assert reversed_["tables"] == ["c", "d"]


class TestControllerTelemetry:
    def test_decisions_land_in_event_log_and_registry(self):
        telemetry = Telemetry()
        controller = make_hysteresis_controller(telemetry)
        controller.run([make_packet() for _ in range(20)])
        assert controller.maybe_reoptimize()
        kinds = {e["kind"] for e in telemetry.events.events()}
        assert "profile_collected" in kinds
        assert "replan_accepted" in kinds
        assert "redeploy" in kinds
        profiled = telemetry.events.last("profile_collected")
        assert profiled["offered_pps"] > 0
        accepted = telemetry.events.last("replan_accepted")
        assert "signature" in accepted and "plan" in accepted
        assert telemetry.registry.value(
            "pipeleon_controller_decisions_total",
            kind="replan_accepted",
        ) == 1.0
        # Stable second round: profile collected again, no new accept.
        controller.run([make_packet() for _ in range(20)])
        assert not controller.maybe_reoptimize()
        assert telemetry.registry.value(
            "pipeleon_controller_decisions_total",
            kind="profile_collected",
        ) == 2.0
        assert telemetry.registry.value(
            "pipeleon_controller_decisions_total",
            kind="replan_accepted",
        ) == 1.0

    def test_controller_without_telemetry_is_silent_noop(self):
        controller = make_hysteresis_controller(telemetry=None)
        controller.run([make_packet() for _ in range(20)])
        assert controller.maybe_reoptimize()
        assert controller.telemetry is None
