"""Tests for flow caches, token buckets, and counter banks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nic.counters import (
    CounterBank,
    action_counter,
    branch_counter,
    cache_counter,
)
from repro.nic.flow_cache import FlowCache, TokenBucket


class TestTokenBucket:
    def test_allows_up_to_burst(self):
        bucket = TokenBucket(rate_per_s=10, burst=3)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_per_s=10, burst=1)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert bucket.allow(0.2)  # 2 tokens refilled, capped at burst 1

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0)


class TestFlowCache:
    def test_lookup_miss_then_hit(self):
        cache = FlowCache(capacity=4)
        assert cache.lookup(("k",)) is None
        cache.insert(("k",), (("no_op", ()),), now_s=0.0)
        assert cache.lookup(("k",)) == (("no_op", ()),)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = FlowCache(capacity=2)
        cache.insert("a", (), 0.0)
        cache.insert("b", (), 0.0)
        cache.lookup("a")  # refresh a
        cache.insert("c", (), 0.0)  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_capacity_never_exceeded(self):
        cache = FlowCache(capacity=8)
        for i in range(100):
            cache.insert(i, (), 0.0)
        assert len(cache) == 8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    def test_capacity_invariant_property(self, ops):
        cache = FlowCache(capacity=5)
        for i, key in enumerate(ops):
            if key % 3 == 0:
                cache.lookup(key)
            else:
                cache.insert(key, (), float(i))
            assert len(cache) <= 5

    def test_insertion_rate_limit(self):
        cache = FlowCache(capacity=100, insertion_limit_pps=1.0)
        # burst = 1 token; only the first immediate insert succeeds.
        assert cache.insert("a", (), 0.0)
        assert not cache.insert("b", (), 0.0)
        assert cache.stats.rejected_insertions == 1
        assert cache.insert("c", (), 2.0)  # refilled after 2s

    def test_invalidate_all(self):
        cache = FlowCache(capacity=4)
        cache.insert("a", (), 0.0)
        cache.insert("b", (), 0.0)
        assert cache.invalidate_all() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_reinsert_updates_value(self):
        cache = FlowCache(capacity=4)
        cache.insert("a", (("no_op", ()),), 0.0)
        cache.insert("a", (("drop", ()),), 0.0)
        assert cache.lookup("a") == (("drop", ()),)
        assert len(cache) == 1

    def test_hit_rate(self):
        cache = FlowCache(capacity=4)
        cache.insert("a", (), 0.0)
        cache.lookup("a")
        cache.lookup("b")
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlowCache(capacity=0)


class TestCounterBank:
    def test_bump_and_read(self):
        bank = CounterBank()
        key = action_counter("t1", "a0")
        bank.bump(key, 512)
        bank.bump(key, 512)
        assert bank.packets(key) == 2
        assert bank.snapshot()[key] == 2

    def test_counter_key_helpers_distinct(self):
        assert action_counter("t", "a") != branch_counter("t", True)
        assert branch_counter("c", True) != branch_counter("c", False)
        assert cache_counter("x", True) == ("cache", "x", "hit")

    def test_sampling_stride(self):
        bank = CounterBank(sample_stride=4)
        sampled = [bank.begin_packet() for _ in range(8)]
        assert sampled == [True, False, False, False] * 2

    def test_scaled_counts(self):
        bank = CounterBank(sample_stride=10)
        key = action_counter("t", "a")
        for _ in range(30):
            if bank.begin_packet():
                bank.bump(key)
        assert bank.packets(key) == 3
        assert bank.scaled_packets(key) == 30
        assert bank.snapshot()[key] == 30

    def test_reset(self):
        bank = CounterBank()
        bank.begin_packet()
        bank.bump(action_counter("t", "a"))
        bank.reset()
        assert bank.snapshot() == {}
        assert bank.begin_packet()  # stride restarts

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            CounterBank(sample_stride=0)
