"""Regression: fast-path replay under mid-stream control-plane updates.

The compiled engine caches per-node step closures; control-plane
activity between batches (entry inserts/deletes, cache flushes) must
trigger recompilation so replay stays bit-identical to the reference
interpreter across the update. Each phase below lands an update between
two replay calls and compares everything observable afterwards.
"""

import pytest

from repro.apps import l2l3_acl
from repro.core import Deployment
from repro.ir.entries import ExactValue, TableEntry
from repro.nic.stats import RunStats
from repro.nic.targets import BLUEFIELD2, EMULATED_NIC
from repro.traffic.flows import synth_flows
from repro.traffic.generator import TrafficGenerator


def app_packets(seed: int, n: int = 150):
    flows = synth_flows(48) + synth_flows(16, dport=6666)
    return list(
        TrafficGenerator(seed).stream(flows, n, locality="zipf")
    )


def fingerprint(stats: RunStats) -> tuple:
    return (
        stats.packets,
        stats.dropped,
        stats.migrations,
        stats.total_latency_ns,
        stats.total_bytes,
        stats._latencies,
        stats._busy_ns,
    )


def assert_state_identical(interp: Deployment, fast: Deployment):
    em_a, em_b = interp.emulator, fast.emulator
    assert em_a.counters.snapshot() == em_b.counters.snapshot()
    assert em_a.explicit_counters == em_b.explicit_counters
    for name, cache in em_a.flow_caches.items():
        other = em_b.flow_caches[name]
        assert dict(cache._store) == dict(other._store)
        assert (
            cache.stats.hits,
            cache.stats.misses,
            cache.stats.insertions,
            cache.stats.invalidations,
        ) == (
            other.stats.hits,
            other.stats.misses,
            other.stats.insertions,
            other.stats.invalidations,
        )


def make_twins(target):
    pair = []
    for _ in range(2):
        deployment = Deployment(l2l3_acl.build_program(), target)
        l2l3_acl.install_base_entries(deployment.control_plane)
        pair.append(deployment)
    return pair


@pytest.mark.parametrize(
    "target", [BLUEFIELD2, EMULATED_NIC], ids=lambda t: t.name
)
def test_updates_between_batches_stay_identical(target):
    interp, fast = make_twins(target)

    def both_phases(seed):
        reference = interp.run(app_packets(seed), offered_pps=1e6)
        replayed = fast.replay(
            app_packets(seed), offered_pps=1e6, batch=32
        )
        assert fingerprint(replayed) == fingerprint(reference)

    both_phases(21)
    # Insert: deny a previously-allowed port mid-stream.
    deny = TableEntry((ExactValue(80),), "acl_deny")
    inserted = [
        deployment.insert_entry("l2l3_acl", deny.clone())
        for deployment in (interp, fast)
    ]
    both_phases(22)
    # Delete: lift the deny again.
    for deployment, entry_id in zip((interp, fast), inserted):
        deployment.delete_entry("l2l3_acl", entry_id)
    both_phases(23)
    # Flush: cold-start every cache without touching entries.
    for deployment in (interp, fast):
        deployment.control_plane.flush_caches()
        for cache in deployment.emulator.flow_caches.values():
            assert len(cache) == 0
    both_phases(24)
    assert_state_identical(interp, fast)


def test_flush_event_reaches_native_cache():
    from repro.nic.emulator import NicEmulator
    from repro.nic.targets import AGILIO_CX

    deployment = Deployment(
        l2l3_acl.build_program(), AGILIO_CX, native_cache=True
    )
    l2l3_acl.install_base_entries(deployment.control_plane)
    deployment.replay(app_packets(2, n=100))
    emulator = deployment.emulator
    assert isinstance(emulator, NicEmulator)
    assert emulator.native_cache is not None
    assert len(emulator.native_cache) > 0
    deployment.control_plane.flush_caches()
    assert len(emulator.native_cache) == 0


def test_drop_behaviour_actually_changes_after_insert():
    """The mid-stream update is observable, not a no-op."""
    interp, fast = make_twins(EMULATED_NIC)
    before_interp = interp.run(app_packets(31), offered_pps=1e6)
    before_fast = fast.replay(app_packets(31), offered_pps=1e6)
    assert before_fast.dropped == before_interp.dropped
    deny = TableEntry((ExactValue(80),), "acl_deny")
    for deployment in (interp, fast):
        deployment.insert_entry("l2l3_acl", deny.clone())
    after_interp = interp.run(app_packets(31), offered_pps=1e6)
    after_fast = fast.replay(app_packets(31), offered_pps=1e6)
    assert after_fast.dropped > before_fast.dropped
    assert after_fast.dropped == after_interp.dropped
