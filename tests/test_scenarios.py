"""Scenario boundary semantics + the string-seeded scenario library.

Covers the PR's boundary bugfix — fsum-exact cumulative boundaries, an
explicit end boundary, zero-duration phases — plus control-action
ordering against stream delivery in the controller loop, and the
determinism contract of the named scenario builders.
"""

import math

import pytest

from repro.core import PipeleonController
from repro.core.controller import ControllerOptions
from repro.ir import linear_program
from repro.ir.tables import MatchType
from repro.nic.targets import BLUEFIELD2
from repro.traffic import (
    SCENARIO_BUILDERS,
    Scenario,
    build_scenario,
    rolling_update_action,
    scenario_names,
)


def phases(*durations):
    scenario = Scenario("t")
    for index, duration in enumerate(durations):
        scenario.add_phase(f"p{index}", duration, lambda n: [])
    return scenario


class TestBoundaries:
    def test_boundaries_are_fsum_prefixes(self):
        scenario = phases(*([0.1] * 30))
        bounds = scenario.boundaries()
        assert len(bounds) == 30
        for index, bound in enumerate(bounds):
            assert bound == math.fsum([0.1] * (index + 1))
        assert scenario.total_duration_s == bounds[-1]

    def test_no_accumulation_drift_near_edges(self):
        # 0.1 is not representable in binary; a naive running sum
        # misplaces some boundary eventually. Every exact boundary
        # must belong to the *following* phase (half-open intervals).
        scenario = phases(*([0.1] * 30))
        bounds = scenario.boundaries()
        for index in range(29):
            assert (
                scenario.phase_index_at(bounds[index]) == index + 1
            ), f"boundary {index} misattributed"

    def test_end_boundary_is_explicit(self):
        scenario = phases(2.5, 2.5)
        assert scenario.phase_index_at(5.0) == 1
        assert scenario.phase_at(5.0).name == "p1"
        assert scenario.phase_at(5.0 + 1e-9) is None
        # The final tick of an end-inclusive driver (tick at exactly
        # total_duration_s) is never dropped.
        fractional = phases(*([0.1] * 30))
        assert fractional.phase_at(fractional.total_duration_s) is not None

    def test_end_boundary_skips_trailing_zero_phases(self):
        scenario = phases(1.0, 0.0, 0.0)
        assert scenario.phase_index_at(1.0) == 0
        scenario_mixed = phases(1.0, 0.0, 2.0, 0.0)
        assert scenario_mixed.phase_index_at(3.0) == 2

    def test_zero_duration_phase_owns_no_time(self):
        scenario = phases(1.0, 0.0, 1.0)
        assert scenario.phase_index_at(1.0) == 2
        assert [p.name for _t, p in scenario.ticks()] == ["p0", "p2"]

    def test_all_zero_durations(self):
        scenario = phases(0.0, 0.0)
        assert scenario.total_duration_s == 0.0
        assert scenario.phase_at(0.0) is None
        assert list(scenario.ticks()) == []

    def test_negative_time_and_empty(self):
        assert phases(1.0).phase_at(-0.5) is None
        assert Scenario("empty").phase_at(0.0) is None

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            Scenario("bad").add_phase("p", -1.0, lambda n: [])

    def test_boundaries_memoized_and_invalidated(self):
        scenario = phases(1.0, 2.0)
        first = scenario.boundaries()
        assert scenario.boundaries() is first
        scenario.add_phase("late", 3.0, lambda n: [])
        assert scenario.boundaries() == (1.0, 3.0, 6.0)

    def test_fractional_phases_get_full_tick_share(self):
        # Seed semantics: a phase starting mid-second begins at the
        # next whole tick and still gets duration_s worth of ticks.
        scenario = phases(1.5, 0.5)
        assert [(t, p.name) for t, p in scenario.ticks()] == [
            (0.0, "p0"),
            (1.0, "p0"),
            (2.0, "p1"),
        ]


class TestControlActionOrdering:
    def test_action_runs_before_stream_every_tick(self):
        log = []

        def action(deployment, time_s):
            log.append(("action", time_s))

        def stream(n, _phase="a"):
            log.append(("stream", len(log)))
            return []

        scenario = Scenario("order").add_phase(
            "a", 3, stream, control_action=action
        )
        controller = PipeleonController(
            linear_program("p", 4, MatchType.TERNARY),
            BLUEFIELD2,
            options=ControllerOptions(profile_period_s=100.0),
            enabled=False,
        )
        controller.run_scenario(scenario, packets_per_tick=5)
        kinds = [kind for kind, _ in log]
        # Strict alternation: the tick's control-plane mutation is
        # visible to the data plane before the tick's packets replay.
        assert kinds == ["action", "stream"] * 3
        assert [t for kind, t in log if kind == "action"] == [
            0.0,
            1.0,
            2.0,
        ]


class TestScenarioLibrary:
    def packet_keys(self, scenario, per_tick=20):
        keys = []
        for _t, phase in scenario.ticks():
            for packet in phase.stream_factory(per_tick):
                f = packet.fields
                keys.append(
                    (f["ipv4.src"], f["ipv4.dst"], f["l4.dport"])
                )
        return keys

    @pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
    def test_same_seed_is_bit_stable(self, name):
        first = self.packet_keys(build_scenario(name, seed="42"))
        second = self.packet_keys(build_scenario(name, seed="42"))
        assert first == second
        assert first  # every builder actually emits traffic

    @pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
    def test_different_seed_differs(self, name):
        a = self.packet_keys(build_scenario(name, seed="1"))
        b = self.packet_keys(build_scenario(name, seed="2"))
        assert a != b

    def test_names_and_unknown(self):
        assert scenario_names() == sorted(SCENARIO_BUILDERS)
        with pytest.raises(ValueError, match="Unknown scenario"):
            build_scenario("nope")

    def test_builder_kwargs_shape_phases(self):
        scenario = build_scenario(
            "flash_crowd", seed="7", steady_s=2, spike_s=1, decay_s=1
        )
        assert [p.duration_s for p in scenario.phases] == [2, 1, 1]
        assert [p.name for p in scenario.phases] == [
            "steady",
            "spike",
            "decay",
        ]

    def test_ddos_burst_attack_is_drop_heavy(self):
        scenario = build_scenario("ddos_burst", seed="3")
        attack = scenario.phases[1]
        packets = list(attack.stream_factory(400))
        denied = sum(
            1 for p in packets if p.fields["l4.dport"] == 6666
        )
        assert 0.7 <= denied / len(packets) <= 0.9

    def test_rolling_update_action_churns_without_growth(self):
        from repro.apps import EXAMPLE_APPS
        from repro.core import Deployment

        def ids(snapshot):
            return {
                name: {entry.entry_id for entry in entries}
                for name, entries in snapshot.items()
            }

        build, install = EXAMPLE_APPS["l2l3_acl"]
        deployment = Deployment(build(), BLUEFIELD2)
        install(deployment.control_plane)
        control_plane = deployment.control_plane
        before = ids(control_plane.snapshot())
        action = rolling_update_action(entries_per_tick=4)
        action(deployment, 0.0)
        after = ids(control_plane.snapshot())
        # Replace-in-place: occupancy identical everywhere, but
        # exactly one table had 4 entries deleted and reinserted.
        assert {n: len(s) for n, s in after.items()} == {
            n: len(s) for n, s in before.items()
        }
        churned = {n for n in before if after[n] != before[n]}
        assert len(churned) == 1
        target = churned.pop()
        assert len(before[target] - after[target]) == 4
        # The churn sustains across ticks without growing the table.
        action(deployment, 1.0)
        final = control_plane.snapshot()
        assert len(final[target]) == len(before[target])

    def test_update_storm_bumps_update_rate(self):
        scenario = build_scenario(
            "update_storm", seed="5", calm_s=1, storm_s=2, settle_s=1
        )
        actions = [p.control_action for p in scenario.phases]
        assert actions[0] is None
        assert actions[1] is not None
        assert actions[2] is None
