"""Flow specifications: deterministic five-tuples and their packets."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from repro.nic.packet import DEFAULT_PACKET_BYTES, Packet, ipv4, make_packet


@dataclass(frozen=True)
class FlowSpec:
    """A five-tuple plus optional extra header fields."""

    src: int
    dst: int
    proto: int = 6
    sport: int = 1234
    dport: int = 80
    extra: tuple[tuple[str, int], ...] = ()

    def packet(self, size_bytes: int = DEFAULT_PACKET_BYTES) -> Packet:
        return make_packet(
            src=self.src,
            dst=self.dst,
            proto=self.proto,
            sport=self.sport,
            dport=self.dport,
            size_bytes=size_bytes,
            extra=dict(self.extra),
        )

    def fill(
        self, packet: Packet, size_bytes: int = DEFAULT_PACKET_BYTES
    ) -> Packet:
        """Rewrite ``packet`` in place into this flow's packet.

        Equivalent to :meth:`packet` but reuses an existing (e.g.
        pooled) object; the header template is memoized per flow so
        repeated fills are one dict update.
        """
        packet.reset(size_bytes)
        packet.fields.update(_field_template(self))
        return packet

    def flow_key(self) -> tuple[int, int, int, int, int]:
        """The five-tuple in canonical (``FIVE_TUPLE``) field order.

        Matches ``Packet.flow_key()`` for this flow's packets, so shard
        assignment can be computed from the spec without materialising
        a packet.
        """
        return (self.src, self.dst, self.proto, self.sport, self.dport)

    def with_fields(self, **fields: int) -> "FlowSpec":
        merged = dict(self.extra)
        merged.update(fields)
        return FlowSpec(
            self.src,
            self.dst,
            self.proto,
            self.sport,
            self.dport,
            tuple(sorted(merged.items())),
        )


@lru_cache(maxsize=65536)
def _field_template(flow: FlowSpec) -> dict[str, int]:
    """The flow's full header map (treat as immutable — it's shared)."""
    return dict(flow.packet().fields)


def synth_flow(index: int, dport: int = 80) -> FlowSpec:
    """Deterministic distinct flow for a given index."""
    return FlowSpec(
        src=ipv4(10, (index >> 16) & 0xFF, (index >> 8) & 0xFF, index & 0xFF),
        dst=ipv4(192, 168, (index >> 8) & 0xFF, index & 0xFF),
        proto=6,
        sport=1024 + (index % 50000),
        dport=dport,
    )


def synth_flows(count: int, dport: int = 80) -> list[FlowSpec]:
    return [synth_flow(i, dport) for i in range(count)]
