"""Timed workload scenarios for runtime-adaptation experiments (§5.3).

A scenario is a sequence of phases; each phase supplies a packet stream
factory and optional control-plane activity (e.g. an entry-insertion
burst). The controller benches — and the always-on adaptation service
(``repro serve``) — step the scenario second by second, re-profiling
and re-optimizing as the paper's runtime does.

Phase boundaries are precomputed **once** as exactly-rounded cumulative
sums (``math.fsum`` prefixes), so long multi-phase scenarios cannot
misattribute ticks near phase edges to per-call float accumulation
drift. The end boundary is explicit: ``phase_at(total_duration_s)``
returns the final (positive-duration) phase instead of ``None``, and
interior boundaries belong to the *following* phase (half-open
``[start, end)`` intervals). Zero-duration phases never own any time.

The module also ships a **scenario library**: named, string-seeded
builders for the fleet-scale workload shapes ROADMAP item 5 calls for
— diurnal Zipf drift, flash crowds, DDoS-style drop-heavy bursts,
tenant churn, and rolling control-plane update storms. Like
:class:`~repro.nic.faults.FaultPlan`, every builder derives all of its
randomness from ``random.Random`` seeded with a *string* key (string
seeding hashes with SHA-512), so a scenario is a pure function of
``(name, seed, parameters)`` — identical across processes and
``PYTHONHASHSEED`` values, which is what the serve-mode bit-identity
tests pin.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.nic.packet import Packet

#: Called once per emulated second with (control_plane_like, time_s).
ControlAction = Callable[[object, float], None]
#: Yields the packets offered during one emulated second.
StreamFactory = Callable[[int], Iterable[Packet]]

#: Epsilon guard for tick-vs-boundary comparisons in :meth:`Scenario.
#: ticks` (fractional durations only; boundaries themselves are exact).
_TICK_EPS = 1e-9


@dataclass
class Phase:
    """One period of stable workload behaviour."""

    name: str
    duration_s: float
    stream_factory: StreamFactory
    control_action: Optional[ControlAction] = None


@dataclass
class Scenario:
    """An ordered list of phases plus bookkeeping helpers."""

    name: str
    phases: list[Phase] = field(default_factory=list)
    #: Memoized (durations, cumulative fsum boundaries); invalidated
    #: whenever the phase durations change.
    _bounds_cache: Optional[tuple[tuple[float, ...], tuple[float, ...]]] = (
        field(default=None, repr=False, compare=False)
    )

    def add_phase(
        self,
        name: str,
        duration_s: float,
        stream_factory: StreamFactory,
        control_action: Optional[ControlAction] = None,
    ) -> "Scenario":
        if duration_s < 0:
            raise ValueError(
                f"Phase {name!r} duration must be >= 0, got {duration_s}"
            )
        self.phases.append(
            Phase(name, duration_s, stream_factory, control_action)
        )
        return self

    # -- boundaries ----------------------------------------------------------

    def boundaries(self) -> tuple[float, ...]:
        """Cumulative phase end times, exactly rounded.

        ``boundaries()[i]`` is ``fsum`` of the first ``i+1`` durations —
        each prefix is independently exactly-rounded, so boundary ``k``
        carries no accumulated error from boundaries before it, and the
        last boundary equals :attr:`total_duration_s` bit for bit.
        Computed once and memoized against the duration tuple.
        """
        durations = tuple(p.duration_s for p in self.phases)
        cached = self._bounds_cache
        if cached is not None and cached[0] == durations:
            return cached[1]
        bounds = tuple(
            math.fsum(durations[: i + 1])
            for i in range(len(durations))
        )
        self._bounds_cache = (durations, bounds)
        return bounds

    @property
    def total_duration_s(self) -> float:
        bounds = self.boundaries()
        return bounds[-1] if bounds else 0.0

    def phase_index_at(self, time_s: float) -> Optional[int]:
        """Index of the phase owning ``time_s``, or ``None`` outside.

        Intervals are half-open ``[start, end)``: an interior boundary
        belongs to the phase that *starts* there, and zero-duration
        phases (empty intervals) never own any time. The end boundary
        is explicit: exactly ``total_duration_s`` maps to the last
        positive-duration phase, so the final tick of an
        end-inclusive driver is never silently dropped.
        """
        bounds = self.boundaries()
        if not bounds or time_s < 0.0:
            return None
        if time_s == bounds[-1]:
            for index in range(len(self.phases) - 1, -1, -1):
                if self.phases[index].duration_s > 0:
                    return index
            return None
        index = bisect_right(bounds, time_s)
        return index if index < len(self.phases) else None

    def phase_at(self, time_s: float) -> Optional[Phase]:
        index = self.phase_index_at(time_s)
        return None if index is None else self.phases[index]

    def ticks(self) -> Iterator[tuple[float, Phase]]:
        """Yield ``(time_s, phase)`` once per emulated second.

        Tick times are exact integers — the counter is an int, so
        there is no float accumulation across phases. A phase whose
        predecessor ended mid-second starts at the next whole tick and
        still receives its full duration's worth of ticks (each
        phase's end is ``start_tick + duration_s``, one addition).
        """
        tick = 0
        for phase in self.phases:
            end = tick + phase.duration_s
            while tick < end - _TICK_EPS:
                yield float(tick), phase
                tick += 1

    def describe(self) -> list[str]:
        return [
            f"{phase.name}:{phase.duration_s:g}s"
            + ("+ctl" if phase.control_action is not None else "")
            for phase in self.phases
        ]


# ---------------------------------------------------------------------------
# Scenario library: named, string-seeded workload shapes
# ---------------------------------------------------------------------------


def _seeded_generator(name: str, seed: str, part: str):
    """A TrafficGenerator keyed by a string-hashed scenario seed."""
    import random

    from repro.traffic.generator import TrafficGenerator

    rng = random.Random(f"scenario:{name}:{seed}:{part}")
    return TrafficGenerator(seed=rng.randrange(2**31))


def _tenant_flows(tenant: int, count: int, dport: int = 80):
    """Deterministic, disjoint per-tenant flow blocks."""
    from repro.traffic.flows import synth_flow

    base = (tenant + 1) * 100_000
    return [synth_flow(base + i, dport=dport) for i in range(count)]


def rolling_update_action(
    entries_per_tick: int = 8,
    table: Optional[str] = None,
) -> ControlAction:
    """A control action that rides a rolling update storm.

    Each invocation replaces ``entries_per_tick`` existing entries of
    the target table (the most populated table when ``table`` is not
    given) in place: delete, then reinsert a clone. Every replacement
    is two control-plane updates, so the table's measured update rate
    climbs and covering caches are invalidated, while match semantics
    and table occupancy never change — and no match engine ever sees a
    duplicate key, so this is safe on exact, ternary and LPM tables
    alike. Because replaced entries re-enter at the back of the
    table's iteration order, successive ticks naturally rotate through
    the whole table.
    """

    def action(deployment, time_s: float) -> None:
        control_plane = getattr(
            deployment, "control_plane", deployment
        )
        snapshot = control_plane.snapshot()
        candidates = {
            name: entries
            for name, entries in snapshot.items()
            if entries and (table is None or name == table)
        }
        if not candidates:
            return
        target = max(candidates, key=lambda n: len(candidates[n]))
        from repro.errors import TableFullError

        for entry in candidates[target][:entries_per_tick]:
            control_plane.delete_entry(target, entry.entry_id)
            try:
                control_plane.insert_entry(target, entry.clone())
            except TableFullError:
                break

    return action


def diurnal_zipf(
    seed: str = "0",
    hours: int = 6,
    hour_s: float = 4.0,
    n_flows: int = 192,
) -> Scenario:
    """Zipf skew drifting through an emulated day.

    Traffic locality swings sinusoidally between near-uniform
    (overnight, cold caches) and heavily concentrated (peak hours, hot
    caches): the workload shift §5.3's periodic re-optimization is
    built to chase.
    """
    if hours < 1:
        raise ValueError("hours must be >= 1")
    from repro.traffic.flows import synth_flows

    flows = synth_flows(n_flows)
    scenario = Scenario(f"diurnal_zipf[{seed}]")
    for hour in range(hours):
        swing = math.sin(math.pi * hour / max(1, hours - 1))
        skew = round(0.4 + 1.2 * swing, 3)
        generator = _seeded_generator(
            "diurnal_zipf", seed, f"h{hour}"
        )

        def stream(n: int, g=generator, s=skew):
            return g.stream(flows, n, locality="zipf", zipf_skew=s)

        scenario.add_phase(f"h{hour:02d}(skew={skew})", hour_s, stream)
    return scenario


def flash_crowd(
    seed: str = "0",
    steady_s: float = 6.0,
    spike_s: float = 4.0,
    decay_s: float = 4.0,
    n_flows: int = 256,
    hot_flows: int = 8,
) -> Scenario:
    """A sudden crowd: uniform baseline, then 90% of traffic on a
    handful of flows, then a half-decayed tail."""
    from repro.traffic.flows import synth_flows

    flows = synth_flows(n_flows)
    hot = flows[:hot_flows]
    steady_gen = _seeded_generator("flash_crowd", seed, "steady")
    spike_gen = _seeded_generator("flash_crowd", seed, "spike")
    decay_gen = _seeded_generator("flash_crowd", seed, "decay")
    return (
        Scenario(f"flash_crowd[{seed}]")
        .add_phase(
            "steady", steady_s, lambda n: steady_gen.stream(flows, n)
        )
        .add_phase(
            "spike",
            spike_s,
            lambda n: spike_gen.mixed_stream(
                [(hot, 0.9), (flows, 0.1)], n
            ),
        )
        .add_phase(
            "decay",
            decay_s,
            lambda n: decay_gen.mixed_stream(
                [(hot, 0.45), (flows, 0.55)], n
            ),
        )
    )


def ddos_burst(
    seed: str = "0",
    pre_s: float = 5.0,
    attack_s: float = 5.0,
    post_s: float = 4.0,
    attack_drop_rate: float = 0.8,
) -> Scenario:
    """A drop-heavy attack burst between clean periods.

    Attack traffic rides the conventional deny port (6666, the port
    the example apps' ACL stages deny), so the drop rate the data
    plane observes tracks ``attack_drop_rate`` — the drop-rate shift
    that makes ACL reordering profitable mid-run.
    """
    from repro.traffic.generator import drop_rate_stream

    pre_gen = _seeded_generator("ddos_burst", seed, "pre")
    attack_gen = _seeded_generator("ddos_burst", seed, "attack")
    post_gen = _seeded_generator("ddos_burst", seed, "post")
    return (
        Scenario(f"ddos_burst[{seed}]")
        .add_phase(
            "pre",
            pre_s,
            lambda n: drop_rate_stream(pre_gen, n, 0.05),
        )
        .add_phase(
            "attack",
            attack_s,
            lambda n: drop_rate_stream(
                attack_gen, n, attack_drop_rate
            ),
        )
        .add_phase(
            "post",
            post_s,
            lambda n: drop_rate_stream(post_gen, n, 0.1),
        )
    )


def tenant_churn(
    seed: str = "0",
    tenants: int = 6,
    rounds: int = 3,
    round_s: float = 4.0,
    flows_per_tenant: int = 48,
    churn: bool = False,
) -> Scenario:
    """Hot tenants rotating round-robin across the fleet's flow space.

    Each round concentrates 70% of traffic on one tenant's flow block
    (string-seeded rotation order) with the rest spread across every
    tenant. ``churn=True`` additionally rides a
    :func:`rolling_update_action` on every odd round — tenant
    onboarding as control-plane churn, not just traffic drift.
    """
    import random

    if tenants < 1 or rounds < 1:
        raise ValueError("tenants and rounds must be >= 1")
    blocks = [
        _tenant_flows(tenant, flows_per_tenant)
        for tenant in range(tenants)
    ]
    everyone = [flow for block in blocks for flow in block]
    order = list(range(tenants))
    random.Random(f"scenario:tenant_churn:{seed}:order").shuffle(order)
    scenario = Scenario(f"tenant_churn[{seed}]")
    for round_index in range(rounds):
        hot = blocks[order[round_index % tenants]]
        generator = _seeded_generator(
            "tenant_churn", seed, f"r{round_index}"
        )

        def stream(n: int, g=generator, h=hot):
            return g.mixed_stream([(h, 0.7), (everyone, 0.3)], n)

        scenario.add_phase(
            f"tenant{order[round_index % tenants]}",
            round_s,
            stream,
            control_action=(
                rolling_update_action()
                if churn and round_index % 2 == 1
                else None
            ),
        )
    return scenario


def update_storm(
    seed: str = "0",
    calm_s: float = 4.0,
    storm_s: float = 6.0,
    settle_s: float = 4.0,
    n_flows: int = 192,
    entries_per_tick: int = 12,
) -> Scenario:
    """A rolling control-plane update storm under steady traffic.

    The storm phase re-installs and deletes entries every tick (see
    :func:`rolling_update_action`), driving the measured update rate
    through Equation 5's budget and thrashing any covering cache —
    the churn signal that makes the controller drop caches.
    """
    from repro.traffic.flows import synth_flows

    flows = synth_flows(n_flows)
    calm_gen = _seeded_generator("update_storm", seed, "calm")
    storm_gen = _seeded_generator("update_storm", seed, "storm")
    settle_gen = _seeded_generator("update_storm", seed, "settle")
    return (
        Scenario(f"update_storm[{seed}]")
        .add_phase(
            "calm",
            calm_s,
            lambda n: calm_gen.stream(
                flows, n, locality="zipf", zipf_skew=1.1
            ),
        )
        .add_phase(
            "storm",
            storm_s,
            lambda n: storm_gen.stream(
                flows, n, locality="zipf", zipf_skew=1.1
            ),
            control_action=rolling_update_action(
                entries_per_tick=entries_per_tick
            ),
        )
        .add_phase(
            "settle",
            settle_s,
            lambda n: settle_gen.stream(
                flows, n, locality="zipf", zipf_skew=1.1
            ),
        )
    )


#: Named builders the service's replay jobs resolve by name. Every
#: builder takes ``seed`` first plus shape keywords and returns a
#: deterministic :class:`Scenario`.
SCENARIO_BUILDERS: dict[str, Callable[..., Scenario]] = {
    "diurnal_zipf": diurnal_zipf,
    "flash_crowd": flash_crowd,
    "ddos_burst": ddos_burst,
    "tenant_churn": tenant_churn,
    "update_storm": update_storm,
}


def scenario_names() -> list[str]:
    return sorted(SCENARIO_BUILDERS)


def build_scenario(name: str, seed: str = "0", **kwargs) -> Scenario:
    """Resolve a library scenario by name (see :data:`SCENARIO_BUILDERS`)."""
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"Unknown scenario {name!r}; "
            f"expected one of {', '.join(scenario_names())}"
        ) from None
    return builder(seed=str(seed), **kwargs)
