"""Timed workload scenarios for runtime-adaptation experiments (§5.3).

A scenario is a sequence of phases; each phase supplies a packet stream
factory and optional control-plane activity (e.g. an entry-insertion
burst). The controller benches step the scenario second by second,
re-profiling and re-optimizing as the paper's runtime does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.nic.packet import Packet

#: Called once per emulated second with (control_plane_like, time_s).
ControlAction = Callable[[object, float], None]
#: Yields the packets offered during one emulated second.
StreamFactory = Callable[[int], Iterable[Packet]]


@dataclass
class Phase:
    """One period of stable workload behaviour."""

    name: str
    duration_s: float
    stream_factory: StreamFactory
    control_action: Optional[ControlAction] = None


@dataclass
class Scenario:
    """An ordered list of phases plus bookkeeping helpers."""

    name: str
    phases: list[Phase] = field(default_factory=list)

    def add_phase(
        self,
        name: str,
        duration_s: float,
        stream_factory: StreamFactory,
        control_action: Optional[ControlAction] = None,
    ) -> "Scenario":
        self.phases.append(
            Phase(name, duration_s, stream_factory, control_action)
        )
        return self

    @property
    def total_duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)

    def phase_at(self, time_s: float) -> Optional[Phase]:
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.duration_s
            if time_s < elapsed:
                return phase
        return None

    def ticks(self) -> Iterator[tuple[float, Phase]]:
        """Yield ``(time_s, phase)`` once per emulated second."""
        time_s = 0.0
        for phase in self.phases:
            end = time_s + phase.duration_s
            while time_s < end - 1e-9:
                yield time_s, phase
                time_s += 1.0
