"""Workload substrate: flows, packet streams, and timed scenarios."""

from repro.traffic.flows import FlowSpec, synth_flow, synth_flows
from repro.traffic.generator import TrafficGenerator, drop_rate_stream
from repro.traffic.scenarios import Phase, Scenario

__all__ = [
    "FlowSpec",
    "Phase",
    "Scenario",
    "TrafficGenerator",
    "drop_rate_stream",
    "synth_flow",
    "synth_flows",
]
