"""Workload substrate: flows, packet streams, and timed scenarios."""

from repro.traffic.flows import FlowSpec, synth_flow, synth_flows
from repro.traffic.generator import TrafficGenerator, drop_rate_stream
from repro.traffic.scenarios import (
    SCENARIO_BUILDERS,
    Phase,
    Scenario,
    build_scenario,
    rolling_update_action,
    scenario_names,
)

__all__ = [
    "FlowSpec",
    "Phase",
    "SCENARIO_BUILDERS",
    "Scenario",
    "TrafficGenerator",
    "build_scenario",
    "drop_rate_stream",
    "rolling_update_action",
    "scenario_names",
    "synth_flow",
    "synth_flows",
]
