"""Traffic generation: the reproduction's TRex/trafgen stand-in.

Generates packet streams over a set of flows with a chosen locality
pattern. All experiments in the paper use 512-byte packets (§5.1); flow
locality controls cache hit rates (Zipf concentrates traffic on few flows,
uniform spreads it).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.nic.packet import DEFAULT_PACKET_BYTES, Packet
from repro.traffic.flows import FlowSpec, synth_flows


class TrafficGenerator:
    """Deterministic (seeded) packet stream generator."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(seed)

    # -- flow selection patterns -------------------------------------------------

    def uniform_indices(self, n_flows: int, n_packets: int) -> list[int]:
        return [
            self._rng.randrange(n_flows) for _ in range(n_packets)
        ]

    def zipf_indices(
        self, n_flows: int, n_packets: int, skew: float = 1.2
    ) -> list[int]:
        """Zipf-distributed flow choices (high traffic locality)."""
        ranks = np.arange(1, n_flows + 1, dtype=float)
        weights = ranks ** (-skew)
        weights /= weights.sum()
        choices = self._np_rng.choice(n_flows, size=n_packets, p=weights)
        return [int(c) for c in choices]

    def round_robin_indices(
        self, n_flows: int, n_packets: int
    ) -> list[int]:
        return [i % n_flows for i in range(n_packets)]

    # -- streams -------------------------------------------------------------------

    def stream(
        self,
        flows: Sequence[FlowSpec],
        n_packets: int,
        locality: str = "uniform",
        zipf_skew: float = 1.2,
        size_bytes: int = DEFAULT_PACKET_BYTES,
    ) -> Iterator[Packet]:
        """Yield packets drawn from ``flows`` with the given locality."""
        if not flows:
            return
        if locality == "uniform":
            indices = self.uniform_indices(len(flows), n_packets)
        elif locality == "zipf":
            indices = self.zipf_indices(len(flows), n_packets, zipf_skew)
        elif locality == "round_robin":
            indices = self.round_robin_indices(len(flows), n_packets)
        else:
            raise ValueError(f"Unknown locality {locality!r}")
        for index in indices:
            yield flows[index].packet(size_bytes)

    def mixed_stream(
        self,
        flow_groups: Sequence[tuple[Sequence[FlowSpec], float]],
        n_packets: int,
        size_bytes: int = DEFAULT_PACKET_BYTES,
    ) -> Iterator[Packet]:
        """Draw from weighted flow groups (e.g. 25% droppable traffic).

        ``flow_groups`` is a list of ``(flows, weight)``; weights are
        normalised. Used to hit configured ACL drop rates.
        """
        groups = [g for g in flow_groups if g[0]]
        if not groups:
            return
        weights = [w for _, w in groups]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        for _ in range(n_packets):
            roll = self._rng.random()
            for (flows, _), edge in zip(groups, cumulative):
                if roll <= edge:
                    chosen = flows[self._rng.randrange(len(flows))]
                    yield chosen.packet(size_bytes)
                    break


def drop_rate_stream(
    generator: TrafficGenerator,
    n_packets: int,
    drop_rate: float,
    dropped_flows: Optional[Sequence[FlowSpec]] = None,
    passing_flows: Optional[Sequence[FlowSpec]] = None,
) -> Iterable[Packet]:
    """A stream where ``drop_rate`` of packets come from droppable flows."""
    if not 0.0 <= drop_rate <= 1.0:
        raise ValueError("drop_rate must be in [0, 1]")
    dropped_flows = dropped_flows or synth_flows(64, dport=6666)
    passing_flows = passing_flows or synth_flows(64, dport=80)
    return generator.mixed_stream(
        [(dropped_flows, drop_rate), (passing_flows, 1.0 - drop_rate)],
        n_packets,
    )
