"""Traffic generation: the reproduction's TRex/trafgen stand-in.

Generates packet streams over a set of flows with a chosen locality
pattern. All experiments in the paper use 512-byte packets (§5.1); flow
locality controls cache hit rates (Zipf concentrates traffic on few flows,
uniform spreads it).

Flow-index generation is vectorized: the selection patterns return numpy
arrays drawn in one shot, and streams optionally recycle packets from a
:class:`~repro.nic.packet.PacketPool` so high-rate replay allocates
nothing per packet.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.nic.packet import DEFAULT_PACKET_BYTES, Packet, PacketPool
from repro.nic.sharding import flow_shard, shard_seed
from repro.traffic.flows import FlowSpec, synth_flows


class TrafficGenerator:
    """Deterministic (seeded) packet stream generator."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(seed)

    # -- flow selection patterns -------------------------------------------------

    def uniform_indices(
        self, n_flows: int, n_packets: int
    ) -> np.ndarray:
        return self._np_rng.integers(
            0, n_flows, size=n_packets, dtype=np.int64
        )

    def zipf_indices(
        self, n_flows: int, n_packets: int, skew: float = 1.2
    ) -> np.ndarray:
        """Zipf-distributed flow choices (high traffic locality)."""
        ranks = np.arange(1, n_flows + 1, dtype=float)
        weights = ranks ** (-skew)
        weights /= weights.sum()
        return self._np_rng.choice(n_flows, size=n_packets, p=weights)

    def round_robin_indices(
        self, n_flows: int, n_packets: int
    ) -> np.ndarray:
        return np.arange(n_packets, dtype=np.int64) % n_flows

    # -- streams -------------------------------------------------------------------

    def stream(
        self,
        flows: Sequence[FlowSpec],
        n_packets: int,
        locality: str = "uniform",
        zipf_skew: float = 1.2,
        size_bytes: int = DEFAULT_PACKET_BYTES,
        pool: Optional[PacketPool] = None,
    ) -> Iterator[Packet]:
        """Yield packets drawn from ``flows`` with the given locality.

        With ``pool``, packets are recycled from its free list instead
        of freshly allocated (release them back after processing, e.g.
        via ``NicEmulator.replay(..., packet_pool=pool)``).
        """
        if not flows:
            return
        if locality == "uniform":
            indices = self.uniform_indices(len(flows), n_packets)
        elif locality == "zipf":
            indices = self.zipf_indices(len(flows), n_packets, zipf_skew)
        elif locality == "round_robin":
            indices = self.round_robin_indices(len(flows), n_packets)
        else:
            raise ValueError(f"Unknown locality {locality!r}")
        if pool is None:
            for index in indices.tolist():
                yield flows[index].packet(size_bytes)
        else:
            for index in indices.tolist():
                yield flows[index].fill(
                    pool.acquire(size_bytes), size_bytes
                )

    def flows_for_shard(
        self,
        flows: Sequence[FlowSpec],
        shard: int,
        n_shards: int,
    ) -> list[FlowSpec]:
        """The subset of ``flows`` a sharded data plane routes to ``shard``.

        Uses the same deterministic flow-hash the dispatcher uses
        (:func:`repro.nic.sharding.flow_shard` over the canonical
        five-tuple), so a stream built from this subset replays entirely
        on one worker.
        """
        return [
            flow
            for flow in flows
            if flow_shard(flow.flow_key(), n_shards) == shard
        ]

    def shard_stream(
        self,
        flows: Sequence[FlowSpec],
        n_packets: int,
        shard: int,
        n_shards: int,
        locality: str = "uniform",
        zipf_skew: float = 1.2,
        size_bytes: int = DEFAULT_PACKET_BYTES,
        pool: Optional[PacketPool] = None,
    ) -> Iterator[Packet]:
        """An independent per-shard stream of ``n_packets``.

        Draws only from the flows assigned to ``shard`` and uses a
        seed derived from ``(self.seed, shard)``, so every shard's
        stream is deterministic and statistically independent of its
        siblings — workers can generate their own load in-process with
        no cross-shard coordination beyond the shared base seed.
        """
        if not 0 <= shard < n_shards:
            raise ValueError(
                f"shard {shard} out of range for {n_shards} shards"
            )
        local_flows = self.flows_for_shard(flows, shard, n_shards)
        sub_generator = TrafficGenerator(
            seed=shard_seed(self.seed, shard)
        )
        return sub_generator.stream(
            local_flows,
            n_packets,
            locality=locality,
            zipf_skew=zipf_skew,
            size_bytes=size_bytes,
            pool=pool,
        )

    def mixed_stream(
        self,
        flow_groups: Sequence[tuple[Sequence[FlowSpec], float]],
        n_packets: int,
        size_bytes: int = DEFAULT_PACKET_BYTES,
        pool: Optional[PacketPool] = None,
    ) -> Iterator[Packet]:
        """Draw from weighted flow groups (e.g. 25% droppable traffic).

        ``flow_groups`` is a list of ``(flows, weight)``; weights are
        normalised. Used to hit configured ACL drop rates. Group choice
        is a single ``searchsorted`` over the precomputed CDF instead of
        a per-packet linear scan.
        """
        groups = [g for g in flow_groups if g[0]]
        if not groups:
            return
        weights = np.array([w for _, w in groups], dtype=float)
        cdf = np.cumsum(weights / weights.sum())
        rolls = self._np_rng.random(n_packets)
        chosen = np.minimum(
            np.searchsorted(cdf, rolls, side="left"), len(groups) - 1
        )
        # Per-group flow picks drawn in bulk (order within a group is
        # irrelevant to the distribution).
        picks = np.zeros(n_packets, dtype=np.int64)
        for group_index, (flows, _) in enumerate(groups):
            mask = chosen == group_index
            count = int(mask.sum())
            if count:
                picks[mask] = self._np_rng.integers(
                    0, len(flows), size=count, dtype=np.int64
                )
        if pool is None:
            for group_index, flow_index in zip(
                chosen.tolist(), picks.tolist()
            ):
                yield groups[group_index][0][flow_index].packet(
                    size_bytes
                )
        else:
            for group_index, flow_index in zip(
                chosen.tolist(), picks.tolist()
            ):
                yield groups[group_index][0][flow_index].fill(
                    pool.acquire(size_bytes), size_bytes
                )


def drop_rate_stream(
    generator: TrafficGenerator,
    n_packets: int,
    drop_rate: float,
    dropped_flows: Optional[Sequence[FlowSpec]] = None,
    passing_flows: Optional[Sequence[FlowSpec]] = None,
    pool: Optional[PacketPool] = None,
) -> Iterable[Packet]:
    """A stream where ``drop_rate`` of packets come from droppable flows."""
    if not 0.0 <= drop_rate <= 1.0:
        raise ValueError("drop_rate must be in [0, 1]")
    dropped_flows = dropped_flows or synth_flows(64, dport=6666)
    passing_flows = passing_flows or synth_flows(64, dport=80)
    return generator.mixed_stream(
        [(dropped_flows, drop_rate), (passing_flows, 1.0 - drop_rate)],
        n_packets,
        pool=pool,
    )
