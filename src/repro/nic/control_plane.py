"""Control plane: the authoritative entry store plus update accounting.

The control plane always speaks the *original* program's table names (the
paper: "Pipeleon ensures the same program management APIs by mapping the
API calls to the original program to the optimized version"). It owns the
shadow copy of every table's entries, timestamps each update to measure
per-table entry-update rates, and notifies listeners (the deployment layer
re-materialises optimized tables and invalidates caches on updates).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, Optional

from repro.errors import (
    TableFullError,
    UnknownEntryError,
    UnknownTableError,
)
from repro.ir.entries import TableEntry
from repro.ir.program import Program
from repro.ir.tables import TableKind, TableNode


class SimClock:
    """Simulated wall clock shared by the emulator and control plane."""

    def __init__(self, now_s: float = 0.0):
        self.now_s = now_s

    def advance(self, dt_s: float) -> None:
        if dt_s < 0:
            raise ValueError("Cannot advance the clock backwards")
        self.now_s += dt_s


@dataclass(frozen=True)
class UpdateEvent:
    """One control-plane operation, delivered to listeners.

    ``epoch`` is the control plane's monotonically increasing update
    version after this operation. Listeners that mirror state to remote
    replicas (the sharded replay engine's worker processes) use it to
    order and acknowledge broadcasts: every worker must have applied
    epoch ``e`` before processing any packet batch dispatched after it.
    """

    op: str  # "insert" | "delete" | "modify" | "flush"
    table: str
    entry: Optional[TableEntry]
    time_s: float
    epoch: int = 0


Listener = Callable[[UpdateEvent], None]


class _TableState:
    __slots__ = ("node", "entries", "updates")

    def __init__(self, node: TableNode):
        self.node = node
        self.entries: dict[int, TableEntry] = {}
        self.updates: Deque[float] = deque(maxlen=100000)


class ControlPlane:
    """Shadow entry store for a program's plain tables."""

    def __init__(
        self,
        program: Program,
        clock: Optional[SimClock] = None,
        journal_capacity: int = 65536,
    ):
        if journal_capacity < 1:
            raise ValueError("journal_capacity must be >= 1")
        self.program = program
        self.clock = clock or SimClock()
        #: Update version: bumped on every mutation (insert, delete,
        #: modify, cache flush). Replicated data planes compare epochs
        #: to know whether they are current.
        self.epoch = 0
        #: Bounded per-epoch mutation journal (most recent
        #: ``journal_capacity`` events, one per epoch). Recovery layers
        #: replay a suffix of it — ``journal_since(epoch)`` — to bring a
        #: rebuilt replica up to the current epoch.
        self.mutation_journal: Deque[UpdateEvent] = deque(
            maxlen=journal_capacity
        )
        self._tables: dict[str, _TableState] = {}
        self._listeners: list[Listener] = []
        for table in program.tables():
            if table.kind is TableKind.PLAIN:
                self._tables[table.name] = _TableState(table)

    # -- wiring -----------------------------------------------------------------

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def _notify(self, event: UpdateEvent) -> None:
        # Journal before fan-out: a listener that fails (or a recovery
        # triggered *by* a listener) must still see this epoch recorded.
        self.mutation_journal.append(event)
        for listener in self._listeners:
            listener(event)

    def _state(self, table: str) -> _TableState:
        try:
            return self._tables[table]
        except KeyError:
            raise UnknownTableError(
                f"Control plane has no table {table!r}"
            ) from None

    # -- API (paper's entry insertion/deletion/modification) ---------------------

    def table_names(self) -> list[str]:
        return list(self._tables)

    def insert_entry(self, table: str, entry: TableEntry) -> int:
        """Install an entry; returns its id."""
        state = self._state(table)
        if len(state.entries) >= state.node.size:
            raise TableFullError(
                f"Table {table!r} full ({state.node.size} entries)"
            )
        if entry.action_name not in state.node.actions:
            raise UnknownEntryError(
                f"Table {table!r} has no action {entry.action_name!r}"
            )
        if len(entry.match_values) != len(state.node.keys):
            raise UnknownEntryError(
                f"Table {table!r} expects {len(state.node.keys)} match "
                f"values, got {len(entry.match_values)}"
            )
        state.entries[entry.entry_id] = entry
        state.updates.append(self.clock.now_s)
        self.epoch += 1
        self._notify(
            UpdateEvent(
                "insert", table, entry, self.clock.now_s, self.epoch
            )
        )
        return entry.entry_id

    def insert_entries(
        self, table: str, entries: Iterable[TableEntry]
    ) -> list[int]:
        return [self.insert_entry(table, e) for e in entries]

    def delete_entry(self, table: str, entry_id: int) -> TableEntry:
        state = self._state(table)
        entry = state.entries.pop(entry_id, None)
        if entry is None:
            raise UnknownEntryError(
                f"Table {table!r} has no entry {entry_id}"
            )
        state.updates.append(self.clock.now_s)
        self.epoch += 1
        self._notify(
            UpdateEvent(
                "delete", table, entry, self.clock.now_s, self.epoch
            )
        )
        return entry

    def modify_entry(
        self, table: str, entry_id: int, new_entry: TableEntry
    ) -> None:
        state = self._state(table)
        if entry_id not in state.entries:
            raise UnknownEntryError(
                f"Table {table!r} has no entry {entry_id}"
            )
        del state.entries[entry_id]
        state.entries[new_entry.entry_id] = new_entry
        state.updates.append(self.clock.now_s)
        self.epoch += 1
        self._notify(
            UpdateEvent(
                "modify", table, new_entry, self.clock.now_s, self.epoch
            )
        )

    def clear_table(self, table: str) -> None:
        state = self._state(table)
        for entry_id in list(state.entries):
            self.delete_entry(table, entry_id)

    def flush_caches(self) -> None:
        """Broadcast a data-plane cache flush to every listener.

        A flush is not an entry operation — shadow entries are
        untouched — but it is epoch-versioned like one so replicated
        data planes (sharded workers) apply it in order with entry
        updates and cold-start their flow caches together.
        """
        self.epoch += 1
        self._notify(
            UpdateEvent(
                "flush", "*", None, self.clock.now_s, self.epoch
            )
        )

    # -- reads ----------------------------------------------------------------------

    def entries(self, table: str) -> list[TableEntry]:
        return list(self._state(table).entries.values())

    def entry_count(self, table: str) -> int:
        return len(self._state(table).entries)

    def update_rate(self, table: str, window_s: float = 10.0) -> float:
        """Entry updates per second over the trailing window."""
        state = self._state(table)
        cutoff = self.clock.now_s - window_s
        recent = sum(1 for t in state.updates if t >= cutoff)
        return recent / window_s if window_s > 0 else 0.0

    def update_rates(self, window_s: float = 10.0) -> dict[str, float]:
        return {
            name: self.update_rate(name, window_s)
            for name in self._tables
        }

    def journal_since(self, epoch: int) -> list[UpdateEvent]:
        """Mutation events with an epoch strictly after ``epoch``.

        Raises if the requested suffix has already rotated out of the
        bounded journal — a replica that far behind cannot be replayed
        forward and must resync from :meth:`snapshot` instead.
        """
        if epoch >= self.epoch:
            return []
        oldest = (
            self.mutation_journal[0].epoch
            if self.mutation_journal
            else self.epoch + 1
        )
        if epoch < oldest - 1:
            raise ValueError(
                f"Epoch {epoch} predates the retained journal "
                f"(oldest recorded epoch is {oldest}); resync from a "
                "snapshot instead"
            )
        return [
            event
            for event in self.mutation_journal
            if event.epoch > epoch
        ]

    def snapshot(self) -> dict[str, list[TableEntry]]:
        """Shadow entries per table (deployment materialisation input)."""
        return {
            name: list(state.entries.values())
            for name, state in self._tables.items()
        }
