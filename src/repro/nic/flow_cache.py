"""LRU flow cache with an insertion-rate limiter.

Used for two things: the caches created by Pipeleon's table-caching
optimization (§3.2.2) and the emulator's model of Netronome's built-in
whole-program flow cache. Pipeleon "reserves a fixed budget for each
cache and adopts LRU eviction when the cache is full. [...] Pipeleon sets
an insertion rate limit for each cache; insertions beyond the limit will
be dropped."
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

#: A cached "effect": bound primitives to replay on a hit.
Effect = tuple[tuple[str, tuple[Any, ...]], ...]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    rejected_insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def reset_rates(self) -> None:
        """Clear the hit/miss window (keeps structural stats)."""
        self.hits = 0
        self.misses = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold another cache's stats into this one (associative)."""
        self.hits += other.hits
        self.misses += other.misses
        self.insertions += other.insertions
        self.rejected_insertions += other.rejected_insertions
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        return self


class TokenBucket:
    """Simple token bucket used for the insertion-rate limit."""

    def __init__(self, rate_per_s: float, burst: Optional[float] = None):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.rate = rate_per_s
        self.burst = burst if burst is not None else max(1.0, rate_per_s)
        self._tokens = self.burst
        self._last = 0.0

    def allow(self, now_s: float) -> bool:
        elapsed = max(0.0, now_s - self._last)
        self._last = now_s
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class FlowCache:
    """Exact-match LRU cache: key tuple -> recorded effect."""

    def __init__(
        self,
        capacity: int = 4096,
        insertion_limit_pps: Optional[float] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._store: OrderedDict[Hashable, Effect] = OrderedDict()
        self._limiter = (
            TokenBucket(insertion_limit_pps)
            if insertion_limit_pps
            else None
        )
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def lookup(self, key: Hashable) -> Optional[Effect]:
        effect = self._store.get(key)
        if effect is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return effect

    def peek(self, key: Hashable) -> Optional[Effect]:
        """Read-only probe: no stats update, no LRU promotion.

        The columnar tier resolves a whole batch segment speculatively
        and only commits hit accounting (via :meth:`touch`) for the
        prefix it actually retires, so its probes must not mutate.
        """
        return self._store.get(key)

    def touch(self, key: Hashable, hits: int = 1) -> None:
        """Commit ``hits`` lookups that hit ``key`` (LRU + stats)."""
        self._store.move_to_end(key)
        self.stats.hits += hits

    def insert(self, key: Hashable, effect: Effect, now_s: float) -> bool:
        """Install a recording; False if the rate limiter rejected it."""
        if self._limiter is not None and not self._limiter.allow(now_s):
            self.stats.rejected_insertions += 1
            return False
        if key in self._store:
            self._store.move_to_end(key)
            self._store[key] = effect
            return True
        if len(self._store) >= self.capacity:
            self._store.popitem(last=False)
            self.stats.evictions += 1
        self._store[key] = effect
        self.stats.insertions += 1
        return True

    def invalidate_all(self) -> int:
        """Drop every cached flow (an original-table entry changed)."""
        count = len(self._store)
        self._store.clear()
        if count:
            self.stats.invalidations += 1
        return count

    def hit_rate(self) -> float:
        return self.stats.hit_rate
