"""Columnar (batch-kernel) execution tier for the NIC emulator.

The compiled fast path (:mod:`repro.nic.fastpath`) removed per-node
interpretation overhead but still drives **one closure chain per
packet**. This module adds the next tier: the program DAG is compiled to
per-node *batch kernels* that process an entire struct-of-arrays batch
at once with numpy — partition the batch by flow key (``np.unique`` on
key columns), resolve each partition's table hit once, apply action
effects and cost charging as vectorized column operations under index
masks, and route surviving index sets to successor nodes.

Bit-identity with the interpreter is the contract, exactly as for the
closure tier. The trick that makes vectorized float accumulation safe is
that per-packet busy time is a *sum of scalar charges in node-visit
order*, every DAG path visits nodes in topological order, and the walk
executes nodes in topological order too — so each packet's float64
column element receives the identical IEEE-754 add sequence the
sequential engines perform.

Packets the kernels cannot express are *demoted* to the closure fast
path one at a time, preserving global packet order:

* ``cache-record`` — a flow-cache (or native-cache) miss: the miss path
  records covered effects and inserts into the cache, which is
  inherently sequential (the insert can change the very next packet's
  lookup).
* ``migrated`` — a navigation jump backwards in topological order
  (cyclic component execution).
* ``unsupported`` — values outside int64, unknown navigation ids,
  unknown/unbindable primitives: the closure replays them (and raises
  exactly where the interpreter would).
* ``traced`` — a tracer is attached; the whole batch takes the closure
  path, which owns trace sampling.
* ``input`` — a ``Packet``-list batch that is not SoA-uniform (mixed
  header sets, preset metadata/drop/egress, non-int64 values).
* ``cascade`` — after :data:`MAX_WALKS_PER_BATCH` demotions in one
  batch the remaining tail is replayed sequentially (bounds worst-case
  re-walk cost on cold caches).

The *pure walk / commit prefix / demote one* loop: a walk touches no
shared state (cache probes use :meth:`FlowCache.peek`, counters and
stats become pending events); the miss-free prefix up to the first
flagged packet is then committed in bulk, the flagged packet is demoted
through ``FastPathEngine.replay_one`` (with the sim clock set to the
exact value the sequential engine would see), and the remainder is
re-walked — the demoted packet's cache insert may legitimately change
later packets' hits.

Compiled state reuses the fast path's staleness fingerprint (table
versions + cache/counter/tracer identities), so any control-plane
mutation transparently recompiles. Demotion totals accumulate on the
owning :class:`NicEmulator` (``columnar_demotions``/``columnar_packets``)
so they survive recompiles and can be merged across shard workers into
``pipeleon_columnar_demotions_total{reason}``.
"""

from __future__ import annotations

from itertools import accumulate, repeat
from time import perf_counter
from typing import Iterable, Optional

import numpy as np

from repro.errors import EmulationError, IrError
from repro.ir.conditionals import _OPS, ConditionalNode
from repro.ir.tables import Pipeline, TableKind
from repro.nic.counters import (
    action_counter,
    branch_counter,
    cache_counter,
)
from repro.nic.packet import FIVE_TUPLE, NEXT_TAB_ID, Packet
from repro.nic.pipeline import bind_action
from repro.nic.stats import PacketResult, RunStats

_ASIC = Pipeline.ASIC
_CPU = Pipeline.CPU

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

#: Demotions per batch before the rest of the batch goes sequential.
MAX_WALKS_PER_BATCH = 8

# Flag codes (first flag wins; 0 = clean).
_F_CACHE = 1
_F_UNSUPPORTED = 2
_F_MIGRATED = 3
_FLAG_REASONS = {
    _F_CACHE: "cache-record",
    _F_UNSUPPORTED: "unsupported",
    _F_MIGRATED: "migrated",
}


class _Unsupported(Exception):
    """Compile-time marker: this effect can't run as a column kernel."""


class BatchOutcome:
    """Per-packet results of one batch, in original packet order.

    ``egress`` uses the shm result-ring convention: ``-1`` means "no
    egress port set". Sharded workers push these columns straight into
    the result ring without materialising per-packet objects.
    """

    __slots__ = ("latencies", "egress", "dropped", "n", "demoted")

    def __init__(self, n: int):
        self.n = n
        self.latencies = np.zeros(n, dtype=np.float64)
        self.egress = np.full(n, -1, dtype=np.int64)
        self.dropped = np.zeros(n, dtype=bool)
        self.demoted = 0


class ColumnBatch:
    """A struct-of-arrays packet batch.

    ``values`` is field-major ``(n_fields, n_packets)`` int64 — exactly
    the layout :func:`repro.nic.shm_transport.read_batch_record` returns,
    so shm batches wrap with zero copies. The base columns are never
    mutated (walks copy-on-write), which keeps the shm ring slot pristine
    and lets :meth:`make_packet` materialise a demoted packet from the
    original data at any time.
    """

    __slots__ = ("names", "values", "sizes", "timestamps", "n", "packets")

    def __init__(self, names, values, sizes, timestamps=None, packets=None):
        self.names = tuple(names)
        self.values = values
        self.sizes = sizes
        self.timestamps = timestamps
        self.n = int(values.shape[1]) if values.ndim == 2 else len(sizes)
        self.packets = packets

    @classmethod
    def from_matrix(cls, names, values, sizes, timestamps=None):
        """Wrap shm SoA views in place (no copies; views stay read-only)."""
        return cls(names, values, sizes, timestamps=timestamps)

    @classmethod
    def from_packets(cls, packets: list) -> Optional["ColumnBatch"]:
        """Columnise a packet list; None if it is not SoA-uniform.

        Mirrors :func:`repro.nic.shm_transport.soa_encode`: every packet
        must carry the same header-field set, no metadata, no preset
        drop/egress, and int64-representable values. Batches that fail
        are replayed wholesale through the closure tier (reason
        ``input``).
        """
        if not packets:
            return None
        first = packets[0].fields.keys()
        for packet in packets:
            if (
                packet.metadata
                or packet.dropped
                or packet.egress_port is not None
                or packet.fields.keys() != first
            ):
                return None
        names = tuple(first)
        try:
            values = np.array(
                [[p.fields[name] for p in packets] for name in names],
                dtype=np.int64,
            )
        except OverflowError:
            return None
        if values.ndim != 2:  # empty field set -> (n_fields, n) anyway
            values = values.reshape(len(names), len(packets))
        sizes = np.fromiter(
            (p.size_bytes for p in packets),
            dtype=np.int64,
            count=len(packets),
        )
        return cls(names, values, sizes, packets=packets)

    def make_packet(self, i: int) -> Packet:
        """The ``i``-th packet as a ``Packet`` (demotion path only)."""
        if self.packets is not None:
            return self.packets[i]
        return Packet(
            fields=dict(zip(self.names, self.values[:, i].tolist())),
            size_bytes=int(self.sizes[i]),
        )


class _Walk:
    """Pure per-walk state: column CoW overlays plus charge arrays.

    Columns live in ``cols`` as ``[values, present, owned]`` triples;
    ``present`` is ``None`` for all-present base columns or a bool array;
    ``owned`` is False while ``values`` still aliases the batch's
    read-only base data. Nothing in a walk touches shared engine state —
    counters, cache hits and explicit counts accumulate as event lists
    that the commit phase filters to the retired prefix.
    """

    __slots__ = (
        "n",
        "cols",
        "busy0",
        "busy1",
        "used0",
        "used1",
        "prev",
        "migr",
        "dropped",
        "egress",
        "has_eg",
        "sampled",
        "flags",
        "pending",
        "counter_events",
        "cache_events",
        "explicit_events",
    )

    def __init__(self, batch: ColumnBatch, sampled: np.ndarray):
        n = batch.n
        self.n = n
        values = batch.values
        self.cols = {
            name: [values[j], None, False]
            for j, name in enumerate(batch.names)
        }
        self.busy0 = np.zeros(n, dtype=np.float64)
        self.busy1 = np.zeros(n, dtype=np.float64)
        self.used0 = np.zeros(n, dtype=bool)
        self.used1 = np.zeros(n, dtype=bool)
        self.prev = np.full(n, -1, dtype=np.int8)
        self.migr = np.zeros(n, dtype=np.int64)
        self.dropped = np.zeros(n, dtype=bool)
        self.egress = np.zeros(n, dtype=np.int64)
        self.has_eg = np.zeros(n, dtype=bool)
        self.sampled = sampled
        self.flags = np.zeros(n, dtype=np.int8)
        self.pending: dict[str, list] = {}
        #: (counter_key, sampled idx array) in visit order.
        self.counter_events: list = []
        #: (cache_obj, key, idx array) in visit order.
        self.cache_events: list = []
        #: (explicit counter name, idx array) in visit order.
        self.explicit_events: list = []

    def writable(self, name: str):
        """The column triple for ``name``, made safe to mutate."""
        col = self.cols.get(name)
        if col is None:
            col = self.cols[name] = [
                np.zeros(self.n, dtype=np.int64),
                np.zeros(self.n, dtype=bool),
                True,
            ]
            return col
        if not col[2]:
            col[0] = col[0].copy()
            if col[1] is not None:
                col[1] = col[1].copy()
            col[2] = True
        return col

    def read(self, name: str):
        """``(values, present)`` or ``(None, None)`` if column absent."""
        col = self.cols.get(name)
        if col is None:
            return None, None
        return col[0], col[1]

    def flag(self, idx: np.ndarray, code: int) -> None:
        """First-flag-wins demotion marking."""
        if idx.size:
            fresh = idx[self.flags[idx] == 0]
            self.flags[fresh] = code

    def route(self, name: Optional[str], idx: np.ndarray) -> None:
        """Queue surviving (unflagged) packets for a successor node."""
        if name is None or idx.size == 0:
            return
        idx = idx[self.flags[idx] == 0]
        if idx.size:
            self.pending.setdefault(name, []).append(idx)

    def key_matrix(self, idx: np.ndarray, names) -> np.ndarray:
        """Key columns for ``idx``: absent fields read as 0 (Packet.key)."""
        out = np.empty((idx.size, len(names)), dtype=np.int64)
        for j, name in enumerate(names):
            vals, present = self.read(name)
            if vals is None:
                out[:, j] = 0
            else:
                column = vals[idx]
                if present is not None:
                    column = np.where(present[idx], column, 0)
                out[:, j] = column
        return out


def _group_rows(keymat: np.ndarray):
    """Partition row indices of ``keymat`` by unique key row.

    Yields ``(key_tuple, positions)`` where ``positions`` indexes rows
    of ``keymat`` (argsort/searchsorted-style boundaries rather than one
    ``np.unique`` scan per group).
    """
    n, width = keymat.shape
    if n == 0:
        return
    if n == 1:
        yield tuple(int(v) for v in keymat[0]), np.zeros(1, dtype=np.int64)
        return
    if width == 1:
        order = np.argsort(keymat[:, 0], kind="stable")
        ordered = keymat[order]
        change = ordered[1:, 0] != ordered[:-1, 0]
    else:
        order = np.lexsort(keymat.T[::-1])
        ordered = keymat[order]
        change = np.any(ordered[1:] != ordered[:-1], axis=1)
    bounds = np.flatnonzero(change) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [n]))
    for s, e in zip(starts, ends):
        yield tuple(int(v) for v in ordered[s]), order[s:e]


class ColumnarEngine:
    """The program compiled to per-node batch kernels.

    Owned by one :class:`NicEmulator` via the ``columnar`` property,
    which rebuilds it whenever :meth:`stale` reports that the installed
    state diverged — the same recompile discipline as the closure tier.
    """

    def __init__(self, emulator):
        self._em = emulator
        self._instrument = emulator.instrument
        self._counter_bank = emulator.counters
        self._max_steps = emulator.max_steps
        self._native_cache_obj = emulator.native_cache
        self._tracer = emulator.tracer
        self._table_versions = [
            (name, runtime, runtime.version)
            for name, runtime in emulator.runtime_tables.items()
        ]
        self._cache_objs = list(emulator.flow_caches.items())
        self._result = PacketResult(0.0, False, None)
        #: Why the whole program can't run columnar (None = it can).
        self.unsupported: Optional[str] = None
        #: Cumulative per-node kernel wall time / packet counts, for the
        #: ``pipeleon report`` join against cost-model predictions.
        self.node_time_s: dict[str, float] = {}
        self.node_packets: dict[str, int] = {}
        #: Modeled per-packet ns charged by each node's primary cost.
        self.node_model_ns: dict[str, float] = {}
        #: Flow-key partitions resolved per node (one table lookup
        #: each), counted per kernel invocation including re-walks —
        #: the partition-count bottleneck ROADMAP item 2 flags.
        self.node_partitions: dict[str, int] = {}
        self._kernels: dict = {}
        self._topo: list[str] = []
        self._topo_pos: dict[str, int] = {}
        self._effect_memo: dict = {}
        self._root = emulator.program.root
        try:
            self._topo = list(emulator.program.topological_order())
        except IrError:
            self.unsupported = "unsupported"  # cyclic program
        if len(emulator.program.nodes) > emulator.max_steps:
            self.unsupported = "unsupported"
        self._native_kernel = None
        if self.unsupported is None:
            self._topo_pos = {
                name: i for i, name in enumerate(self._topo)
            }
            for name in self._topo:
                self._kernels[name] = self._compile_node(
                    emulator.program.nodes[name]
                )
            self._native_kernel = self._compile_native()

    # -- staleness (mirrors FastPathEngine.stale) --------------------------

    def stale(self) -> bool:
        em = self._em
        if (
            em.instrument != self._instrument
            or em.counters is not self._counter_bank
            or em.native_cache is not self._native_cache_obj
            or em.max_steps != self._max_steps
            or em.tracer is not self._tracer
        ):
            return True
        for name, runtime, version in self._table_versions:
            current = em.runtime_tables.get(name)
            if current is not runtime or current.version != version:
                return True
        for name, cache in self._cache_objs:
            if em.flow_caches.get(name) is not cache:
                return True
        return False

    # -- primitive compilation ---------------------------------------------

    def _compile_primitive(self, op: str, args):
        """One bound primitive -> vectorized applier(walk, idx) | None.

        Raises :class:`_Unsupported` for anything a column kernel can't
        express; the owning group is then flagged and demoted, and the
        closure tier reproduces the interpreter's behaviour (including
        its error, for genuinely invalid primitives).
        """
        if op == "set_field" or op == "set_meta":
            try:
                name, value = str(args[0]), int(args[1])
            except (TypeError, ValueError, IndexError):
                raise _Unsupported(op)
            if op == "set_meta" and not name.startswith("meta."):
                name = f"meta.{name}"
            if not (_I64_MIN <= value <= _I64_MAX):
                raise _Unsupported(op)

            def apply_set(walk: _Walk, idx: np.ndarray) -> None:
                col = walk.writable(name)
                col[0][idx] = value
                if col[1] is not None:
                    col[1][idx] = True

            return apply_set
        if op == "add_to_field":
            try:
                name, delta = str(args[0]), int(args[1])
            except (TypeError, ValueError, IndexError):
                raise _Unsupported(op)
            if not (_I64_MIN <= delta <= _I64_MAX):
                raise _Unsupported(op)
            hi = _I64_MAX - delta if delta >= 0 else None
            lo = _I64_MIN - delta if delta < 0 else None

            def apply_add(walk: _Walk, idx: np.ndarray) -> None:
                col = walk.writable(name)
                vals, present = col[0], col[1]
                current = vals[idx]
                if present is not None:
                    current = np.where(present[idx], current, 0)
                if hi is not None:
                    walk.flag(idx[current > hi], _F_UNSUPPORTED)
                else:
                    walk.flag(idx[current < lo], _F_UNSUPPORTED)
                vals[idx] = current + delta
                if present is not None:
                    present[idx] = True

            return apply_add
        if op == "copy_field":
            try:
                dst, src = str(args[0]), str(args[1])
            except (TypeError, ValueError, IndexError):
                raise _Unsupported(op)

            def apply_copy(walk: _Walk, idx: np.ndarray) -> None:
                vals, present = walk.read(src)
                if vals is None:
                    value = np.zeros(idx.size, dtype=np.int64)
                else:
                    value = vals[idx]
                    if present is not None:
                        value = np.where(present[idx], value, 0)
                col = walk.writable(dst)
                col[0][idx] = value
                if col[1] is not None:
                    col[1][idx] = True

            return apply_copy
        if op == "forward":
            try:
                port = int(args[0])
            except (TypeError, ValueError, IndexError):
                raise _Unsupported(op)
            if not (_I64_MIN <= port <= _I64_MAX):
                raise _Unsupported(op)

            def apply_forward(walk: _Walk, idx: np.ndarray) -> None:
                walk.egress[idx] = port
                walk.has_eg[idx] = True

            return apply_forward
        if op == "drop":

            def apply_drop(walk: _Walk, idx: np.ndarray) -> None:
                walk.dropped[idx] = True

            return apply_drop
        if op == "no_op":
            return None
        if op == "count":
            try:
                counter_name = str(args[0])
            except (TypeError, IndexError):
                raise _Unsupported(op)

            def apply_count(walk: _Walk, idx: np.ndarray) -> None:
                walk.explicit_events.append((counter_name, idx))

            return apply_count
        raise _Unsupported(op)

    def _compile_effect(self, bound):
        """Bound primitives -> (appliers tuple, unsupported?)."""
        key = tuple(bound)
        cached = self._effect_memo.get(key)
        if cached is None:
            try:
                cached = (
                    tuple(
                        self._compile_primitive(op, args)
                        for op, args in bound
                    ),
                    False,
                )
            except _Unsupported:
                cached = ((), True)
            self._effect_memo[key] = cached
        return cached

    # -- shared kernel pieces ----------------------------------------------

    def _node_consts(self, node):
        em = self._em
        pipeline = em._pipeline_map[node.name]
        pool = 0 if pipeline is _ASIC else 1
        return pool, em.target.core(pipeline), em.target.migration_ns

    @staticmethod
    def _prologue(walk, idx, pool, migration_ns, cost_ns):
        """Migration check + node cost, in the interpreter's order."""
        busy = walk.busy0 if pool == 0 else walk.busy1
        prev = walk.prev
        moved = idx[(prev[idx] != -1) & (prev[idx] != pool)]
        if moved.size:
            busy[moved] += migration_ns
            walk.migr[moved] += 1
        prev[idx] = pool
        busy[idx] += cost_ns
        (walk.used0 if pool == 0 else walk.used1)[idx] = True
        return busy

    @staticmethod
    def _apply_effect(walk, busy, idx, appliers, action_ns):
        """Charge + apply one compiled effect; all primitives run (the
        sequential engines apply every primitive even after a drop)."""
        for applier in appliers:
            busy[idx] += action_ns
            if applier is not None:
                applier(walk, idx)
        live = idx[~walk.dropped[idx]]
        return live

    # -- node kernels ------------------------------------------------------

    def _compile_node(self, node):
        if isinstance(node, ConditionalNode):
            return self._compile_conditional(node)
        kind = node.kind
        if kind is TableKind.NAVIGATION:
            return self._compile_navigation(node)
        if kind is TableKind.MIGRATION:
            return self._compile_migration(node)
        if (
            kind is TableKind.CACHE
            and node.cache_info
            and node.cache_info.mode == "flow"
        ):
            return self._compile_flow_cache(node)
        if kind is TableKind.MERGED or (
            kind is TableKind.CACHE
            and node.cache_info
            and node.cache_info.mode == "merge"
        ):
            return self._compile_match(node, merged=True)
        return self._compile_match(node, merged=False)

    def _compile_conditional(self, node):
        pool, core, migration_ns = self._node_consts(node)
        branch_ns = core.branch_ns
        counter_ns = core.counter_update_ns
        condition = node.condition
        field_name = condition.field
        is_valid = condition.op == "valid"
        op_fn = _OPS.get(condition.op)
        value = condition.value
        static_bad = not is_valid and not (
            isinstance(value, int) and _I64_MIN <= value <= _I64_MAX
        )
        true_key = branch_counter(node.name, True)
        false_key = branch_counter(node.name, False)
        true_next = node.true_next
        false_next = node.false_next
        self.node_model_ns[node.name] = branch_ns

        def kernel(walk: _Walk, idx: np.ndarray) -> None:
            busy = self._prologue(walk, idx, pool, migration_ns, branch_ns)
            if static_bad:
                walk.flag(idx, _F_UNSUPPORTED)
                return
            vals, present = walk.read(field_name)
            if vals is None:
                taken = np.zeros(idx.size, dtype=bool)
            else:
                column = vals[idx]
                if is_valid:
                    taken = (
                        np.ones(idx.size, dtype=bool)
                        if present is None
                        else present[idx].copy()
                    )
                else:
                    taken = op_fn(column, value)
                    if present is not None:
                        taken &= present[idx]
            sampled_mask = walk.sampled[idx]
            sampled_idx = idx[sampled_mask]
            if sampled_idx.size:
                taken_s = taken[sampled_mask]
                true_idx = sampled_idx[taken_s]
                false_idx = sampled_idx[~taken_s]
                if true_idx.size:
                    walk.counter_events.append((true_key, true_idx))
                if false_idx.size:
                    walk.counter_events.append((false_key, false_idx))
                busy[sampled_idx] += counter_ns
            walk.route(true_next, idx[taken])
            walk.route(false_next, idx[~taken])

        return kernel

    def _compile_navigation(self, node):
        pool, core, migration_ns = self._node_consts(node)
        lookup_ns = core.lookup_ns
        default_next = node.next_map[node.default_action]
        id_nodes = self._em._id_nodes
        topo_pos = self._topo_pos
        my_pos = topo_pos[node.name]
        self.node_model_ns[node.name] = lookup_ns

        def kernel(walk: _Walk, idx: np.ndarray) -> None:
            self._prologue(walk, idx, pool, migration_ns, lookup_ns)
            vals, present = walk.read(NEXT_TAB_ID)
            if vals is None:
                walk.route(default_next, idx)
                return
            present_mask = (
                np.ones(idx.size, dtype=bool)
                if present is None
                else present[idx]
            )
            walk.route(default_next, idx[~present_mask])
            jump_idx = idx[present_mask]
            if jump_idx.size == 0:
                return
            ids = vals[jump_idx].copy()
            col = walk.writable(NEXT_TAB_ID)
            if col[1] is None:
                col[1] = np.ones(walk.n, dtype=bool)
            col[1][jump_idx] = False  # metadata.pop(NEXT_TAB_ID)
            for (node_id,), positions in _group_rows(
                ids.reshape(-1, 1)
            ):
                group = jump_idx[positions]
                target = id_nodes.get(node_id)
                if target is None:
                    walk.flag(group, _F_UNSUPPORTED)
                elif topo_pos.get(target, -1) <= my_pos:
                    walk.flag(group, _F_MIGRATED)
                else:
                    walk.route(target, group)

        return kernel

    def _compile_migration(self, node):
        pool, core, migration_ns = self._node_consts(node)
        action_ns = core.action_ns
        resume = node.annotations.get("resume")
        resume_id = (
            self._em.node_ids[resume] if resume is not None else None
        )
        default_next = node.next_map[node.default_action]
        self.node_model_ns[node.name] = action_ns

        def kernel(walk: _Walk, idx: np.ndarray) -> None:
            self._prologue(walk, idx, pool, migration_ns, action_ns)
            if resume_id is not None:
                col = walk.writable(NEXT_TAB_ID)
                col[0][idx] = resume_id
                if col[1] is not None:
                    col[1][idx] = True
            walk.route(default_next, idx)

        return kernel

    def _compile_flow_cache(self, node):
        name = node.name
        info = node.cache_info
        pool, core, migration_ns = self._node_consts(node)
        lookup_ns = core.lookup_ns
        action_ns = core.action_ns
        counter_ns = core.counter_update_ns
        match_fields = node.match_fields
        cache = self._em.flow_caches[name]
        hit_key = cache_counter(name, True)
        hit_next = info.hit_next
        compile_effect = self._compile_effect
        apply_effect = self._apply_effect
        self.node_model_ns[name] = lookup_ns

        def kernel(walk: _Walk, idx: np.ndarray) -> None:
            busy = self._prologue(walk, idx, pool, migration_ns, lookup_ns)
            keymat = walk.key_matrix(idx, match_fields)
            groups = 0
            for key, positions in _group_rows(keymat):
                groups += 1
                group = idx[positions]
                effect = cache.peek(key)
                if effect is None:
                    walk.flag(group, _F_CACHE)
                    continue
                appliers, bad = compile_effect(effect)
                if bad:
                    walk.flag(group, _F_UNSUPPORTED)
                    continue
                sampled_idx = group[walk.sampled[group]]
                if sampled_idx.size:
                    walk.counter_events.append((hit_key, sampled_idx))
                    busy[sampled_idx] += counter_ns
                walk.cache_events.append((cache, key, group))
                live = apply_effect(walk, busy, group, appliers, action_ns)
                walk.route(hit_next, live)
            self._bump_partitions(name, groups)

        return kernel

    def _compile_match(self, node, merged: bool):
        """Plain and merged tables share the partition-lookup shape."""
        name = node.name
        pool, core, migration_ns = self._node_consts(node)
        runtime = self._em.runtime_tables[name]
        match_ns = core.match_cost_ns(
            node.worst_match_type,
            runtime.memory_accesses,
            node.memory_tier,
        )
        action_ns = core.action_ns
        counter_ns = core.counter_update_ns
        match_fields = node.match_fields
        lookup = runtime.engine.lookup
        actions = node.actions
        compile_effect = self._compile_effect
        apply_effect = self._apply_effect
        self.node_model_ns[name] = match_ns
        info = node.cache_info if merged else None
        if merged:
            hit_key = cache_counter(name, True)
            miss_key = cache_counter(name, False)
            hit_next = info.hit_next if info else None
            miss_next = info.miss_next if info else None
            default_plan = None
        else:
            default_action = actions[node.default_action]
            try:
                bound = bind_action(default_action, ())
                appliers, bad = compile_effect(bound)
            except EmulationError:
                appliers, bad = (), True
            default_plan = (
                appliers,
                bad,
                action_counter(name, default_action.name),
                node.next_map[default_action.name],
            )
        plans: dict[int, tuple] = {}

        def entry_plan(entry):
            plan = plans.get(entry.entry_id)
            if plan is None:
                try:
                    action = actions[entry.action_name]
                    bound = bind_action(action, entry.action_data)
                    appliers, bad = compile_effect(bound)
                except (EmulationError, KeyError):
                    action = None
                    appliers, bad = (), True
                if merged:
                    plan = (appliers, bad, hit_key, hit_next)
                else:
                    plan = (
                        appliers,
                        bad,
                        action_counter(
                            name, action.name if action else "?"
                        ),
                        node.next_map.get(action.name)
                        if action
                        else None,
                    )
                plans[entry.entry_id] = plan
            return plan

        def kernel(walk: _Walk, idx: np.ndarray) -> None:
            busy = self._prologue(walk, idx, pool, migration_ns, match_ns)
            keymat = walk.key_matrix(idx, match_fields)
            groups = 0
            for key, positions in _group_rows(keymat):
                groups += 1
                group = idx[positions]
                entry = lookup(key)
                if entry is None:
                    if merged:
                        sampled_idx = group[walk.sampled[group]]
                        if sampled_idx.size:
                            walk.counter_events.append(
                                (miss_key, sampled_idx)
                            )
                            busy[sampled_idx] += counter_ns
                        walk.route(miss_next, group)
                        continue
                    plan = default_plan
                else:
                    plan = entry_plan(entry)
                appliers, bad, counter_key, next_name = plan
                if bad:
                    walk.flag(group, _F_UNSUPPORTED)
                    continue
                sampled_idx = group[walk.sampled[group]]
                if sampled_idx.size:
                    walk.counter_events.append((counter_key, sampled_idx))
                    busy[sampled_idx] += counter_ns
                live = apply_effect(walk, busy, group, appliers, action_ns)
                walk.route(next_name, live)
            self._bump_partitions(name, groups)

        return kernel

    def _compile_native(self):
        """Whole-program native-cache pre-step (Agilio CX model)."""
        em = self._em
        if em.native_cache is None or em.program.root is None:
            return None
        entry_pipeline = em._pipeline_map[em.program.root]
        pool = 0 if entry_pipeline is _ASIC else 1
        core = em.target.core(entry_pipeline)
        lookup_ns = core.lookup_ns
        action_ns = core.action_ns
        native = em.native_cache
        compile_effect = self._compile_effect
        apply_effect = self._apply_effect

        def kernel(walk: _Walk, idx: np.ndarray) -> None:
            busy = walk.busy0 if pool == 0 else walk.busy1
            busy[idx] += lookup_ns
            (walk.used0 if pool == 0 else walk.used1)[idx] = True
            keymat = walk.key_matrix(idx, FIVE_TUPLE)
            groups = 0
            for key, positions in _group_rows(keymat):
                groups += 1
                group = idx[positions]
                effect = native.peek(key)
                if effect is None:
                    walk.flag(group, _F_CACHE)
                    continue
                appliers, bad = compile_effect(effect)
                if bad:
                    walk.flag(group, _F_UNSUPPORTED)
                    continue
                walk.cache_events.append((native, key, group))
                apply_effect(walk, busy, group, appliers, action_ns)
                # Hits terminate; misses were flagged for demotion.
            self._bump_partitions("__native__", groups)

        return kernel

    def _bump_partitions(self, name: str, count: int) -> None:
        """Record flow-key partitions one kernel invocation resolved.

        Totals live on the emulator (like demotions) so recompiles
        don't reset them and shard workers ship them home for merging.
        """
        if count:
            self.node_partitions[name] = (
                self.node_partitions.get(name, 0) + count
            )
            self._em.columnar_partitions += count

    # -- walk / commit / demote --------------------------------------------

    def _walk(self, batch: ColumnBatch, seg: int) -> _Walk:
        """One pure pass over ``batch[seg:]``; mutates no shared state."""
        n = batch.n
        bank = self._counter_bank
        sampled = np.zeros(n, dtype=bool)
        if self._instrument:
            stride = bank.sample_stride
            if stride == 1:
                sampled[seg:] = True
            else:
                sampled[seg:] = (
                    (bank._packet_index + np.arange(n - seg)) % stride
                ) == 0
        walk = _Walk(batch, sampled)
        idx0 = np.arange(seg, n, dtype=np.int64)
        node_time = self.node_time_s
        node_packets = self.node_packets
        native = self._native_kernel
        if native is not None:
            started = perf_counter()
            native(walk, idx0)
            node_time["__native__"] = node_time.get(
                "__native__", 0.0
            ) + (perf_counter() - started)
            node_packets["__native__"] = (
                node_packets.get("__native__", 0) + int(idx0.size)
            )
        else:
            walk.pending[self._root] = [idx0]
        kernels = self._kernels
        pending = walk.pending
        for name in self._topo:
            parts = pending.pop(name, None)
            if not parts:
                continue
            idx = parts[0] if len(parts) == 1 else np.concatenate(parts)
            started = perf_counter()
            kernels[name](walk, idx)
            node_time[name] = node_time.get(name, 0.0) + (
                perf_counter() - started
            )
            node_packets[name] = node_packets.get(name, 0) + int(idx.size)
        return walk

    def _commit(self, walk, batch, seg, cut, stats, outcome) -> None:
        """Retire the miss-free prefix ``[seg, cut)`` into shared state.

        Every pending event is filtered to indices below ``cut``;
        integer counter sums, list-extend stats appends and
        last-occurrence-ordered LRU touches reproduce exactly what
        sequential per-packet processing of the prefix would have done.
        """
        em = self._em
        sizes = batch.sizes
        if self._instrument:
            bank = self._counter_bank
            for key, idx in walk.counter_events:
                sub = idx[idx < cut]
                if sub.size:
                    bank.bump_block(
                        key, int(sub.size), int(sizes[sub].sum())
                    )
            bank.advance(cut - seg)
        explicit = em.explicit_counters
        for name, idx in walk.explicit_events:
            count = int((idx < cut).sum())
            if count:
                explicit[name] = explicit.get(name, 0) + count
        per_cache: dict[int, tuple] = {}
        for cache, key, idx in walk.cache_events:
            sub = idx[idx < cut]
            if sub.size:
                _, keys = per_cache.setdefault(id(cache), (cache, {}))
                last, count = keys.get(key, (-1, 0))
                keys[key] = (
                    max(last, int(sub.max())),
                    count + int(sub.size),
                )
        for cache, keys in per_cache.values():
            for key, (_, count) in sorted(
                keys.items(), key=lambda item: item[1][0]
            ):
                cache.touch(key, count)
        span = slice(seg, cut)
        used0 = walk.used0[span]
        used1 = walk.used1[span]
        busy0 = walk.busy0[span]
        busy1 = walk.busy1[span]
        latencies = np.where(used0, busy0, 0.0) + np.where(
            used1, busy1, 0.0
        )
        dropped = walk.dropped[span]
        stats.record_block(
            latencies.tolist(),
            int(sizes[span].sum()),
            int(dropped.sum()),
            int(walk.migr[span].sum()),
            busy0[used0].tolist(),
            busy1[used1].tolist(),
        )
        outcome.latencies[span] = latencies
        outcome.dropped[span] = dropped
        outcome.egress[span] = np.where(
            walk.has_eg[span], walk.egress[span], -1
        )

    def _demote_one(
        self, fastpath, batch, i, stats, outcome, clock_value, reason
    ) -> None:
        """Replay packet ``i`` through the closure tier, in order."""
        em = self._em
        if clock_value is not None:
            em.clock.now_s = clock_value
        packet = batch.make_packet(i)
        result = fastpath.replay_one(packet, into=self._result)
        stats.record_fast(
            result.latency_ns,
            packet.size_bytes,
            result.dropped,
            result.migrations,
            result.busy_ns.get(_ASIC),
            result.busy_ns.get(_CPU),
        )
        outcome.latencies[i] = result.latency_ns
        outcome.egress[i] = (
            -1 if result.egress_port is None else result.egress_port
        )
        outcome.dropped[i] = result.dropped
        outcome.demoted += 1
        demotions = em.columnar_demotions
        demotions[reason] = demotions.get(reason, 0) + 1

    def _fallback(
        self, batch, packets, n, stats, dt_s, ts, outcome, reason
    ) -> None:
        """Whole-batch demotion (traced / cyclic / non-SoA input)."""
        em = self._em
        fastpath = em.fastpath
        clock = em.clock
        for i in range(n):
            if ts is not None:
                clock.now_s = float(ts[i])
            elif dt_s:
                clock.advance(dt_s)
            packet = (
                packets[i] if packets is not None else batch.make_packet(i)
            )
            result = fastpath.replay_one(packet, into=self._result)
            stats.record_fast(
                result.latency_ns,
                packet.size_bytes,
                result.dropped,
                result.migrations,
                result.busy_ns.get(_ASIC),
                result.busy_ns.get(_CPU),
            )
            outcome.latencies[i] = result.latency_ns
            outcome.egress[i] = (
                -1 if result.egress_port is None else result.egress_port
            )
            outcome.dropped[i] = result.dropped
        outcome.demoted = n
        demotions = em.columnar_demotions
        demotions[reason] = demotions.get(reason, 0) + n

    # -- batch replay ------------------------------------------------------

    def replay_batch(
        self,
        packets,
        stats: RunStats,
        dt_s: float = 0.0,
        timestamps=None,
    ) -> BatchOutcome:
        """Replay one batch; bit-identical to the sequential engines.

        ``packets`` is a :class:`ColumnBatch` (shm SoA path) or an
        iterable of :class:`Packet`. Always returns a
        :class:`BatchOutcome` with per-packet latency/egress/dropped in
        original order, even when part or all of the batch was demoted.
        """
        em = self._em
        clock = em.clock
        if isinstance(packets, ColumnBatch):
            batch = packets
            packet_list = batch.packets
        else:
            packet_list = (
                packets if isinstance(packets, list) else list(packets)
            )
            if not packet_list:
                return BatchOutcome(0)
            batch = ColumnBatch.from_packets(packet_list)
        n = batch.n if batch is not None else len(packet_list)
        outcome = BatchOutcome(n)
        ts = timestamps if timestamps is not None else (
            batch.timestamps if batch is not None else None
        )
        if ts is not None and not isinstance(ts, np.ndarray):
            ts = np.asarray(ts, dtype=np.float64)
        if self._tracer is not None:
            self._fallback(
                batch, packet_list, n, stats, dt_s, ts, outcome, "traced"
            )
            return outcome
        if self.unsupported is not None:
            self._fallback(
                batch,
                packet_list,
                n,
                stats,
                dt_s,
                ts,
                outcome,
                self.unsupported,
            )
            return outcome
        if batch is None:
            self._fallback(
                None, packet_list, n, stats, dt_s, ts, outcome, "input"
            )
            return outcome
        if self._root is None:
            # No program root: the sequential engines still step the
            # clock and the counter stride per packet.
            if self._instrument:
                self._counter_bank.advance(n)
            stats.record_block([0.0] * n, int(batch.sizes.sum()), 0, 0)
            em.columnar_packets += n
            if ts is not None and n:
                clock.now_s = float(ts[-1])
            elif dt_s:
                for _ in range(n):
                    clock.advance(dt_s)
            return outcome
        clock_values = None
        if ts is None and dt_s:
            # Exact per-packet clock values under repeated advance()
            # (itertools.accumulate is bit-identical to the sequential
            # adds; np.cumsum is not guaranteed to be).
            clock_values = list(
                accumulate(repeat(dt_s, n), initial=clock.now_s)
            )
        fastpath = em.fastpath
        seg = 0
        demotions = 0
        while seg < n:
            if demotions >= MAX_WALKS_PER_BATCH:
                for i in range(seg, n):
                    self._demote_one(
                        fastpath,
                        batch,
                        i,
                        stats,
                        outcome,
                        float(ts[i])
                        if ts is not None
                        else (
                            clock_values[i + 1] if clock_values else None
                        ),
                        "cascade",
                    )
                seg = n
                break
            walk = self._walk(batch, seg)
            flagged = np.flatnonzero(walk.flags[seg:])
            cut = seg + int(flagged[0]) if flagged.size else n
            if cut > seg:
                self._commit(walk, batch, seg, cut, stats, outcome)
                em.columnar_packets += cut - seg
            if cut == n:
                break
            self._demote_one(
                fastpath,
                batch,
                cut,
                stats,
                outcome,
                float(ts[cut])
                if ts is not None
                else (clock_values[cut + 1] if clock_values else None),
                _FLAG_REASONS[int(walk.flags[cut])],
            )
            demotions += 1
            seg = cut + 1
        if ts is not None and n:
            clock.now_s = float(ts[-1])
        elif clock_values is not None:
            clock.now_s = clock_values[-1]
        return outcome
