"""Deterministic fault injection for the sharded replay runtime.

The supervisor in :mod:`repro.nic.sharding` recovers from workers that
die or stop responding; this module manufactures those failures on
demand so the recovery paths are *testable* — in unit tests, in the CI
fault matrix, and from the CLI (``--inject-fault``).

Design constraints:

* **Deterministic.** A fault fires at a packet- or batch-indexed
  trigger point inside the worker, never off a wall-clock timer. Two
  runs with the same traffic, the same specs and the same seed inject
  at exactly the same point in the stream, so recovery tests can assert
  bit-identical merged stats against a fault-free twin.
* **Worker-side.** The parent ships each worker its shard's
  :class:`FaultSpec` list at fork time; the worker arms a
  :class:`FaultInjector` and consults it before every batch. The
  parent-side supervisor is never told where the faults are — it has to
  *detect* them, exactly as it would a real failure.
* **One-shot.** Every spec fires at most once. Respawned workers are
  armed with nothing: a fault models one failure event, not a crash
  loop (crash-loop behaviour is covered by the supervisor's respawn
  budget instead).

Fault kinds:

``kill``
    ``os._exit(137)`` before replaying the trigger batch — the hard
    death of a SIGKILL, no cleanup, pipe closes mid-protocol.
``hang``
    Sleep forever (interruptible by the supervisor's SIGTERM): the
    worker is alive but never replies, the classic stuck-process case.
``delay``
    Sleep ``delay_s`` once, then continue normally — exercises the
    ``slow`` classification without tripping escalation.
``drop_reply``
    Swallow the worker's next reply-bearing send (``done``/``state``/
    ``caches``): the worker keeps running but the parent's recv starves,
    which must classify as *hung* and escalate.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "parse_fault",
]

FAULT_KINDS = ("kill", "hang", "delay", "drop_reply")

#: Auto-placed triggers land on a batch index in ``[0, AUTO_BATCH_SPAN)``.
AUTO_BATCH_SPAN = 8


@dataclass(frozen=True)
class FaultSpec:
    """One scripted failure: what, where, and when.

    Exactly one of ``at_batch``/``at_packet`` positions the trigger;
    with neither set, :class:`FaultPlan` derives a batch index from its
    seed (deterministically). ``at_batch`` counts the batches a worker
    has received over its lifetime; ``at_packet`` counts packets. A
    trigger fires on the first batch at or past its position, so a spec
    aimed beyond the end of a short replay fires on a later replay
    rather than silently never.
    """

    kind: str
    shard: int = 0
    at_batch: Optional[int] = None
    at_packet: Optional[int] = None
    delay_s: float = 0.25

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"Unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        if self.shard < 0:
            raise ValueError("Fault shard must be >= 0")
        if self.at_batch is not None and self.at_packet is not None:
            raise ValueError(
                "Position a fault with at_batch or at_packet, not both"
            )
        if self.at_batch is not None and self.at_batch < 0:
            raise ValueError("at_batch must be >= 0")
        if self.at_packet is not None and self.at_packet < 0:
            raise ValueError("at_packet must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def describe(self) -> str:
        if self.at_batch is not None:
            where = f"batch={self.at_batch}"
        elif self.at_packet is not None:
            where = f"packet={self.at_packet}"
        else:
            where = "auto"
        return f"{self.kind}:shard={self.shard},{where}"


def parse_fault(spec: str) -> FaultSpec:
    """Parse a CLI fault spec: ``kind:key=value,...``.

    Examples: ``kill:shard=0,batch=3`` — SIGKILL-style death of shard
    0's worker before its fourth batch; ``hang:shard=1,packet=500``;
    ``delay:shard=0,batch=1,seconds=0.5``; ``kill`` alone leaves the
    trigger to the seeded auto-placement.
    """
    kind, _, rest = spec.strip().partition(":")
    kind = kind.strip()
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"Unknown fault kind {kind!r} in {spec!r}; "
            f"expected one of {', '.join(FAULT_KINDS)}"
        )
    kwargs: dict = {}
    if rest.strip():
        for part in rest.split(","):
            key, eq, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not eq or not value:
                raise ValueError(
                    f"Malformed fault parameter {part!r} in {spec!r}; "
                    "expected key=value"
                )
            if key == "shard":
                kwargs["shard"] = int(value)
            elif key == "batch":
                kwargs["at_batch"] = int(value)
            elif key == "packet":
                kwargs["at_packet"] = int(value)
            elif key in ("seconds", "delay"):
                kwargs["delay_s"] = float(value)
            else:
                raise ValueError(
                    f"Unknown fault parameter {key!r} in {spec!r}; "
                    "expected shard=, batch=, packet= or seconds="
                )
    return FaultSpec(kind, **kwargs)


class FaultPlan:
    """A resolved, seeded set of fault specs for one sharded run.

    Construction resolves every spec with no explicit trigger to a
    concrete ``at_batch`` drawn from ``random.Random`` seeded with a
    *string* key (string seeding hashes with SHA-512, so placement is
    identical across processes and ``PYTHONHASHSEED`` values). The
    resolved plan is therefore a pure function of ``(specs, seed)``.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.seed = seed
        self.specs: tuple[FaultSpec, ...] = tuple(
            self._resolve(spec, index)
            for index, spec in enumerate(specs)
        )

    @classmethod
    def from_args(
        cls, specs: Sequence[str], seed: int = 0
    ) -> "FaultPlan":
        """Build a plan from ``--inject-fault`` argument strings."""
        return cls(tuple(parse_fault(s) for s in specs), seed=seed)

    def _resolve(self, spec: FaultSpec, index: int) -> FaultSpec:
        if spec.at_batch is not None or spec.at_packet is not None:
            return spec
        rng = random.Random(
            f"fault:{self.seed}:{index}:{spec.shard}:{spec.kind}"
        )
        return FaultSpec(
            spec.kind,
            shard=spec.shard,
            at_batch=rng.randrange(AUTO_BATCH_SPAN),
            delay_s=spec.delay_s,
        )

    def for_shard(self, shard: int) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.shard == shard)

    def max_shard(self) -> int:
        return max((s.shard for s in self.specs), default=-1)

    def describe(self) -> list[str]:
        return [spec.describe() for spec in self.specs]

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)


class FaultInjector:
    """Worker-side trigger engine: counts batches, fires one-shot faults.

    Lives inside the worker process. ``before_batch`` is called with
    the size of each incoming batch *before* it is replayed;
    ``should_reply`` gates every reply-bearing send. Counting is over
    the worker's lifetime (across ``begin``/``end`` replay boundaries),
    matching the spec semantics documented on :class:`FaultSpec`.
    """

    def __init__(self, specs: Sequence[FaultSpec]):
        self._pending = list(specs)
        self.batches = 0
        self.packets = 0
        self._suppress_replies = 0

    def before_batch(self, n_packets: int) -> None:
        batch_index = self.batches
        self.batches += 1
        fired = [
            spec
            for spec in self._pending
            if (
                batch_index >= spec.at_batch
                if spec.at_batch is not None
                else self.packets + n_packets > spec.at_packet
            )
        ]
        self.packets += n_packets
        for spec in fired:
            self._pending.remove(spec)
            self._fire(spec)

    def should_reply(self) -> bool:
        """False exactly once per armed ``drop_reply`` that has fired."""
        if self._suppress_replies > 0:
            self._suppress_replies -= 1
            return False
        return True

    def _fire(self, spec: FaultSpec) -> None:
        if spec.kind == "kill":
            # The hard-death path: no cleanup, no unwinding, exit code
            # 137 like a SIGKILL'd process.
            os._exit(137)
        elif spec.kind == "hang":
            # Alive but unresponsive. time.sleep is interruptible, so
            # the supervisor's SIGTERM escalation still works.
            while True:  # pragma: no branch - exits via signal only
                time.sleep(3600.0)
        elif spec.kind == "delay":
            time.sleep(spec.delay_s)
        else:  # drop_reply
            self._suppress_replies += 1
