"""Sharded multi-core replay engine: flow-hash partitioning over workers.

PR 1 compiled the replay loop into per-node closures; this module scales
it across cores. A :class:`ShardedEmulator` owns N worker *processes*,
each holding its own :class:`~repro.nic.emulator.NicEmulator` (and
therefore its own compiled fast-path engine, flow caches and counter
bank). Traffic is partitioned by a deterministic hash of the packet's
five-tuple, so every packet of a flow lands on the same worker — which
is exactly what NIC RSS does in hardware, and what preserves per-flow
cache behaviour: a flow's hits, misses and recorded effects are
identical whether the flow shares a core with every other flow or only
with the flows that hash beside it.

Equivalence contract: with ``sample_stride == 1``, flow caches that
neither evict (capacity >= live flows) nor rate-limit insertions, and
cache keys that resolve within a flow (each cache key is only ever
produced by flows of one shard — true whenever keys include the five
tuple, or are distinct per flow), the *merge* of the per-worker run
stats, counter banks and cache stats is exactly — bit for bit — what a
single-core replay of the unsharded stream produces (see
``tests/test_nic_sharding.py``). This holds because all aggregates are
either integer sums or ``math.fsum`` reductions (order-independent),
and per-flow state never crosses shards. Outside that regime the
engine stays *semantically* correct — every packet still gets the
single-core forwarding result — but cold-start effects differ: a cache
key shared by flows on different shards (e.g. a dst-only route cache
key under traffic where several flows share a dst) warms once per
shard instead of once globally, so miss counts can exceed one core's.

Control-plane updates reach workers through an epoch-versioned
broadcast: every mutation the parent applies (entry install/delete,
cache invalidation, cache flush) is forwarded through each worker's
command pipe *in order with packet batches*, so a worker has always
applied update epoch ``e`` before it replays any batch dispatched after
``e``. Workers re-use the fast path's existing staleness fingerprint:
applying a broadcast bumps the runtime table's version, and the next
batch's ``emulator.fastpath`` access recompiles automatically.

Transports (``transport="shm"|"pipe"``): by default packet batches
cross the process boundary through per-shard shared-memory ring
buffers (:mod:`repro.nic.shm_transport`) as struct-of-arrays records —
no per-packet Python objects and no pickling on the hot path — with a
matching result ring carrying per-packet outcome columns back to the
parent. The pipe remains the control plane (broadcasts, supervision,
journal replay) and the fallback data path for batches the SoA codec
cannot express (metadata, oversized values, heterogeneous header
sets) or that exceed the ring's slot geometry; fallbacks are counted
per shard and reason. ``transport="pipe"`` restores the PR 2
behaviour: numpy record blocks pickled through the command pipe.

Splitting data from control traffic forfeits the single pipe's FIFO
total order, so it is re-established with symmetric watermarks: every
ring record carries the count of pipe messages sent before it, and
every pipe message carries the ring's produced count at send time. A
worker replays a ring batch only after processing that many pipe
messages, and drains the ring to a pipe message's watermark before
applying it — so a control update still lands before any batch
dispatched after it, and ``end`` still follows every batch, exactly
as on the single pipe.

Fault tolerance (see DESIGN.md §12): every pipe interaction runs under
a supervisor governed by :class:`SupervisorOptions`. Sends are
writability-checked with bounded retry/backoff; receives poll on a
heartbeat with a hard deadline, classifying a silent worker as *slow*
(reported, still waited for), *hung* (alive past the deadline) or
*dead* (process gone / pipe broken). What happens next is the
``recovery`` policy:

``fail`` (default)
    Raise :class:`EmulationError` with the shard, classification and
    elapsed time — the pre-fault-tolerance behaviour, minus the
    indefinite hangs.
``respawn``
    Terminate the failed worker, fork a fresh one, and replay the
    shard's message *journal* (every state-bearing message since the
    worker's birth). Workers are deterministic functions of their
    message history, so the rebuilt shard converges to the exact
    pre-failure state and the merged run stats stay bit-identical to a
    fault-free run — the property ``tests/test_faults.py`` pins.
``degraded``
    Mark the shard dead, redistribute its *future* flows across the
    survivors (deterministically, by flow hash over the survivor
    list), and account the packets whose results died with the worker
    in ``RunStats.lost_packets``.

Deterministic failures are injected for tests and CI through
:mod:`repro.nic.faults` (``fault_plan=``, CLI ``--inject-fault``).

Known limitation: ``select``-based writability reports *any* free pipe
buffer space, so a single message larger than the free space (a huge
entry broadcast) can still block mid-write; all other protocol
messages are small. Batches are bounded by the batch size.
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing as mp
import select
import time
import traceback
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import EmulationError
from repro.ir.entries import TableEntry
from repro.nic.columnar import ColumnBatch
from repro.nic.control_plane import SimClock, UpdateEvent
from repro.nic.counters import CounterBank
from repro.nic.emulator import NicEmulator
from repro.nic.faults import FaultInjector, FaultPlan, FaultSpec
from repro.nic.flow_cache import CacheStats
from repro.nic.packet import Packet, PacketPool
from repro.nic.shm_transport import (
    DEFAULT_RING_SLOTS,
    ShardChannel,
    decode_names,
    read_batch_record,
    soa_encode,
    write_result_record,
)
from repro.nic.stats import RunStats
from repro.telemetry.metrics import Histogram

__all__ = [
    "ShardJournal",
    "ShardedEmulator",
    "SupervisorOptions",
    "decode_batch",
    "encode_batch",
    "flow_shard",
    "shard_seed",
]

_RECOVERY_MODES = ("fail", "respawn", "degraded")

_METRIC_HELP = {
    "pipeleon_worker_faults_total": (
        "Worker failures by supervisor classification (slow/hung/dead)"
    ),
    "pipeleon_worker_respawns_total": (
        "Workers respawned after a failure (recovery=respawn)"
    ),
    "pipeleon_packets_lost_total": (
        "Packets whose results died with a degraded shard"
    ),
    "pipeleon_broadcast_retries_total": (
        "Pipe send retries after a transient worker stall"
    ),
    "pipeleon_ring_occupancy": (
        "Data-ring occupancy fraction observed at each batch push"
    ),
    "pipeleon_ring_stalls_total": (
        "Batch dispatches that stalled on a full data ring"
    ),
    "pipeleon_pipe_fallback_total": (
        "Batches sent over the pickled pipe instead of the ring"
    ),
}

_TRANSPORTS = ("pipe", "shm")

#: Worker execution tiers (see :meth:`NicEmulator.replay_batch`).
_ENGINES = ("auto", "columnar", "fastpath", "interp")

#: Fraction buckets for the ring-occupancy histogram (eighths of the
#: ring, matching the default slot count so each bucket is one slot).
_OCCUPANCY_BUCKETS = tuple(i / 8 for i in range(1, 9))

#: Worker-side poll cadence while idle between pipe messages (shm
#: transport interleaves ring draining with pipe polling).
_IDLE_POLL_S = 0.002
#: Parent-side poll cadence while stalled on a full data ring.
_STALL_POLL_S = 0.0005
#: Worker bound on pushing an outcome record into a full result ring;
#: the parent drains continuously, so expiry means it is gone or
#: wedged — outcomes are observability, drop rather than deadlock.
_RESULT_PUSH_TIMEOUT_S = 10.0
#: Worker bound on waiting for a ring record the watermark protocol
#: guarantees was published (expiry indicates transport corruption).
_RING_SYNC_TIMEOUT_S = 5.0


def _new_ring_stats() -> dict:
    """Zeroed per-shard transport counters (plain, JSON-friendly)."""
    return {
        "pushed_batches": 0,
        "pushed_packets": 0,
        "stalls": 0,
        "fallback_encoding": 0,
        "fallback_capacity": 0,
        "result_batches": 0,
        "result_packets": 0,
        "max_occupancy": 0.0,
    }


# ---------------------------------------------------------------------------
# Flow -> shard assignment
# ---------------------------------------------------------------------------


def flow_shard(flow_key: tuple[int, ...], n_shards: int) -> int:
    """Deterministic shard index for a flow key.

    Uses the builtin tuple hash, which for integer elements is *not*
    randomized by ``PYTHONHASHSEED`` — the same key maps to the same
    shard in every process and every run, which both the dispatcher and
    the shard-aware traffic generator rely on.
    """
    if n_shards <= 1:
        return 0
    return hash(flow_key) % n_shards


def shard_seed(seed: int, shard: int) -> int:
    """Derived per-shard RNG seed for independent shard-local streams."""
    return (seed * 1_000_003 + shard * 7_919 + 1) & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# Compact batch serialization
# ---------------------------------------------------------------------------

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode_batch(packets: Sequence[Packet]):
    """Serialize packets for the worker pipe.

    Fast path: every packet shares one header-name tuple, carries no
    metadata and is undropped (true for generator streams) — the batch
    becomes a single ``(names, int64 matrix, sizes)`` block, which
    pickles as flat buffers instead of per-packet dicts. Anything else
    falls back to an explicit per-packet encoding.
    """
    if not packets:
        return ("py", [])
    first = packets[0]
    names = tuple(first.fields)
    uniform = not (first.metadata or first.dropped)
    if uniform:
        for packet in packets:
            if (
                packet.metadata
                or packet.dropped
                or packet.egress_port is not None
                or tuple(packet.fields) != names
            ):
                uniform = False
                break
    if uniform:
        try:
            values = np.array(
                [list(p.fields.values()) for p in packets],
                dtype=np.int64,
            )
        except (OverflowError, ValueError):
            uniform = False
        else:
            sizes = np.array(
                [p.size_bytes for p in packets], dtype=np.int32
            )
            return ("np", names, values, sizes)
    return (
        "py",
        [
            (
                dict(p.fields),
                dict(p.metadata),
                p.size_bytes,
                p.dropped,
                p.egress_port,
            )
            for p in packets
        ],
    )


def decode_batch(payload, pool: Optional[PacketPool] = None) -> list[Packet]:
    """Inverse of :func:`encode_batch`; optionally fills pooled packets."""
    kind = payload[0]
    packets: list[Packet] = []
    if kind == "np":
        _, names, values, sizes = payload
        for row, size in zip(values.tolist(), sizes.tolist()):
            packet = (
                pool.acquire(size) if pool is not None else Packet(size_bytes=size)
            )
            packet.fields = dict(zip(names, row))
            packets.append(packet)
        return packets
    for fields, metadata, size, dropped, egress in payload[1]:
        packet = (
            pool.acquire(size) if pool is not None else Packet(size_bytes=size)
        )
        packet.fields = fields
        packet.metadata = metadata
        packet.dropped = dropped
        packet.egress_port = egress
        packets.append(packet)
    return packets


# ---------------------------------------------------------------------------
# Supervision policy
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SupervisorOptions:
    """Timeouts, retry budget and recovery policy for worker supervision.

    ``recv_timeout_s`` is the hard reply deadline: a worker silent for
    longer is classified *hung* (if alive) or *dead* (if exited).
    ``slow_after_s`` only reports: a reply later than this emits a
    ``worker_slow`` event but is still waited for. ``send_timeout_s``
    bounds each writability wait; a send is retried ``send_retries``
    times with exponential backoff from ``backoff_base_s`` before the
    worker is classified. ``recovery`` picks the escalation policy
    (see the module docstring); ``max_respawns`` bounds respawns *per
    shard* so a crash-looping worker cannot retry forever, and
    ``journal_limit`` bounds the retained batch messages per shard
    journal (past it, recovery is best-effort rather than exact).
    """

    recv_timeout_s: float = 60.0
    slow_after_s: float = 5.0
    heartbeat_interval_s: float = 0.05
    send_timeout_s: float = 5.0
    send_retries: int = 3
    backoff_base_s: float = 0.05
    close_timeout_s: float = 1.0
    recovery: str = "fail"
    max_respawns: int = 3
    journal_limit: int = 4096

    def __post_init__(self):
        if self.recovery not in _RECOVERY_MODES:
            raise ValueError(
                f"Unknown recovery mode {self.recovery!r}; "
                f"expected one of {', '.join(_RECOVERY_MODES)}"
            )
        for name in (
            "recv_timeout_s",
            "heartbeat_interval_s",
            "send_timeout_s",
            "close_timeout_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.slow_after_s < 0:
            raise ValueError("slow_after_s must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.send_retries < 0:
            raise ValueError("send_retries must be >= 0")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.journal_limit < 1:
            raise ValueError("journal_limit must be >= 1")


class _WorkerGone(Exception):
    """Internal: a recv classified the worker as dead or hung."""

    def __init__(self, kind: str, elapsed_s: float):
        super().__init__(kind)
        self.kind = kind
        self.elapsed_s = elapsed_s


class ShardJournal:
    """Replayable log of one shard's state-bearing messages.

    Records every message that mutates worker state (``begin``,
    ``batch``, ``entries``, ``invalidate``, ``flush``, ``reset``) since
    the worker's birth. A worker is a deterministic function of its
    message history, so replaying the journal into a freshly forked
    worker rebuilds the exact pre-failure emulator state — tables,
    epoch, caches, counters and in-progress replay stats. Reply-bearing
    ops (``end``/``collect``/``dump``) are never journaled; after a
    recovery the supervisor simply re-issues them.

    Batch messages dominate memory, so only they are bounded: past
    ``limit`` retained batches the oldest is evicted and the journal
    marked ``truncated`` — recovery then rebuilds table and epoch state
    exactly but cumulative telemetry only approximately (the dropped
    packets' counter/cache contributions cannot be replayed).
    """

    __slots__ = (
        "limit",
        "entries",
        "batches",
        "truncated",
        "dropped_batches",
        "dropped_packets",
    )

    def __init__(self, limit: int):
        self.limit = limit
        #: ``(message, n_packets)`` pairs in send order.
        self.entries: list[tuple] = []
        self.batches = 0
        self.truncated = False
        self.dropped_batches = 0
        self.dropped_packets = 0

    def append(self, message: tuple, n_packets: int = 0) -> None:
        self.entries.append((message, n_packets))
        if message[0] == "batch":
            self.batches += 1
            if self.batches > self.limit:
                self._evict_oldest_batch()

    def _evict_oldest_batch(self) -> None:
        for index, (message, count) in enumerate(self.entries):
            if message[0] == "batch":
                del self.entries[index]
                self.batches -= 1
                self.truncated = True
                self.dropped_batches += 1
                self.dropped_packets += count
                return


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_state(emulator: NicEmulator) -> dict:
    """Cumulative mergeable telemetry shipped back to the parent."""
    return {
        "counters": emulator.counters,
        "explicit": dict(emulator.explicit_counters),
        "cache_stats": {
            name: cache.stats
            for name, cache in emulator.flow_caches.items()
        },
        "native_stats": (
            emulator.native_cache.stats
            if emulator.native_cache is not None
            else None
        ),
        "tracer": emulator.tracer,
        "demotions": dict(emulator.columnar_demotions),
        "columnar_packets": emulator.columnar_packets,
        "columnar_partitions": emulator.columnar_partitions,
    }


def _restore_birth_state(emulator: NicEmulator, birth_tables) -> None:
    """Reset a respawned worker's emulator to its shard's birth state.

    Factory-built emulators are born pristine, but template-flavour
    workers fork a *live* template whose runtime tables may have been
    re-materialised since construction; restore the construction-time
    entry snapshot first. Then zero all telemetry **in place** — the
    fast path's compiled closures and staleness fingerprint bind the
    counter bank and cache objects by identity, so they must be
    cleared, never replaced. The parent finishes the rebirth by
    replaying the shard's journal.
    """
    if birth_tables is not None:
        for name, entries in birth_tables.items():
            emulator.set_table_entries(
                name, [entry.clone() for entry in entries]
            )
    emulator.counters.reset()
    emulator.explicit_counters.clear()
    caches = list(emulator.flow_caches.values())
    if emulator.native_cache is not None:
        caches.append(emulator.native_cache)
    for cache in caches:
        cache._store.clear()
        stats = cache.stats
        for field in dataclasses.fields(stats):
            setattr(stats, field.name, 0)
    if emulator.tracer is not None:
        emulator.tracer.reset()


def _worker_main(
    conn,
    factory,
    shard_index: int,
    fault_specs: Sequence[FaultSpec] = (),
    rebirth: bool = False,
    birth_tables=None,
    channel: Optional[ShardChannel] = None,
    engine: str = "auto",
    tele_conn=None,
    live_cadence: tuple = (None, None),
) -> None:
    """Command loop for one shard worker.

    With the pipe transport every message (control and data) arrives
    on ``conn`` strictly in send order. With the shm transport
    (``channel`` given) data batches arrive on the channel's ring and
    only control traffic uses the pipe, so FIFO order is re-established
    by watermarks: a ring batch replays only once this worker has
    processed the pipe messages counted in its ``pipe_watermark``, and
    the ring is drained to a pipe message's ring watermark before that
    message is applied (see the module docstring).

    ``busy`` accounts the worker's own CPU time (``time.process_time``:
    decode + replay + reply pickling, but not time blocked on the pipe
    or ring), which the throughput benchmark uses as the critical-path
    denominator.

    ``fault_specs`` arms a :class:`FaultInjector` for deterministic
    failure testing; respawned workers (``rebirth=True``) are armed
    with nothing — a spec models one failure event, not a crash loop.

    ``tele_conn`` (the live telemetry plane's sidecar pipe) makes this
    worker push compact cumulative snapshots — lifetime packet/drop
    totals, an incremental latency histogram, cache hit/miss pairs,
    columnar demotions — at the ``live_cadence = (interval_s,
    every_packets)`` cadence. Snapshots fire only at batch boundaries
    or from the idle loop, never per packet. Wall-interval snapshots
    double as heartbeats and are dropped (counted in the next
    snapshot) when the parent lags; packet-count snapshots and the
    forced end-of-replay snapshot block (bounded) instead, because the
    deterministic row stream the flight recorder promises cannot
    tolerate scheduling-dependent gaps.
    """
    try:
        emulator: NicEmulator = factory(shard_index)
        if rebirth:
            _restore_birth_state(emulator, birth_tables)
        injector = FaultInjector(fault_specs) if fault_specs else None
        pool = PacketPool()
        stats: Optional[RunStats] = None
        busy = 0.0
        epoch = 0
        pipe_seen = 0  # pipe messages fully processed
        batch_ordinal = 0  # batches replayed since begin (both paths)
        names_memo: dict[bytes, tuple[str, ...]] = {}

        live_interval, live_every = live_cadence
        live_hist = Histogram() if tele_conn is not None else None
        live_seq = 0
        live_offset = 0  # stats._latencies already folded into live_hist
        live_packets_since = 0
        live_dropped_snapshots = 0
        life_packets = 0  # totals from completed replays (pre-`begin`)
        life_dropped = 0
        live_next = (
            time.monotonic() + live_interval
            if live_interval is not None
            else None
        )

        def reply(payload) -> None:
            if injector is None or injector.should_reply():
                conn.send(payload)

        def live_snapshot(force: bool = False) -> None:
            nonlocal live_seq, live_offset, live_dropped_snapshots
            if stats is not None:
                latencies = stats._latencies
                for value in latencies[live_offset:]:
                    live_hist.observe(value)
                live_offset = len(latencies)
            snapshot = {
                "shard": shard_index,
                "seq": live_seq,
                "mono_s": time.monotonic(),
                "packets": life_packets
                + (stats.packets if stats is not None else 0),
                "dropped": life_dropped
                + (stats.dropped if stats is not None else 0),
                "hist": live_hist,
                "caches": {
                    name: (cache.stats.hits, cache.stats.misses)
                    for name, cache in emulator.flow_caches.items()
                },
                "native": (
                    (
                        emulator.native_cache.stats.hits,
                        emulator.native_cache.stats.misses,
                    )
                    if emulator.native_cache is not None
                    else None
                ),
                "demotions": dict(emulator.columnar_demotions),
                "columnar_packets": emulator.columnar_packets,
                "epoch": epoch,
                "dropped_snapshots": live_dropped_snapshots,
            }
            # Heartbeats are best-effort (drop when the parent lags);
            # deterministic-cadence and forced end snapshots block
            # (bounded) — a dropped one would make the recorded row
            # stream depend on parent scheduling.
            block = force or live_every is not None
            deadline = time.monotonic() + (
                _RESULT_PUSH_TIMEOUT_S if block else 0.0
            )
            while True:
                try:
                    _, writable, _ = select.select(
                        [], [tele_conn], [], 0
                    )
                except (OSError, ValueError):
                    return
                if writable:
                    break
                if time.monotonic() >= deadline:
                    live_dropped_snapshots += 1
                    return
                time.sleep(0.001)
            try:
                tele_conn.send(snapshot)
            except (BrokenPipeError, OSError):
                return
            live_seq += 1

        def maybe_live() -> None:
            nonlocal live_next, live_packets_since
            if live_every is not None:
                if live_packets_since >= live_every:
                    live_packets_since %= live_every
                    live_snapshot()
            elif live_next is not None:
                now = time.monotonic()
                if now >= live_next:
                    live_snapshot()
                    live_next = now + live_interval

        if tele_conn is not None:
            # Birth heartbeat: the aggregator learns the shard exists
            # (and, after a respawn, that it is back) without waiting a
            # full cadence interval.
            live_snapshot()

        use_columnar = engine in ("auto", "columnar")

        def push_outcomes(latencies, egress, dropped, n: int) -> None:
            deadline = time.monotonic() + _RESULT_PUSH_TIMEOUT_S
            while not write_result_record(
                channel.results, batch_ordinal, latencies, egress, dropped, n
            ):
                if time.monotonic() >= deadline:
                    return
                time.sleep(0.001)

        def replay_any(batch, n: int, timestamps) -> None:
            """Replay one batch (Packet list or ColumnBatch) via the tier."""
            nonlocal stats, batch_ordinal, live_packets_since
            if injector is not None:
                injector.before_batch(n)
            if stats is None:
                stats = RunStats()
            n_before = len(stats._latencies)
            outcome = emulator.replay_batch(
                batch, stats, timestamps=timestamps, engine=engine
            )
            if channel is not None:
                if outcome is not None:
                    push_outcomes(
                        outcome.latencies,
                        outcome.egress,
                        outcome.dropped,
                        outcome.n,
                    )
                else:
                    push_outcomes(
                        stats._latencies[n_before:],
                        (p.egress_port for p in batch),
                        (p.dropped for p in batch),
                        n,
                    )
            batch_ordinal += 1
            if tele_conn is not None:
                live_packets_since += n
                maybe_live()

        def replay_packets(packets: list[Packet], timestamps) -> None:
            replay_any(packets, len(packets), timestamps)
            for packet in packets:
                pool.release(packet)

        def replay_ring_head(record) -> None:
            _wm, blob, values, sizes, ts = read_batch_record(record)
            names = names_memo.get(blob)
            if names is None:
                names = names_memo[blob] = decode_names(blob)
            if use_columnar:
                # Consume the SoA views in place: no row -> Packet
                # materialisation and no copy — the batch kernels read
                # the ring slot directly and copy-on-write any column
                # they modify, so the slot stays pristine (demoted
                # packets re-materialise from it). The cursor therefore
                # advances only *after* replay; it still moves once per
                # batch, which keeps supervision and the dispatcher's
                # backpressure live (the parent drains result records
                # while stalled on a full data ring).
                batch = ColumnBatch.from_matrix(names, values, sizes, ts)
                replay_any(batch, batch.n, None)
                channel.data.advance()
                return
            packets: list[Packet] = []
            for row, size in zip(values.T.tolist(), sizes.tolist()):
                packet = pool.acquire(size)
                packet.fields = dict(zip(names, row))
                packets.append(packet)
            timestamps = ts.tolist() if ts is not None else None
            # Advance before replaying: the rows were copied out, the
            # slot can be refilled while this batch replays, and the
            # consumer cursor doubles as the supervisor's (and the
            # dispatcher's backpressure) progress signal.
            channel.data.advance()
            replay_packets(packets, timestamps)

        def drain_ready() -> bool:
            """Replay every ring batch whose pipe watermark is met."""
            nonlocal busy
            did = False
            while True:
                record = channel.data.peek()
                if record is None or record.meta[2] > pipe_seen:
                    return did
                start = time.process_time()
                replay_ring_head(record)
                busy += time.process_time() - start
                did = True

        def drain_to(ring_watermark: int) -> None:
            """Replay ring batches published before a pipe message."""
            nonlocal busy
            deadline = time.monotonic() + _RING_SYNC_TIMEOUT_S
            while channel.data.consumed < ring_watermark:
                record = channel.data.peek()
                if record is None:
                    # Publish happens-before the pipe send, so the
                    # record must be visible; a persistent miss is a
                    # transport protocol violation, not a slow parent.
                    if time.monotonic() >= deadline:
                        raise EmulationError(
                            f"shard {shard_index}: ring consumed "
                            f"{channel.data.consumed} but the pipe "
                            f"watermark promises {ring_watermark} "
                            "published records"
                        )
                    time.sleep(0.0002)
                    continue
                start = time.process_time()
                replay_ring_head(record)
                busy += time.process_time() - start

        while True:
            if channel is not None:
                drained = drain_ready()
                if tele_conn is not None:
                    maybe_live()
                try:
                    if not conn.poll(0.0 if drained else _IDLE_POLL_S):
                        continue
                except (EOFError, OSError):
                    break  # parent went away
            elif tele_conn is not None:
                # Pipe transport blocks in recv between messages; poll
                # instead so wall-cadence heartbeats keep flowing while
                # the worker idles.
                maybe_live()
                try:
                    if not conn.poll(_IDLE_POLL_S):
                        continue
                except (EOFError, OSError):
                    break  # parent went away
            message = conn.recv()
            op = message[0]
            if channel is not None:
                drain_to(message[-1])
            pipe_seen += 1
            start = time.process_time()
            if op == "batch":
                packets = decode_batch(message[1], pool)
                replay_packets(packets, message[2])
            elif op == "begin":
                stats = RunStats()
                busy = 0.0
                batch_ordinal = 0
                live_offset = 0
            elif op == "end":
                busy += time.process_time() - start
                if tele_conn is not None:
                    # Forced final snapshot: the aggregator's counters
                    # converge to the replay summary at end-of-run, not
                    # one cadence interval later.
                    live_snapshot(force=True)
                reply(
                    (
                        "done",
                        stats if stats is not None else RunStats(),
                        _worker_state(emulator),
                        busy,
                        epoch,
                    )
                )
                if stats is not None:
                    life_packets += stats.packets
                    life_dropped += stats.dropped
                stats = None
                live_offset = 0
                continue
            elif op == "entries":
                emulator.set_table_entries(message[1], message[2])
                epoch = message[3]
            elif op == "invalidate":
                emulator.invalidate_caches_covering(message[1])
                epoch = message[2]
            elif op == "flush":
                emulator.flush_caches()
                epoch = message[1]
            elif op == "reset":
                emulator.counters.reset()
                for cache in emulator.flow_caches.values():
                    cache.stats.reset_rates()
                if emulator.native_cache is not None:
                    emulator.native_cache.stats.reset_rates()
                if emulator.tracer is not None:
                    emulator.tracer.reset()
            elif op == "collect":
                reply(("state", _worker_state(emulator), epoch))
                continue
            elif op == "dump":
                reply(
                    (
                        "caches",
                        {
                            name: dict(cache._store)
                            for name, cache in emulator.flow_caches.items()
                        },
                        (
                            dict(emulator.native_cache._store)
                            if emulator.native_cache is not None
                            else None
                        ),
                        {
                            name: runtime.entries()
                            for name, runtime in emulator.runtime_tables.items()
                        },
                    )
                )
                continue
            elif op == "close":
                reply(("bye",))
                break
            else:  # pragma: no cover - protocol error
                raise EmulationError(f"Unknown worker op {op!r}")
            busy += time.process_time() - start
    except EOFError:  # parent went away
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        if channel is not None:
            # Forked consumer: drop the mapping only; the parent owns
            # the segments and unlinks them.
            channel.close(unlink=False)
        if tele_conn is not None:
            try:
                tele_conn.close()
            except OSError:  # pragma: no cover - already broken
                pass
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side engine
# ---------------------------------------------------------------------------


class ShardedEmulator:
    """N forked workers, each replaying one flow-hash shard.

    Construct from a fully configured *template* emulator (entries
    installed, options set): workers are forked immediately and inherit
    an independent copy-on-write clone of its entire state, so every
    shard starts from exactly the state a single-core run would. The
    template must not process traffic afterwards; parent-side state
    changes only reach workers through the broadcast methods
    (:meth:`set_table_entries`, :meth:`invalidate_caches_covering`,
    :meth:`flush_caches`), which :class:`repro.core.sharded.
    ShardedDeployment` wires to control-plane events.

    Alternatively pass ``factory`` (called as ``factory(shard_index)``
    inside each worker) to build per-worker emulators from scratch.

    ``options`` configures the worker supervisor (timeouts, retry
    budget, recovery policy — see :class:`SupervisorOptions`);
    ``telemetry`` receives supervision events and fault counters;
    ``fault_plan`` arms deterministic scripted failures in the workers
    (:mod:`repro.nic.faults`).
    """

    def __init__(
        self,
        emulator: Optional[NicEmulator] = None,
        n_workers: int = 2,
        *,
        factory: Optional[Callable[[int], NicEmulator]] = None,
        batch: int = 256,
        clock: Optional[SimClock] = None,
        options: Optional[SupervisorOptions] = None,
        telemetry=None,
        fault_plan: Optional[FaultPlan] = None,
        transport: str = "shm",
        ring_slots: Optional[int] = None,
        engine: str = "auto",
        live_interval_s: Optional[float] = None,
        live_every_packets: Optional[int] = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if transport not in _TRANSPORTS:
            raise ValueError(
                f"Unknown transport {transport!r}; expected one of "
                f"{', '.join(_TRANSPORTS)}"
            )
        if engine not in _ENGINES:
            raise ValueError(
                f"Unknown engine {engine!r}; expected one of "
                f"{', '.join(_ENGINES)}"
            )
        #: Execution tier every worker replays through. ``auto`` and
        #: ``columnar`` consume shm SoA batches in place (no row ->
        #: Packet materialisation); the tiers are stats-identical.
        self.engine = engine
        if ring_slots is not None and ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if live_interval_s is not None and live_interval_s <= 0:
            raise ValueError("live_interval_s must be > 0")
        if live_every_packets is not None and live_every_packets < 1:
            raise ValueError("live_every_packets must be >= 1")
        #: Live telemetry cadence: wall-interval heartbeats and/or a
        #: deterministic packet-count snapshot period. Either one arms
        #: the sidecar pipes (see :attr:`live_conns`).
        self.live_interval_s = live_interval_s
        self.live_every_packets = live_every_packets
        self._live = (
            live_interval_s is not None or live_every_packets is not None
        )
        #: Parent (receive) ends of the per-shard telemetry sidecar
        #: pipes; ``None`` per shard when the live plane is off or the
        #: shard is degraded. Drained by the LiveAggregator thread.
        self.live_conns: list = []
        self.transport = transport
        self._ring_slots = (
            ring_slots if ring_slots is not None else DEFAULT_RING_SLOTS
        )
        if (emulator is None) == (factory is None):
            raise ValueError(
                "Pass exactly one of a template emulator or a factory"
            )
        self.options = (
            options if options is not None else SupervisorOptions()
        )
        self.telemetry = telemetry
        if fault_plan is not None and fault_plan.max_shard() >= n_workers:
            raise ValueError(
                f"Fault plan targets shard {fault_plan.max_shard()} "
                f"but only {n_workers} workers exist"
            )
        self._fault_plan = fault_plan
        self._birth_tables: Optional[dict[str, list[TableEntry]]] = None
        if factory is None:
            template = emulator
            factory = lambda shard: template  # noqa: E731 - fork copy
            if self.options.recovery == "respawn":
                # Rebirth snapshot: a respawned worker re-forks the
                # *live* template, whose tables may have changed since
                # construction; it restores this construction-time
                # snapshot before the journal replay (see
                # _restore_birth_state).
                self._birth_tables = {
                    name: [entry.clone() for entry in runtime.entries()]
                    for name, runtime in emulator.runtime_tables.items()
                }
        self._factory = factory
        self.n_workers = n_workers
        self.batch = batch
        self.clock = clock if clock is not None else (
            emulator.clock if emulator is not None else None
        )
        #: Last broadcast update epoch; workers echo the epoch they have
        #: applied so collection can assert the broadcast drained.
        self.epoch = 0
        self.counters = CounterBank()
        self.explicit_counters: dict[str, int] = {}
        self.cache_stats: dict[str, CacheStats] = {}
        self.native_cache_stats: Optional[CacheStats] = None
        #: Merged per-reason columnar demotion counts from the last
        #: collection (``pipeleon_columnar_demotions_total`` labels).
        self.columnar_demotions: dict[str, int] = {}
        #: Packets the workers' columnar kernels fully retired.
        self.columnar_packets = 0
        #: Flow-key partitions the workers' batch kernels resolved.
        self.columnar_partitions = 0
        #: Merged per-worker packet tracer from the last collection
        #: (None unless the worker emulators carry tracers).
        self.tracer = None
        self.worker_busy_s: list[float] = [0.0] * n_workers
        #: Raw per-worker telemetry from the last collection (shard
        #: index order) — per-shard profiling reads these.
        self.worker_states: list[dict] = []
        #: Per-shard respawn counts (recovery="respawn").
        self.respawns: list[int] = [0] * n_workers
        #: Cumulative packets whose results died with a degraded shard.
        self.lost_packets = 0
        self._journaling = self.options.recovery == "respawn"
        self._journals = [
            ShardJournal(self.options.journal_limit)
            for _ in range(n_workers)
        ]
        self._dead = [False] * n_workers
        self._dispatched_since_begin = [0] * n_workers
        #: Pipe messages successfully sent per shard: the watermark
        #: stamped into every ring record (see module docstring).
        self._pipe_sent = [0] * n_workers
        #: Per-shard transport counters (see :func:`_new_ring_stats`);
        #: aggregated by :meth:`transport_stats`.
        self.ring_stats = [_new_ring_stats() for _ in range(n_workers)]
        #: Optional callable ``(shard, batch_ordinal, latencies,
        #: egress, dropped)`` receiving per-packet outcome columns as
        #: the result rings drain (shm transport only).
        self.outcome_sink = None
        self._lost_this_replay = 0
        self._in_replay = False
        self._closed = False
        try:
            context = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-posix
            raise EmulationError(
                "ShardedEmulator requires the 'fork' start method"
            ) from exc
        self._context = context
        self._conns = []
        self._procs = []
        self._channels: list[Optional[ShardChannel]] = []
        for shard in range(n_workers):
            conn, process, channel, tele = self._spawn(shard)
            self._conns.append(conn)
            self._procs.append(process)
            self._channels.append(channel)
            self.live_conns.append(tele)
        # Guaranteed teardown: if the owner never calls close() (e.g. a
        # mid-replay exception unwinds past it), interpreter exit still
        # reaps the forked workers instead of leaking them.
        atexit.register(self.close)

    def _spawn(self, shard: int, rebirth: bool = False):
        fault_specs: tuple[FaultSpec, ...] = ()
        if not rebirth and self._fault_plan is not None:
            fault_specs = self._fault_plan.for_shard(shard)
        channel = None
        if self.transport == "shm":
            # Created before the fork so the worker inherits the very
            # same mapping — no attach handshake, no name exchange.
            channel = ShardChannel(self.batch, slots=self._ring_slots)
        tele_parent = tele_child = None
        if self._live:
            # Sidecar telemetry pipe: unsolicited worker -> parent
            # snapshots must never interleave with the supervised
            # reply protocol on the command pipe.
            tele_parent, tele_child = self._context.Pipe(duplex=False)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._factory,
                shard,
                fault_specs,
                rebirth,
                self._birth_tables if rebirth else None,
                channel,
                self.engine,
                tele_child,
                (self.live_interval_s, self.live_every_packets),
            ),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        process.start()
        child_conn.close()
        if tele_child is not None:
            tele_child.close()
        return parent_conn, process, channel, tele_parent

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ShardedEmulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut every worker down (idempotent, bounded).

        Shutdown must never block on a sick worker: the close
        handshake is writability-guarded and deadline-polled, and any
        worker that does not exit in time is terminated (then killed).
        Wall time is bounded by a few ``close_timeout_s`` per worker
        even when every pipe buffer is full and every worker is hung.
        """
        if self._closed:
            return
        self._closed = True
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass
        timeout = self.options.close_timeout_s
        try:
            # Free any worker spinning on a full result ring so the
            # close handshake can reach it.
            self._drain_all_results()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        handshook = []
        for shard, conn in enumerate(self._conns):
            if self._dead[shard]:
                continue
            try:
                if self._wait_writable(conn, timeout):
                    conn.send(("close", self._ring_watermark(shard)))
                    handshook.append(shard)
            except (BrokenPipeError, OSError):
                pass
        for shard in handshook:
            conn = self._conns[shard]
            try:
                if conn.poll(timeout):
                    conn.recv()
            except (EOFError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for process in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():  # hung or wedged worker
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():  # pragma: no cover - kill-proof
                    process.kill()
                    process.join(timeout=1.0)
        for shard, channel in enumerate(self._channels):
            if channel is not None:
                self._channels[shard] = None
                channel.close(unlink=True)
        for shard, tele in enumerate(self.live_conns):
            if tele is not None:
                self.live_conns[shard] = None
                try:
                    tele.close()
                except OSError:  # pragma: no cover - already closed
                    pass

    def _check_open(self) -> None:
        if self._closed:
            raise EmulationError("ShardedEmulator is closed")

    # -- supervision primitives --------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.events.emit(kind, **fields)

    def _count(self, name: str, value: float = 1.0, **labels) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.inc(
                name, value, help=_METRIC_HELP.get(name, ""), **labels
            )

    @staticmethod
    def _wait_writable(conn, timeout_s: float) -> bool:
        """True when the pipe can accept a send without blocking."""
        try:
            _, writable, _ = select.select([], [conn], [], timeout_s)
        except (OSError, ValueError):
            # Closed/invalid handle: let send raise the real error.
            return True
        return bool(writable)

    def _survivors(self) -> list[int]:
        return [s for s in range(self.n_workers) if not self._dead[s]]

    # -- transport primitives ----------------------------------------------

    def _ring_watermark(self, shard: int) -> int:
        """Ring records published to this shard (stamped on pipe sends)."""
        channel = self._channels[shard]
        return channel.data.produced if channel is not None else 0

    def _progress_token(self, shard: int):
        """Worker-side cursors; any advance proves the worker is alive.

        A worker draining a full ring (or streaming outcome records)
        can be pipe-silent for arbitrarily long, so the hung deadline
        measures silence since the *last observed progress* — consumer
        cursor or result production advance — not since the request.
        With the pipe transport there are no rings: the token is
        constant and the deadline degenerates to the plain reply
        deadline.
        """
        channel = self._channels[shard]
        if channel is None:
            return None
        return (channel.data.consumed, channel.results.produced)

    def _drain_results(self, shard: int) -> bool:
        """Consume the shard's ready outcome records; True if any."""
        channel = self._channels[shard]
        if channel is None:
            return False
        sink = None
        if self.outcome_sink is not None:
            outcome_sink = self.outcome_sink

            def sink(ordinal, latencies, egress, dropped):
                outcome_sink(shard, ordinal, latencies, egress, dropped)

        batches, packets = channel.drain_results(sink)
        if batches:
            stats = self.ring_stats[shard]
            stats["result_batches"] += batches
            stats["result_packets"] += packets
        return batches > 0

    def _drain_all_results(self) -> None:
        for shard in range(self.n_workers):
            self._drain_results(shard)

    def _observe_occupancy(self, shard: int, occupancy: float) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.observe(
                "pipeleon_ring_occupancy",
                occupancy,
                help=_METRIC_HELP["pipeleon_ring_occupancy"],
                buckets=_OCCUPANCY_BUCKETS,
                shard=shard,
            )

    def _count_fallback(self, shard: int, reason: str) -> None:
        self.ring_stats[shard][f"fallback_{reason}"] += 1
        self._count(
            "pipeleon_pipe_fallback_total", shard=shard, reason=reason
        )

    def transport_stats(self) -> dict:
        """Transport-level dispatch counters, merged and per shard."""
        per_shard = [dict(stats) for stats in self.ring_stats]
        totals = _new_ring_stats()
        for stats in per_shard:
            for key, value in stats.items():
                if key == "max_occupancy":
                    totals[key] = max(totals[key], value)
                else:
                    totals[key] += value
        return {
            "transport": self.transport,
            "ring_slots": self._ring_slots,
            "totals": totals,
            "per_shard": per_shard,
        }

    def _guarded_send(
        self,
        shard: int,
        message: tuple,
        *,
        context: str,
        n_packets: int = 0,
        journal: bool = True,
    ) -> bool:
        """Deliver ``message`` to a shard under send supervision.

        The send is writability-checked first and retried with
        exponential backoff (a transient stall — the worker busy with
        a long batch while its pipe fills — therefore doesn't abort a
        broadcast). Returns True once the message has reached the
        shard's worker: possibly a *fresh* worker, via journal replay
        for journaled messages or a direct resend for non-journaled
        ones. Returns False if the shard is (or just became) degraded;
        raises in ``fail`` mode.
        """
        if self._dead[shard]:
            return False
        if journal and self._journaling:
            self._journals[shard].append(message, n_packets)
        opts = self.options
        while True:
            conn = self._conns[shard]
            process = self._procs[shard]
            start = time.monotonic()
            kind = None
            for attempt in range(opts.send_retries + 1):
                if attempt:
                    self._count(
                        "pipeleon_broadcast_retries_total", shard=shard
                    )
                    time.sleep(
                        opts.backoff_base_s * (2 ** (attempt - 1))
                    )
                if not self._wait_writable(conn, opts.send_timeout_s):
                    kind = "hung"
                    continue
                try:
                    # Every pipe message carries the shard's ring
                    # watermark as its final element; the journal keeps
                    # the canonical unstamped form (replay re-stamps
                    # against the fresh ring).
                    conn.send(
                        message + (self._ring_watermark(shard),)
                    )
                    self._pipe_sent[shard] += 1
                    return True
                except (BrokenPipeError, OSError):
                    kind = "dead"
                    break
            if kind == "hung" and not process.is_alive():
                kind = "dead"
            if not self._handle_failure(
                shard,
                kind or "hung",
                context=context,
                elapsed_s=time.monotonic() - start,
            ):
                return False
            if journal and self._journaling:
                # The journal replay already delivered this message to
                # the respawned worker.
                return True
            # Non-journaled message: send it to the fresh worker.

    def _recv_supervised(self, shard: int, *, context: str):
        """One reply under deadline supervision.

        Polls on a heartbeat so a dead process is noticed immediately
        rather than at ``recv_timeout_s``. A reply later than
        ``slow_after_s`` emits a one-shot ``worker_slow`` event but is
        still waited for; a worker *silent and progress-free* past
        ``recv_timeout_s`` is classified (hung if alive, dead
        otherwise) and a :class:`_WorkerGone` is raised for the
        caller's recovery policy. Progress is the shm transport's
        worker-side cursor token (:meth:`_progress_token`): a worker
        still draining a full ring keeps resetting its deadline
        instead of being misclassified as hung. A worker ``error``
        reply is a deterministic program error — respawning would just
        replay it — so it raises :class:`EmulationError` regardless of
        recovery mode.
        """
        opts = self.options
        conn = self._conns[shard]
        process = self._procs[shard]
        start = time.monotonic()
        last_progress = start
        progress = self._progress_token(shard)
        slow_reported = False
        while True:
            # Keep the result ring drained so the worker can never
            # block on outcomes while we wait for its reply.
            self._drain_results(shard)
            token = self._progress_token(shard)
            if token != progress:
                progress = token
                last_progress = time.monotonic()
            try:
                ready = conn.poll(opts.heartbeat_interval_s)
            except (EOFError, OSError):
                ready = False
                process.join(timeout=1.0)
                raise _WorkerGone("dead", time.monotonic() - start)
            if ready:
                try:
                    message = conn.recv()
                # EOFError on a clean hangup; SIGKILL mid-write
                # surfaces as ConnectionResetError (an OSError).
                except (EOFError, OSError):
                    process.join(timeout=1.0)
                    raise _WorkerGone("dead", time.monotonic() - start)
                if message[0] == "error":
                    self._reap(shard)
                    raise EmulationError(
                        f"Shard worker failed:\n{message[1]}"
                    )
                if slow_reported:
                    self._emit(
                        "worker_recovered",
                        shard=shard,
                        state="slow",
                        context=context,
                        elapsed_s=round(time.monotonic() - start, 3),
                    )
                return message
            elapsed = time.monotonic() - start
            if not process.is_alive():
                # A final reply can race the death; drain it first.
                try:
                    if conn.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                process.join(timeout=1.0)
                raise _WorkerGone("dead", elapsed)
            if not slow_reported and elapsed >= opts.slow_after_s:
                slow_reported = True
                self._emit(
                    "worker_slow",
                    shard=shard,
                    context=context,
                    elapsed_s=round(elapsed, 3),
                )
                self._count(
                    "pipeleon_worker_faults_total",
                    kind="slow",
                    shard=shard,
                )
            if time.monotonic() - last_progress >= opts.recv_timeout_s:
                raise _WorkerGone("hung", elapsed)

    def _handle_failure(
        self, shard: int, kind: str, *, context: str, elapsed_s: float
    ) -> bool:
        """Recover a dead/hung worker per the recovery policy.

        Returns True when the shard is healthy again (respawned) and
        False when it was degraded; raises in ``fail`` mode, on an
        exhausted respawn budget, and for deterministic worker program
        errors (drained here from the broken pipe's buffer so the
        original traceback surfaces instead of a generic death).
        """
        opts = self.options
        conn = self._conns[shard]
        process = self._procs[shard]
        try:
            if conn.poll(0):
                message = conn.recv()
                if message and message[0] == "error":
                    self._reap(shard)
                    raise EmulationError(
                        f"Shard worker failed:\n{message[1]}"
                    )
        except (EOFError, OSError):
            pass
        self._emit(
            f"worker_{kind}",
            shard=shard,
            context=context,
            elapsed_s=round(elapsed_s, 3),
            exitcode=process.exitcode,
            recovery=opts.recovery,
        )
        self._count(
            "pipeleon_worker_faults_total", kind=kind, shard=shard
        )
        if opts.recovery == "respawn":
            if self.respawns[shard] >= opts.max_respawns:
                self._reap(shard)
                raise EmulationError(
                    f"Shard worker {shard} ({process.name}) {kind} "
                    f"during {context}; respawn budget exhausted "
                    f"({opts.max_respawns} respawns)"
                )
            self._respawn(shard)
            return True
        if opts.recovery == "degraded":
            self._degrade(shard, kind=kind, context=context)
            return False
        self._reap(shard)
        if kind == "hung":
            raise EmulationError(
                f"Shard worker {shard} ({process.name}) unresponsive "
                f"during {context}: no reply within {elapsed_s:.2f}s "
                f"(recv_timeout_s={opts.recv_timeout_s}); worker "
                "terminated. Use SupervisorOptions(recovery='respawn') "
                "to escalate hung workers with terminate-then-respawn."
            )
        raise EmulationError(
            f"Shard worker {shard} ({process.name}, "
            f"exitcode {process.exitcode}) died without replying "
            f"during {context}; its shard's results are lost"
        )

    def _reap(self, shard: int) -> None:
        """Terminate-and-join one worker, closing its pipe (idempotent)."""
        process = self._procs[shard]
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join(timeout=1.0)
        else:
            process.join(timeout=1.0)
        try:
            self._conns[shard].close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _respawn(self, shard: int) -> None:
        """Terminate-then-respawn: rebuild the shard from its journal."""
        journal = self._journals[shard]
        self._reap(shard)
        old_channel = self._channels[shard]
        self._channels[shard] = None
        if old_channel is not None:
            # In-flight ring records died with the worker; the journal
            # holds every batch, so discard the old segments and start
            # the fresh worker on fresh (zeroed) rings.
            old_channel.close(unlink=True)
        self.respawns[shard] += 1
        conn, process, channel, tele = self._spawn(shard, rebirth=True)
        self._conns[shard] = conn
        self._procs[shard] = process
        self._channels[shard] = channel
        old_tele = self.live_conns[shard]
        # Swap before closing: the aggregator thread re-reads the list
        # each drain, and a recv racing the close just raises OSError.
        self.live_conns[shard] = tele
        if old_tele is not None:
            try:
                old_tele.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._pipe_sent[shard] = 0
        self._count("pipeleon_worker_respawns_total", shard=shard)
        self._emit(
            "worker_respawned",
            shard=shard,
            respawns=self.respawns[shard],
            journal_messages=len(journal.entries),
            journal_batches=journal.batches,
            truncated=journal.truncated,
        )
        if journal.truncated:
            self._emit(
                "journal_truncated",
                shard=shard,
                dropped_batches=journal.dropped_batches,
                dropped_packets=journal.dropped_packets,
            )
        self._replay_journal(shard)
        self._emit(
            "worker_recovered",
            shard=shard,
            state="respawned",
            epoch=self.epoch,
        )

    def _replay_journal(self, shard: int) -> None:
        """Feed a freshly respawned worker its shard's message history.

        Sends are deadline-guarded but not recovery-looped: a worker
        that cannot even absorb its own journal is not recoverable.
        """
        conn = self._conns[shard]
        timeout = self.options.send_timeout_s
        for message, _n in self._journals[shard].entries:
            delivered = False
            if self._wait_writable(conn, timeout):
                try:
                    # Journal replay is the cold path: every message —
                    # batches included — travels the pipe, stamped
                    # against the fresh (empty) ring.
                    conn.send(
                        message + (self._ring_watermark(shard),)
                    )
                    self._pipe_sent[shard] += 1
                    delivered = True
                except (BrokenPipeError, OSError):
                    pass
            if not delivered:
                self._reap(shard)
                raise EmulationError(
                    f"Shard worker {shard} respawn failed: journal "
                    "replay stalled or the fresh worker died"
                )

    def _degrade(self, shard: int, *, kind: str, context: str) -> None:
        """Mark a shard dead; future flows reroute to the survivors."""
        self._reap(shard)
        channel = self._channels[shard]
        self._channels[shard] = None
        if channel is not None:
            channel.close(unlink=True)
        tele = self.live_conns[shard] if self.live_conns else None
        if tele is not None:
            self.live_conns[shard] = None
            try:
                tele.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._dead[shard] = True
        survivors = self._survivors()
        if not survivors:
            raise EmulationError(
                f"All {self.n_workers} shard workers have failed; "
                "no survivors to degrade onto"
            )
        lost = (
            self._dispatched_since_begin[shard] if self._in_replay else 0
        )
        self._dispatched_since_begin[shard] = 0
        self._lost_this_replay += lost
        self.lost_packets += lost
        if lost:
            self._count(
                "pipeleon_packets_lost_total", value=lost, shard=shard
            )
        self._emit(
            "shard_degraded",
            shard=shard,
            failure=kind,
            context=context,
            lost_packets=lost,
            survivors=len(survivors),
        )

    def _transact(self, shard: int, message: tuple, *, context: str):
        """A reply-bearing exchange (end/collect/dump) with recovery.

        Reply-bearing ops are deliberately not journaled — after a
        respawn rebuilds state from the journal, this loop simply
        re-issues the request. Returns None when the shard is (or
        becomes) degraded.
        """
        while not self._dead[shard]:
            if not self._guarded_send(
                shard, message, context=context, journal=False
            ):
                return None
            try:
                return self._recv_supervised(shard, context=context)
            except _WorkerGone as gone:
                if not self._handle_failure(
                    shard,
                    gone.kind,
                    context=context,
                    elapsed_s=gone.elapsed_s,
                ):
                    return None
        return None

    def _gather(self, message: tuple, *, context: str) -> list:
        """Broadcast a reply-bearing op, then collect every reply.

        Two-phase (send to all live shards, then drain) so workers
        produce their replies in parallel; each shard's recv still
        runs under supervision with per-shard recovery. The returned
        list has one slot per shard; degraded shards hold None.
        """
        sent = [False] * self.n_workers
        for shard in range(self.n_workers):
            if not self._dead[shard]:
                sent[shard] = self._guarded_send(
                    shard, message, context=context, journal=False
                )
        replies: list = [None] * self.n_workers
        for shard in range(self.n_workers):
            if self._dead[shard] or not sent[shard]:
                continue
            try:
                replies[shard] = self._recv_supervised(
                    shard, context=context
                )
            except _WorkerGone as gone:
                if self._handle_failure(
                    shard,
                    gone.kind,
                    context=context,
                    elapsed_s=gone.elapsed_s,
                ):
                    replies[shard] = self._transact(
                        shard, message, context=context
                    )
        return replies

    def _broadcast(
        self, message: tuple, *, context: str, journal: bool = True
    ) -> None:
        self._check_open()
        for shard in range(self.n_workers):
            self._guarded_send(
                shard, message, context=context, journal=journal
            )

    # -- control-plane broadcast (epoch-versioned) -------------------------

    def set_table_entries(
        self, table: str, entries: Iterable[TableEntry]
    ) -> int:
        """Install a table's full entry list on every worker.

        Returns the new broadcast epoch. The pipe is FIFO, so the
        update lands before any batch dispatched after this call; the
        worker's next ``fastpath`` access sees the bumped runtime-table
        version and recompiles.
        """
        self.epoch += 1
        self._broadcast(
            ("entries", table, list(entries), self.epoch),
            context=f"entries broadcast ({table})",
        )
        return self.epoch

    def invalidate_caches_covering(self, table: str) -> int:
        self.epoch += 1
        self._broadcast(
            ("invalidate", table, self.epoch),
            context=f"invalidate broadcast ({table})",
        )
        return self.epoch

    def flush_caches(self) -> int:
        self.epoch += 1
        self._broadcast(
            ("flush", self.epoch), context="flush broadcast"
        )
        return self.epoch

    def apply_update(self, event: UpdateEvent, entries: list[TableEntry]) -> int:
        """Apply one control-plane event: entries rebuild + invalidation."""
        if event.op == "flush":
            return self.flush_caches()
        epoch = self.set_table_entries(event.table, entries)
        self.invalidate_caches_covering(event.table)
        return epoch

    # -- telemetry ---------------------------------------------------------

    @property
    def degraded_shards(self) -> list[int]:
        """Shards lost to degraded-mode recovery (empty when healthy)."""
        return [s for s in range(self.n_workers) if self._dead[s]]

    def live_shard_status(self) -> list[dict]:
        """Parent-side per-shard liveness and transport view.

        The LiveAggregator thread polls this between snapshot drains:
        every field is a single int/bool attribute read (GIL-atomic
        against the dispatching main thread) or a shm-header read, so
        no locking is needed. ``respawns`` is the deterministic death
        witness — the aggregator diffs it against the shard's last
        heartbeat to flag a kill that a fast respawn hid from pure
        wall-clock staleness. Ring occupancy is sampled live from the
        data ring's header (None for pipe transport or a torn-down
        channel mid-respawn).
        """
        status = []
        for shard in range(self.n_workers):
            process = self._procs[shard]
            channel = self._channels[shard]
            occupancy = None
            if channel is not None:
                try:
                    occupancy = channel.data.occupancy()
                except (OSError, ValueError):
                    # Racing a respawn's segment teardown.
                    occupancy = None
            ring = self.ring_stats[shard]
            status.append(
                {
                    "shard": shard,
                    "alive": (
                        not self._dead[shard] and process.is_alive()
                    ),
                    "dead": self._dead[shard],
                    "respawns": self.respawns[shard],
                    "ring_occupancy": occupancy,
                    "ring_stalls": ring["stalls"],
                    "pushed_batches": ring["pushed_batches"],
                }
            )
        return status

    @property
    def total_respawns(self) -> int:
        return sum(self.respawns)

    def reset_telemetry(self) -> None:
        self._broadcast(("reset",), context="telemetry reset")

    def _merge_states(self, states: list[dict]) -> None:
        counters: Optional[CounterBank] = None
        explicit: dict[str, int] = {}
        cache_stats: dict[str, CacheStats] = {}
        native: Optional[CacheStats] = None
        tracer = None
        demotions: dict[str, int] = {}
        columnar_packets = 0
        columnar_partitions = 0
        for state in states:
            # .get: states pickled by an older worker may predate the
            # columnar tier.
            for reason, count in state.get("demotions", {}).items():
                demotions[reason] = demotions.get(reason, 0) + count
            columnar_packets += state.get("columnar_packets", 0)
            columnar_partitions += state.get("columnar_partitions", 0)
            worker_tracer = state.get("tracer")
            if worker_tracer is not None:
                if tracer is None:
                    tracer = worker_tracer.spawn_empty()
                tracer.merge(worker_tracer)
            bank = state["counters"]
            if counters is None:
                counters = CounterBank(bank.sample_stride)
            counters.merge(bank)
            for key, value in state["explicit"].items():
                explicit[key] = explicit.get(key, 0) + value
            for name, stats in state["cache_stats"].items():
                merged = cache_stats.get(name)
                if merged is None:
                    merged = cache_stats[name] = CacheStats()
                merged.merge(stats)
            if state["native_stats"] is not None:
                if native is None:
                    native = CacheStats()
                native.merge(state["native_stats"])
        self.worker_states = states
        self.counters = counters if counters is not None else CounterBank()
        self.explicit_counters = explicit
        self.cache_stats = cache_stats
        self.native_cache_stats = native
        self.tracer = tracer
        # Cumulative totals, like the counter banks: the metrics
        # registry picks them up at export time (telemetry.export.
        # export_columnar), never from this merge.
        self.columnar_demotions = demotions
        self.columnar_packets = columnar_packets
        self.columnar_partitions = columnar_partitions

    def collect(self) -> None:
        """Barrier: refresh merged counters/cache stats from all workers."""
        self._check_open()
        states = []
        for shard, reply in enumerate(
            self._gather(("collect",), context="collect")
        ):
            if reply is None:
                continue
            tag, state, epoch = reply
            if epoch != self.epoch:
                raise EmulationError(
                    f"Shard {shard} applied epoch {epoch}, "
                    f"expected {self.epoch}"
                )
            states.append(state)
        self._merge_states(states)

    def dump_caches(self) -> list[tuple[dict, Optional[dict], dict]]:
        """Per-worker cache stores and table entries (test support)."""
        self._check_open()
        dumps = []
        for reply in self._gather(("dump",), context="dump"):
            if reply is None:
                continue
            tag, stores, native, tables = reply
            dumps.append((stores, native, tables))
        return dumps

    # -- replay ------------------------------------------------------------

    def replay(
        self,
        packets: Iterable[Packet],
        offered_pps: Optional[float] = None,
        batch: Optional[int] = None,
        packet_pool: Optional[PacketPool] = None,
        stats: Optional[RunStats] = None,
    ) -> RunStats:
        """Shard, dispatch and replay ``packets``; returns merged stats.

        Same contract as :meth:`NicEmulator.replay`. With
        ``offered_pps`` the parent precomputes each packet's absolute
        clock time and ships it with the batch, so worker-local clocks
        observe exactly the per-packet times a single-core run would;
        the parent clock is advanced by the stream duration at the end.

        Under ``recovery="degraded"`` the merged stats cover only the
        packets a surviving worker replayed; the remainder is counted
        in ``RunStats.lost_packets``.
        """
        self._check_open()
        if batch is None:
            batch = self.batch
        if batch < 1:
            raise ValueError("batch must be >= 1")
        n = self.n_workers
        dt = 1.0 / offered_pps if offered_pps else 0.0
        t0 = self.clock.now_s if (dt and self.clock is not None) else 0.0
        self._lost_this_replay = 0
        for shard in range(n):
            self._dispatched_since_begin[shard] = 0
        self._broadcast(("begin",), context="replay begin")
        self._in_replay = True
        try:
            buffers: list[list[Packet]] = [[] for _ in range(n)]
            timestamps: Optional[list[list[float]]] = (
                [[] for _ in range(n)] if dt else None
            )
            count = 0
            for packet in packets:
                shard = flow_shard(packet.flow_key(), n)
                buffer = buffers[shard]
                buffer.append(packet)
                count += 1
                if dt:
                    timestamps[shard].append(t0 + dt * count)
                if len(buffer) >= batch:
                    self._flush(shard, buffers, timestamps, packet_pool)
            # Final drain. A degraded-mode flush redistributes its
            # buffer onto survivors — possibly one already drained this
            # sweep — so sweep until every buffer is empty.
            while any(buffers):
                for shard in range(n):
                    if buffers[shard]:
                        self._flush(
                            shard, buffers, timestamps, packet_pool
                        )
            if dt and self.clock is not None:
                self.clock.advance(dt * count)
            merged = stats if stats is not None else RunStats()
            states = []
            for shard, reply in enumerate(
                self._gather(("end",), context="replay end")
            ):
                if reply is None:
                    self.worker_busy_s[shard] = 0.0
                    continue
                tag, worker_stats, state, busy, epoch = reply
                if epoch != self.epoch:
                    raise EmulationError(
                        f"Shard {shard} applied epoch {epoch}, "
                        f"expected {self.epoch}"
                    )
                merged.merge(worker_stats)
                states.append(state)
                self.worker_busy_s[shard] = busy
            # Workers publish every outcome record before replying to
            # ``end``; one final drain leaves the result rings empty.
            self._drain_all_results()
        finally:
            self._in_replay = False
        merged.lost_packets += self._lost_this_replay
        self._merge_states(states)
        return merged

    def _flush(
        self,
        shard: int,
        buffers: list[list[Packet]],
        timestamps: Optional[list[list[float]]],
        packet_pool: Optional[PacketPool],
    ) -> None:
        buffer = buffers[shard]
        buffers[shard] = []
        ts = None
        if timestamps is not None:
            ts = timestamps[shard]
            timestamps[shard] = []
        if not self._dead[shard]:
            delivered = self._dispatch_batch(shard, buffer, ts)
            if delivered:
                self._dispatched_since_begin[shard] += len(buffer)
                if packet_pool is not None:
                    for packet in buffer:
                        packet_pool.release(packet)
                return
            # The shard degraded during this send: the batch was never
            # delivered, so fall through and reroute it.
        survivors = self._survivors()
        for index, packet in enumerate(buffer):
            target = survivors[
                hash(packet.flow_key()) % len(survivors)
            ]
            buffers[target].append(packet)
            if ts is not None:
                timestamps[target].append(ts[index])

    def _dispatch_batch(
        self,
        shard: int,
        buffer: list[Packet],
        ts: Optional[list[float]],
    ) -> bool:
        """Deliver one batch over the shard's transport.

        shm path: SoA-encode and push into the shard's data ring,
        journaling the equivalent pipe message first so respawn replay
        works unchanged. Falls back to the pipe — counted, per
        reason — when the batch is not SoA-encodable (metadata, mixed
        header sets, out-of-range values; ``reason="encoding"``) or
        exceeds the slot geometry (``reason="capacity"``). Returns
        False only when the shard degraded mid-dispatch.
        """
        channel = self._channels[shard]
        if channel is not None:
            encoded = soa_encode(buffer)
            if encoded is None:
                self._count_fallback(shard, "encoding")
            else:
                names, rows, sizes = encoded
                blob = channel.names_blob(names)
                if not channel.batch_fits(
                    rows.shape[0], rows.shape[1], len(blob)
                ):
                    self._count_fallback(shard, "capacity")
                else:
                    if self._journaling:
                        self._journals[shard].append(
                            ("batch", ("np", names, rows, sizes), ts),
                            len(buffer),
                        )
                    return self._push_batch_supervised(
                        shard,
                        names,
                        rows,
                        sizes,
                        ts,
                        n_packets=len(buffer),
                    )
        payload = encode_batch(buffer)
        return self._guarded_send(
            shard,
            ("batch", payload, ts),
            context="batch dispatch",
            n_packets=len(buffer),
        )

    def _push_batch_supervised(
        self,
        shard: int,
        names: tuple[str, ...],
        rows: np.ndarray,
        sizes: np.ndarray,
        ts: Optional[list[float]],
        *,
        n_packets: int,
    ) -> bool:
        """Push one SoA batch into the shard's data ring (backpressure).

        A full ring stalls the dispatcher (counted once per batch) in
        a poll loop under the same supervision contract as a pipe
        recv, with the hung deadline measured from the *consumer
        cursor's* last advance — a worker steadily draining a full
        ring is healthy however long the stall lasts. Death and
        deadline escalate through :meth:`_handle_failure`; after a
        respawn the journal replay has already delivered this batch.
        Returns False only when the shard degraded.
        """
        opts = self.options
        stalled = False
        slow_reported = False
        while True:
            channel = self._channels[shard]
            process = self._procs[shard]
            start = time.monotonic()
            last_progress = start
            consumed = channel.data.consumed
            kind = None
            while True:
                if channel.try_push_batch(
                    names, rows, sizes, ts, self._pipe_sent[shard]
                ):
                    stats = self.ring_stats[shard]
                    stats["pushed_batches"] += 1
                    stats["pushed_packets"] += n_packets
                    occupancy = channel.data.occupancy()
                    if occupancy > stats["max_occupancy"]:
                        stats["max_occupancy"] = occupancy
                    self._observe_occupancy(shard, occupancy)
                    if slow_reported:
                        self._emit(
                            "worker_recovered",
                            shard=shard,
                            state="slow",
                            context="batch dispatch",
                            elapsed_s=round(
                                time.monotonic() - start, 3
                            ),
                        )
                    return True
                if not stalled:
                    stalled = True
                    self.ring_stats[shard]["stalls"] += 1
                    self._count(
                        "pipeleon_ring_stalls_total", shard=shard
                    )
                self._drain_results(shard)
                now = time.monotonic()
                cursor = channel.data.consumed
                if cursor != consumed:
                    consumed = cursor
                    last_progress = now
                if not process.is_alive():
                    kind = "dead"
                    break
                if not slow_reported and (
                    now - start >= opts.slow_after_s
                ):
                    # The same contract as a slow reply: report a
                    # stall past slow_after_s, keep waiting.
                    slow_reported = True
                    self._emit(
                        "worker_slow",
                        shard=shard,
                        context="batch dispatch",
                        elapsed_s=round(now - start, 3),
                    )
                    self._count(
                        "pipeleon_worker_faults_total",
                        kind="slow",
                        shard=shard,
                    )
                if now - last_progress >= opts.recv_timeout_s:
                    kind = "hung"
                    break
                time.sleep(_STALL_POLL_S)
            if not self._handle_failure(
                shard,
                kind,
                context="batch dispatch",
                elapsed_s=time.monotonic() - start,
            ):
                return False  # degraded: the caller reroutes the batch
            if self._journaling:
                # The journal replay already delivered this batch to
                # the respawned worker.
                return True
            # Defensive: a respawn without journaling (not a
            # configuration that exists today) re-pushes on the fresh
            # ring.
