"""Sharded multi-core replay engine: flow-hash partitioning over workers.

PR 1 compiled the replay loop into per-node closures; this module scales
it across cores. A :class:`ShardedEmulator` owns N worker *processes*,
each holding its own :class:`~repro.nic.emulator.NicEmulator` (and
therefore its own compiled fast-path engine, flow caches and counter
bank). Traffic is partitioned by a deterministic hash of the packet's
five-tuple, so every packet of a flow lands on the same worker — which
is exactly what NIC RSS does in hardware, and what preserves per-flow
cache behaviour: a flow's hits, misses and recorded effects are
identical whether the flow shares a core with every other flow or only
with the flows that hash beside it.

Equivalence contract: with ``sample_stride == 1``, flow caches that
neither evict (capacity >= live flows) nor rate-limit insertions, and
cache keys that resolve within a flow (each cache key is only ever
produced by flows of one shard — true whenever keys include the five
tuple, or are distinct per flow), the *merge* of the per-worker run
stats, counter banks and cache stats is exactly — bit for bit — what a
single-core replay of the unsharded stream produces (see
``tests/test_nic_sharding.py``). This holds because all aggregates are
either integer sums or ``math.fsum`` reductions (order-independent),
and per-flow state never crosses shards. Outside that regime the
engine stays *semantically* correct — every packet still gets the
single-core forwarding result — but cold-start effects differ: a cache
key shared by flows on different shards (e.g. a dst-only route cache
key under traffic where several flows share a dst) warms once per
shard instead of once globally, so miss counts can exceed one core's.

Control-plane updates reach workers through an epoch-versioned
broadcast: every mutation the parent applies (entry install/delete,
cache invalidation, cache flush) is forwarded through each worker's
command pipe *in order with packet batches*, so a worker has always
applied update epoch ``e`` before it replays any batch dispatched after
``e``. Workers re-use the fast path's existing staleness fingerprint:
applying a broadcast bumps the runtime table's version, and the next
batch's ``emulator.fastpath`` access recompiles automatically.

Packet batches cross the process boundary as numpy record blocks (one
``int64`` value matrix plus field-name header per batch) rather than
pickled ``Packet`` objects; a pure-python fallback covers packets with
metadata, oversized values, or heterogeneous header sets.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import time
import traceback
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import EmulationError
from repro.ir.entries import TableEntry
from repro.nic.control_plane import SimClock, UpdateEvent
from repro.nic.counters import CounterBank
from repro.nic.emulator import NicEmulator
from repro.nic.flow_cache import CacheStats
from repro.nic.packet import Packet, PacketPool
from repro.nic.stats import RunStats

__all__ = [
    "ShardedEmulator",
    "decode_batch",
    "encode_batch",
    "flow_shard",
    "shard_seed",
]


# ---------------------------------------------------------------------------
# Flow -> shard assignment
# ---------------------------------------------------------------------------


def flow_shard(flow_key: tuple[int, ...], n_shards: int) -> int:
    """Deterministic shard index for a flow key.

    Uses the builtin tuple hash, which for integer elements is *not*
    randomized by ``PYTHONHASHSEED`` — the same key maps to the same
    shard in every process and every run, which both the dispatcher and
    the shard-aware traffic generator rely on.
    """
    if n_shards <= 1:
        return 0
    return hash(flow_key) % n_shards


def shard_seed(seed: int, shard: int) -> int:
    """Derived per-shard RNG seed for independent shard-local streams."""
    return (seed * 1_000_003 + shard * 7_919 + 1) & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# Compact batch serialization
# ---------------------------------------------------------------------------

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode_batch(packets: Sequence[Packet]):
    """Serialize packets for the worker pipe.

    Fast path: every packet shares one header-name tuple, carries no
    metadata and is undropped (true for generator streams) — the batch
    becomes a single ``(names, int64 matrix, sizes)`` block, which
    pickles as flat buffers instead of per-packet dicts. Anything else
    falls back to an explicit per-packet encoding.
    """
    if not packets:
        return ("py", [])
    first = packets[0]
    names = tuple(first.fields)
    uniform = not (first.metadata or first.dropped)
    if uniform:
        for packet in packets:
            if (
                packet.metadata
                or packet.dropped
                or packet.egress_port is not None
                or tuple(packet.fields) != names
            ):
                uniform = False
                break
    if uniform:
        try:
            values = np.array(
                [list(p.fields.values()) for p in packets],
                dtype=np.int64,
            )
        except (OverflowError, ValueError):
            uniform = False
        else:
            sizes = np.array(
                [p.size_bytes for p in packets], dtype=np.int32
            )
            return ("np", names, values, sizes)
    return (
        "py",
        [
            (
                dict(p.fields),
                dict(p.metadata),
                p.size_bytes,
                p.dropped,
                p.egress_port,
            )
            for p in packets
        ],
    )


def decode_batch(payload, pool: Optional[PacketPool] = None) -> list[Packet]:
    """Inverse of :func:`encode_batch`; optionally fills pooled packets."""
    kind = payload[0]
    packets: list[Packet] = []
    if kind == "np":
        _, names, values, sizes = payload
        for row, size in zip(values.tolist(), sizes.tolist()):
            packet = (
                pool.acquire(size) if pool is not None else Packet(size_bytes=size)
            )
            packet.fields = dict(zip(names, row))
            packets.append(packet)
        return packets
    for fields, metadata, size, dropped, egress in payload[1]:
        packet = (
            pool.acquire(size) if pool is not None else Packet(size_bytes=size)
        )
        packet.fields = fields
        packet.metadata = metadata
        packet.dropped = dropped
        packet.egress_port = egress
        packets.append(packet)
    return packets


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_state(emulator: NicEmulator) -> dict:
    """Cumulative mergeable telemetry shipped back to the parent."""
    return {
        "counters": emulator.counters,
        "explicit": dict(emulator.explicit_counters),
        "cache_stats": {
            name: cache.stats
            for name, cache in emulator.flow_caches.items()
        },
        "native_stats": (
            emulator.native_cache.stats
            if emulator.native_cache is not None
            else None
        ),
        "tracer": emulator.tracer,
    }


def _worker_main(conn, factory, shard_index: int) -> None:
    """Command loop for one shard worker.

    Messages arrive strictly in the order the parent sent them; control
    broadcasts therefore always take effect before any batch dispatched
    after them. ``busy`` accounts the worker's own CPU time
    (``time.process_time``: decode + replay + reply pickling, but not
    time blocked on the pipe), which the throughput benchmark uses as
    the critical-path denominator.
    """
    try:
        emulator: NicEmulator = factory(shard_index)
        pool = PacketPool()
        stats: Optional[RunStats] = None
        busy = 0.0
        epoch = 0
        while True:
            message = conn.recv()
            op = message[0]
            start = time.process_time()
            if op == "batch":
                packets = decode_batch(message[1], pool)
                if stats is None:
                    stats = RunStats()
                engine = emulator.fastpath  # recompiles if stale
                engine.replay_batch(
                    packets, stats, timestamps=message[2]
                )
                for packet in packets:
                    pool.release(packet)
            elif op == "begin":
                stats = RunStats()
                busy = 0.0
            elif op == "end":
                busy += time.process_time() - start
                conn.send(
                    (
                        "done",
                        stats if stats is not None else RunStats(),
                        _worker_state(emulator),
                        busy,
                        epoch,
                    )
                )
                stats = None
                continue
            elif op == "entries":
                emulator.set_table_entries(message[1], message[2])
                epoch = message[3]
            elif op == "invalidate":
                emulator.invalidate_caches_covering(message[1])
                epoch = message[2]
            elif op == "flush":
                emulator.flush_caches()
                epoch = message[1]
            elif op == "reset":
                emulator.counters.reset()
                for cache in emulator.flow_caches.values():
                    cache.stats.reset_rates()
                if emulator.native_cache is not None:
                    emulator.native_cache.stats.reset_rates()
                if emulator.tracer is not None:
                    emulator.tracer.reset()
            elif op == "collect":
                conn.send(("state", _worker_state(emulator), epoch))
                continue
            elif op == "dump":
                conn.send(
                    (
                        "caches",
                        {
                            name: dict(cache._store)
                            for name, cache in emulator.flow_caches.items()
                        },
                        (
                            dict(emulator.native_cache._store)
                            if emulator.native_cache is not None
                            else None
                        ),
                        {
                            name: runtime.entries()
                            for name, runtime in emulator.runtime_tables.items()
                        },
                    )
                )
                continue
            elif op == "close":
                conn.send(("bye",))
                break
            else:  # pragma: no cover - protocol error
                raise EmulationError(f"Unknown worker op {op!r}")
            busy += time.process_time() - start
    except EOFError:  # parent went away
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side engine
# ---------------------------------------------------------------------------


class ShardedEmulator:
    """N forked workers, each replaying one flow-hash shard.

    Construct from a fully configured *template* emulator (entries
    installed, options set): workers are forked immediately and inherit
    an independent copy-on-write clone of its entire state, so every
    shard starts from exactly the state a single-core run would. The
    template must not process traffic afterwards; parent-side state
    changes only reach workers through the broadcast methods
    (:meth:`set_table_entries`, :meth:`invalidate_caches_covering`,
    :meth:`flush_caches`), which :class:`repro.core.sharded.
    ShardedDeployment` wires to control-plane events.

    Alternatively pass ``factory`` (called as ``factory(shard_index)``
    inside each worker) to build per-worker emulators from scratch.
    """

    def __init__(
        self,
        emulator: Optional[NicEmulator] = None,
        n_workers: int = 2,
        *,
        factory: Optional[Callable[[int], NicEmulator]] = None,
        batch: int = 256,
        clock: Optional[SimClock] = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if (emulator is None) == (factory is None):
            raise ValueError(
                "Pass exactly one of a template emulator or a factory"
            )
        if factory is None:
            template = emulator
            factory = lambda shard: template  # noqa: E731 - fork copy
        self.n_workers = n_workers
        self.batch = batch
        self.clock = clock if clock is not None else (
            emulator.clock if emulator is not None else None
        )
        #: Last broadcast update epoch; workers echo the epoch they have
        #: applied so collection can assert the broadcast drained.
        self.epoch = 0
        self.counters = CounterBank()
        self.explicit_counters: dict[str, int] = {}
        self.cache_stats: dict[str, CacheStats] = {}
        self.native_cache_stats: Optional[CacheStats] = None
        #: Merged per-worker packet tracer from the last collection
        #: (None unless the worker emulators carry tracers).
        self.tracer = None
        self.worker_busy_s: list[float] = [0.0] * n_workers
        #: Raw per-worker telemetry from the last collection (shard
        #: index order) — per-shard profiling reads these.
        self.worker_states: list[dict] = []
        self._closed = False
        try:
            context = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-posix
            raise EmulationError(
                "ShardedEmulator requires the 'fork' start method"
            ) from exc
        self._conns = []
        self._procs = []
        for shard in range(n_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, factory, shard),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
        # Guaranteed teardown: if the owner never calls close() (e.g. a
        # mid-replay exception unwinds past it), interpreter exit still
        # reaps the forked workers instead of leaking them.
        atexit.register(self.close)

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ShardedEmulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=1.0)

    def _check_open(self) -> None:
        if self._closed:
            raise EmulationError("ShardedEmulator is closed")

    def _recv(self, conn, shard: Optional[int] = None):
        try:
            reply = conn.recv()
        # EOFError on a clean hangup; SIGKILL mid-write surfaces as
        # ConnectionResetError (an OSError) instead.
        except (EOFError, OSError) as exc:
            if shard is None:
                shard = (
                    self._conns.index(conn)
                    if conn in self._conns
                    else None
                )
            detail = ""
            if shard is not None:
                process = self._procs[shard]
                process.join(timeout=1.0)
                detail = (
                    f" {shard} ({process.name}, "
                    f"exitcode {process.exitcode})"
                )
            raise EmulationError(
                f"Shard worker{detail} died without replying; "
                "its shard's results are lost"
            ) from exc
        if reply[0] == "error":
            raise EmulationError(
                f"Shard worker failed:\n{reply[1]}"
            )
        return reply

    @staticmethod
    def _send(conn, message) -> None:
        """Send, tolerating a dead worker.

        A worker that hit an error reports it and exits; the pipe then
        breaks for subsequent sends. Swallow that here so the queued
        error report (or EOF) surfaces with context at the next recv.
        """
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            pass

    def _broadcast(self, message) -> None:
        self._check_open()
        for conn in self._conns:
            self._send(conn, message)

    # -- control-plane broadcast (epoch-versioned) -------------------------

    def set_table_entries(
        self, table: str, entries: Iterable[TableEntry]
    ) -> int:
        """Install a table's full entry list on every worker.

        Returns the new broadcast epoch. The pipe is FIFO, so the
        update lands before any batch dispatched after this call; the
        worker's next ``fastpath`` access sees the bumped runtime-table
        version and recompiles.
        """
        self.epoch += 1
        self._broadcast(("entries", table, list(entries), self.epoch))
        return self.epoch

    def invalidate_caches_covering(self, table: str) -> int:
        self.epoch += 1
        self._broadcast(("invalidate", table, self.epoch))
        return self.epoch

    def flush_caches(self) -> int:
        self.epoch += 1
        self._broadcast(("flush", self.epoch))
        return self.epoch

    def apply_update(self, event: UpdateEvent, entries: list[TableEntry]) -> int:
        """Apply one control-plane event: entries rebuild + invalidation."""
        if event.op == "flush":
            return self.flush_caches()
        epoch = self.set_table_entries(event.table, entries)
        self.invalidate_caches_covering(event.table)
        return epoch

    # -- telemetry ---------------------------------------------------------

    def reset_telemetry(self) -> None:
        self._broadcast(("reset",))

    def _merge_states(self, states: list[dict]) -> None:
        counters: Optional[CounterBank] = None
        explicit: dict[str, int] = {}
        cache_stats: dict[str, CacheStats] = {}
        native: Optional[CacheStats] = None
        tracer = None
        for state in states:
            worker_tracer = state.get("tracer")
            if worker_tracer is not None:
                if tracer is None:
                    tracer = worker_tracer.spawn_empty()
                tracer.merge(worker_tracer)
            bank = state["counters"]
            if counters is None:
                counters = CounterBank(bank.sample_stride)
            counters.merge(bank)
            for key, value in state["explicit"].items():
                explicit[key] = explicit.get(key, 0) + value
            for name, stats in state["cache_stats"].items():
                merged = cache_stats.get(name)
                if merged is None:
                    merged = cache_stats[name] = CacheStats()
                merged.merge(stats)
            if state["native_stats"] is not None:
                if native is None:
                    native = CacheStats()
                native.merge(state["native_stats"])
        self.worker_states = states
        self.counters = counters if counters is not None else CounterBank()
        self.explicit_counters = explicit
        self.cache_stats = cache_stats
        self.native_cache_stats = native
        self.tracer = tracer

    def collect(self) -> None:
        """Barrier: refresh merged counters/cache stats from all workers."""
        self._broadcast(("collect",))
        states = []
        for shard, conn in enumerate(self._conns):
            tag, state, epoch = self._recv(conn, shard)
            if epoch != self.epoch:
                raise EmulationError(
                    f"Shard {shard} applied epoch {epoch}, "
                    f"expected {self.epoch}"
                )
            states.append(state)
        self._merge_states(states)

    def dump_caches(self) -> list[tuple[dict, Optional[dict], dict]]:
        """Per-worker cache stores and table entries (test support)."""
        self._broadcast(("dump",))
        dumps = []
        for conn in self._conns:
            tag, stores, native, tables = self._recv(conn)
            dumps.append((stores, native, tables))
        return dumps

    # -- replay ------------------------------------------------------------

    def replay(
        self,
        packets: Iterable[Packet],
        offered_pps: Optional[float] = None,
        batch: Optional[int] = None,
        packet_pool: Optional[PacketPool] = None,
        stats: Optional[RunStats] = None,
    ) -> RunStats:
        """Shard, dispatch and replay ``packets``; returns merged stats.

        Same contract as :meth:`NicEmulator.replay`. With
        ``offered_pps`` the parent precomputes each packet's absolute
        clock time and ships it with the batch, so worker-local clocks
        observe exactly the per-packet times a single-core run would;
        the parent clock is advanced by the stream duration at the end.
        """
        self._check_open()
        if batch is None:
            batch = self.batch
        if batch < 1:
            raise ValueError("batch must be >= 1")
        n = self.n_workers
        dt = 1.0 / offered_pps if offered_pps else 0.0
        t0 = self.clock.now_s if (dt and self.clock is not None) else 0.0
        conns = self._conns
        for conn in conns:
            self._send(conn, ("begin",))
        buffers: list[list[Packet]] = [[] for _ in range(n)]
        timestamps: Optional[list[list[float]]] = (
            [[] for _ in range(n)] if dt else None
        )
        count = 0
        for packet in packets:
            shard = flow_shard(packet.flow_key(), n)
            buffer = buffers[shard]
            buffer.append(packet)
            count += 1
            if dt:
                timestamps[shard].append(t0 + dt * count)
            if len(buffer) >= batch:
                self._flush(shard, buffers, timestamps, packet_pool)
        for shard in range(n):
            if buffers[shard]:
                self._flush(shard, buffers, timestamps, packet_pool)
        if dt and self.clock is not None:
            self.clock.advance(dt * count)
        merged = stats if stats is not None else RunStats()
        for conn in conns:
            self._send(conn, ("end",))
        states = []
        for shard, conn in enumerate(conns):
            tag, worker_stats, state, busy, epoch = self._recv(conn, shard)
            if epoch != self.epoch:
                raise EmulationError(
                    f"Shard {shard} applied epoch {epoch}, "
                    f"expected {self.epoch}"
                )
            merged.merge(worker_stats)
            states.append(state)
            self.worker_busy_s[shard] = busy
        self._merge_states(states)
        return merged

    def _flush(
        self,
        shard: int,
        buffers: list[list[Packet]],
        timestamps: Optional[list[list[float]]],
        packet_pool: Optional[PacketPool],
    ) -> None:
        buffer = buffers[shard]
        payload = encode_batch(buffer)
        ts = None
        if timestamps is not None:
            ts = timestamps[shard]
            timestamps[shard] = []
        self._send(self._conns[shard], ("batch", payload, ts))
        if packet_pool is not None:
            for packet in buffer:
                packet_pool.release(packet)
        buffers[shard] = []
