"""P4-style packet counters with optional sampling.

Pipeleon instruments every table action and conditional branch with a
counter (§4.1.2). Counter updates are not free on SmartNICs — Figure 12
quantifies the cost — so Pipeleon samples a fraction of traffic (1/1024)
and scales the counts when computing probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

CounterKey = tuple[str, ...]


def action_counter(table: str, action: str) -> CounterKey:
    return ("action", table, action)


def branch_counter(conditional: str, taken: bool) -> CounterKey:
    return ("branch", conditional, "true" if taken else "false")


def cache_counter(cache: str, hit: bool) -> CounterKey:
    return ("cache", cache, "hit" if hit else "miss")


@dataclass
class Counter:
    packets: int = 0
    bytes: int = 0

    def bump(self, size_bytes: int) -> None:
        self.packets += 1
        self.bytes += size_bytes


class CounterBank:
    """A named collection of counters plus the sampling discipline.

    ``sample_stride`` of N means only every Nth packet updates counters
    (deterministic striding keeps tests reproducible); reads through
    :meth:`scaled_packets` multiply back by N so probabilities stay
    unbiased.
    """

    def __init__(self, sample_stride: int = 1):
        if sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")
        self.sample_stride = sample_stride
        self._counters: dict[CounterKey, Counter] = {}
        self._packet_index = 0

    # -- per-packet lifecycle -------------------------------------------------

    def begin_packet(self) -> bool:
        """Advance the stride; True if this packet should be counted."""
        sampled = self._packet_index % self.sample_stride == 0
        self._packet_index += 1
        return sampled

    def bump(self, key: CounterKey, size_bytes: int = 0) -> None:
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        counter.bump(size_bytes)

    def bump_block(
        self, key: CounterKey, packets: int, total_bytes: int
    ) -> None:
        """Fold a batch of ``packets`` sampled hits into one counter.

        Counter totals are plain integer sums, so committing a block at
        once is exactly equivalent to ``packets`` individual bumps.
        """
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        counter.packets += packets
        counter.bytes += total_bytes

    def advance(self, n_packets: int) -> None:
        """Advance the sampling stride by ``n_packets`` at once."""
        self._packet_index += n_packets

    # -- merging ----------------------------------------------------------------

    def merge(self, other: "CounterBank") -> "CounterBank":
        """Fold another bank's counts into this one (associative).

        Shards of a replay each own a bank; merging their banks yields
        the same counts as one bank observing the unsplit stream,
        provided ``sample_stride`` is 1 (with a coarser stride, which
        packets get sampled depends on the global packet order, which
        sharding does not preserve).
        """
        if other.sample_stride != self.sample_stride:
            raise ValueError(
                "Cannot merge counter banks with different sample "
                f"strides ({self.sample_stride} vs {other.sample_stride})"
            )
        counters = self._counters
        for key, counter in other._counters.items():
            mine = counters.get(key)
            if mine is None:
                mine = counters[key] = Counter()
            mine.packets += counter.packets
            mine.bytes += counter.bytes
        self._packet_index += other._packet_index
        return self

    # -- reads ------------------------------------------------------------------

    def packets(self, key: CounterKey) -> int:
        counter = self._counters.get(key)
        return counter.packets if counter else 0

    def scaled_packets(self, key: CounterKey) -> int:
        return self.packets(key) * self.sample_stride

    def keys(self) -> Iterable[CounterKey]:
        return self._counters.keys()

    def snapshot(self) -> dict[CounterKey, int]:
        """Sampling-corrected packet counts for every counter."""
        return {
            key: counter.packets * self.sample_stride
            for key, counter in self._counters.items()
        }

    def reset(self) -> None:
        self._counters.clear()
        self._packet_index = 0
