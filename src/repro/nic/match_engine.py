"""Lookup engines for the four P4 match kinds.

The engines double as the emulator's performance model input: each engine
reports ``memory_accesses`` — the paper's ``m`` (Equation 4a) — derived
from its actual structure (one hash table per distinct ternary mask or LPM
prefix length, as described in §3.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.errors import ControlPlaneError, UnknownEntryError
from repro.ir.entries import (
    ExactValue,
    LpmValue,
    RangeValue,
    TableEntry,
    TernaryValue,
)
from repro.ir.tables import MatchKey, MatchType


class MatchEngine(ABC):
    """Stores entries and answers lookups for one table."""

    def __init__(self, keys: tuple[MatchKey, ...]):
        self.keys = keys
        self._entries: dict[int, TableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[TableEntry]:
        return list(self._entries.values())

    @property
    @abstractmethod
    def memory_accesses(self) -> int:
        """The cost-model ``m``: hash-table probes per lookup (>= 1)."""

    def add(self, entry: TableEntry) -> None:
        if len(entry.match_values) != len(self.keys):
            raise ControlPlaneError(
                f"Entry has {len(entry.match_values)} match values, "
                f"table has {len(self.keys)} keys"
            )
        if entry.entry_id in self._entries:
            raise ControlPlaneError(
                f"Entry id {entry.entry_id} already installed"
            )
        self._check_types(entry)
        self._entries[entry.entry_id] = entry
        self._index_add(entry)

    def remove(self, entry_id: int) -> TableEntry:
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            raise UnknownEntryError(f"No entry with id {entry_id}")
        self._index_remove(entry)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self._index_clear()

    @abstractmethod
    def lookup(self, values: tuple[int, ...]) -> Optional[TableEntry]:
        """Best matching entry for the packet's key-field values."""

    # Index maintenance hooks ------------------------------------------------

    @abstractmethod
    def _index_add(self, entry: TableEntry) -> None: ...

    @abstractmethod
    def _index_remove(self, entry: TableEntry) -> None: ...

    @abstractmethod
    def _index_clear(self) -> None: ...

    def _check_types(self, entry: TableEntry) -> None:
        """Subclasses may restrict which value kinds they accept."""

    def oracle_lookup(self, values: tuple[int, ...]) -> Optional[TableEntry]:
        """Reference linear scan (tests compare engines against this)."""
        best: Optional[TableEntry] = None
        for entry in self._entries.values():
            if entry.matches(values):
                if best is None or (entry.priority, -entry.entry_id) > (
                    best.priority,
                    -best.entry_id,
                ):
                    best = entry
        return best


class ExactEngine(MatchEngine):
    """All-exact keys: a single hash table, ``m = 1``."""

    def __init__(self, keys: tuple[MatchKey, ...]):
        super().__init__(keys)
        self._map: dict[tuple[int, ...], TableEntry] = {}

    @property
    def memory_accesses(self) -> int:
        return 1

    def _check_types(self, entry: TableEntry) -> None:
        for value in entry.match_values:
            if not isinstance(value, ExactValue):
                raise ControlPlaneError(
                    "ExactEngine only accepts ExactValue matches"
                )

    def _key_of(self, entry: TableEntry) -> tuple[int, ...]:
        return tuple(v.value for v in entry.match_values)  # type: ignore[union-attr]

    def _index_add(self, entry: TableEntry) -> None:
        key = self._key_of(entry)
        if key in self._map:
            del self._entries[entry.entry_id]
            raise ControlPlaneError(
                f"Duplicate exact key {key} (existing entry "
                f"{self._map[key].entry_id})"
            )
        self._map[key] = entry

    def _index_remove(self, entry: TableEntry) -> None:
        self._map.pop(self._key_of(entry), None)

    def _index_clear(self) -> None:
        self._map.clear()

    def lookup(self, values: tuple[int, ...]) -> Optional[TableEntry]:
        return self._map.get(values)


class LpmEngine(MatchEngine):
    """Exact keys plus at most one LPM key.

    Modelled as one hash table per distinct prefix length, probed from the
    longest prefix down — exactly the structure the paper assumes when it
    sets ``m`` to the number of distinct prefixes.
    """

    def __init__(self, keys: tuple[MatchKey, ...]):
        super().__init__(keys)
        lpm_positions = [
            i for i, k in enumerate(keys) if k.match_type is MatchType.LPM
        ]
        if len(lpm_positions) != 1:
            raise ControlPlaneError(
                f"LpmEngine requires exactly one LPM key, got "
                f"{len(lpm_positions)}"
            )
        self._lpm_index = lpm_positions[0]
        self._by_prefix: dict[int, dict[tuple[int, ...], TableEntry]] = {}

    @property
    def memory_accesses(self) -> int:
        return max(1, len(self._by_prefix))

    def _check_types(self, entry: TableEntry) -> None:
        for i, value in enumerate(entry.match_values):
            if i == self._lpm_index:
                if not isinstance(value, LpmValue):
                    raise ControlPlaneError(
                        "LPM key position requires an LpmValue"
                    )
            elif not isinstance(value, ExactValue):
                raise ControlPlaneError(
                    "Non-LPM keys of an LpmEngine must be ExactValue"
                )

    def _key_of(self, entry: TableEntry) -> tuple[int, tuple[int, ...]]:
        lpm_value = entry.match_values[self._lpm_index]
        assert isinstance(lpm_value, LpmValue)
        parts = []
        for i, value in enumerate(entry.match_values):
            if i == self._lpm_index:
                parts.append(lpm_value.value & lpm_value.mask)
            else:
                parts.append(value.value)  # type: ignore[union-attr]
        return lpm_value.prefix_len, tuple(parts)

    def _index_add(self, entry: TableEntry) -> None:
        prefix_len, key = self._key_of(entry)
        bucket = self._by_prefix.setdefault(prefix_len, {})
        if key in bucket:
            del self._entries[entry.entry_id]
            raise ControlPlaneError(
                f"Duplicate LPM key {key} at /{prefix_len}"
            )
        bucket[key] = entry

    def _index_remove(self, entry: TableEntry) -> None:
        prefix_len, key = self._key_of(entry)
        bucket = self._by_prefix.get(prefix_len)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._by_prefix[prefix_len]

    def _index_clear(self) -> None:
        self._by_prefix.clear()

    def lookup(self, values: tuple[int, ...]) -> Optional[TableEntry]:
        lpm_key = self.keys[self._lpm_index]
        width = 32
        for prefix_len in sorted(self._by_prefix, reverse=True):
            if prefix_len == 0:
                mask = 0
            else:
                mask = ((1 << prefix_len) - 1) << (width - prefix_len)
            probe = tuple(
                (v & mask) if i == self._lpm_index else v
                for i, v in enumerate(values)
            )
            entry = self._by_prefix[prefix_len].get(probe)
            if entry is not None:
                return entry
        return None


class TernaryEngine(MatchEngine):
    """Arbitrary key mixes, normalised to (value, mask) pairs.

    One hash table per distinct mask combination; the winning entry is the
    highest-priority hit across all mask groups.
    """

    def __init__(self, keys: tuple[MatchKey, ...]):
        super().__init__(keys)
        self._groups: dict[
            tuple[int, ...], dict[tuple[int, ...], list[TableEntry]]
        ] = {}

    @property
    def memory_accesses(self) -> int:
        return max(1, len(self._groups))

    def _check_types(self, entry: TableEntry) -> None:
        for value in entry.match_values:
            if isinstance(value, RangeValue):
                raise ControlPlaneError(
                    "TernaryEngine cannot store RangeValue matches"
                )

    def _normalise(
        self, entry: TableEntry
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        masks = []
        masked = []
        for value in entry.match_values:
            ternary = value.as_ternary()  # type: ignore[union-attr]
            masks.append(ternary.mask)
            masked.append(ternary.value & ternary.mask)
        return tuple(masks), tuple(masked)

    def _index_add(self, entry: TableEntry) -> None:
        masks, masked = self._normalise(entry)
        group = self._groups.setdefault(masks, {})
        group.setdefault(masked, []).append(entry)

    def _index_remove(self, entry: TableEntry) -> None:
        masks, masked = self._normalise(entry)
        group = self._groups.get(masks)
        if group is None:
            return
        bucket = group.get(masked)
        if bucket is None:
            return
        bucket[:] = [e for e in bucket if e.entry_id != entry.entry_id]
        if not bucket:
            del group[masked]
        if not group:
            del self._groups[masks]

    def _index_clear(self) -> None:
        self._groups.clear()

    def lookup(self, values: tuple[int, ...]) -> Optional[TableEntry]:
        best: Optional[TableEntry] = None
        for masks, group in self._groups.items():
            probe = tuple(v & m for v, m in zip(values, masks))
            for entry in group.get(probe, ()):
                if best is None or (entry.priority, -entry.entry_id) > (
                    best.priority,
                    -best.entry_id,
                ):
                    best = entry
        return best


class RangeEngine(MatchEngine):
    """Linear-scan engine for tables with range keys."""

    @property
    def memory_accesses(self) -> int:
        # A range lookup degenerates to a scan over entry groups; cap the
        # modelled probe count so a big table doesn't dominate everything.
        return max(1, min(len(self._entries), 8))

    def _index_add(self, entry: TableEntry) -> None:
        pass

    def _index_remove(self, entry: TableEntry) -> None:
        pass

    def _index_clear(self) -> None:
        pass

    def lookup(self, values: tuple[int, ...]) -> Optional[TableEntry]:
        return self.oracle_lookup(values)


def build_engine(keys: tuple[MatchKey, ...]) -> MatchEngine:
    """Pick the cheapest engine able to serve the key set."""
    types = {k.match_type for k in keys}
    if not keys or types == {MatchType.EXACT}:
        return ExactEngine(keys)
    if MatchType.RANGE in types:
        return RangeEngine(keys)
    if MatchType.TERNARY in types:
        return TernaryEngine(keys)
    lpm_count = sum(1 for k in keys if k.match_type is MatchType.LPM)
    if lpm_count == 1:
        return LpmEngine(keys)
    return TernaryEngine(keys)
