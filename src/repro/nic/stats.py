"""Latency/throughput aggregation for emulator runs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ir.tables import Pipeline
from repro.nic.targets import TargetModel


@dataclass
class PacketResult:
    """Per-packet outcome from the emulator."""

    latency_ns: float
    dropped: bool
    egress_port: int | None
    migrations: int = 0
    busy_ns: dict[Pipeline, float] = field(default_factory=dict)
    path: tuple[str, ...] = ()


class RunStats:
    """Aggregates packet results and converts them to Gbps.

    Throughput model: each core pool is a set of run-to-completion
    processors; a pool's capacity is ``cores / mean busy time per packet``
    and the NIC's capacity is the bottleneck pool, capped at line rate.
    This is the natural model for the paper's architecture (Figure 1) and
    reduces to ``cores / mean latency`` for homogeneous programs.
    """

    def __init__(self) -> None:
        self.packets = 0
        self.dropped = 0
        self.migrations = 0
        self.total_latency_ns = 0.0
        self.total_bytes = 0
        self._latencies: list[float] = []
        self._busy_ns: dict[Pipeline, float] = {}

    def record(self, result: PacketResult, size_bytes: int) -> None:
        self.packets += 1
        self.total_latency_ns += result.latency_ns
        self.total_bytes += size_bytes
        self.migrations += result.migrations
        if result.dropped:
            self.dropped += 1
        self._latencies.append(result.latency_ns)
        for pipeline, busy in result.busy_ns.items():
            self._busy_ns[pipeline] = (
                self._busy_ns.get(pipeline, 0.0) + busy
            )

    # -- latency -------------------------------------------------------------

    @property
    def mean_latency_ns(self) -> float:
        if not self.packets:
            return 0.0
        return self.total_latency_ns / self.packets

    def percentile_latency_ns(self, percentile: float) -> float:
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = min(
            len(ordered) - 1,
            max(0, math.ceil(percentile / 100.0 * len(ordered)) - 1),
        )
        return ordered[rank]

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.packets if self.packets else 0.0

    @property
    def mean_packet_bytes(self) -> float:
        return self.total_bytes / self.packets if self.packets else 0.0

    def mean_busy_ns(self, pipeline: Pipeline) -> float:
        if not self.packets:
            return 0.0
        return self._busy_ns.get(pipeline, 0.0) / self.packets

    # -- throughput -------------------------------------------------------------

    def capacity_pps(self, target: TargetModel) -> float:
        """Sustainable packets/second given per-pool busy times."""
        if not self.packets:
            return 0.0
        capacities = []
        for pipeline, total_busy in self._busy_ns.items():
            mean_busy_ns = total_busy / self.packets
            if mean_busy_ns <= 0:
                continue
            cores = target.n_cores(pipeline)
            if cores <= 0:
                # Work assigned to a pool the target doesn't have: treat a
                # single borrowed core as the bottleneck.
                cores = 1
            capacities.append(cores / (mean_busy_ns * 1e-9))
        if not capacities:
            return math.inf
        return min(capacities)

    def throughput_gbps(self, target: TargetModel) -> float:
        """Offered-load processing rate in Gbps, capped at line rate."""
        if not self.packets:
            return 0.0
        pps = self.capacity_pps(target)
        if math.isinf(pps):
            return target.line_rate_gbps
        gbps = pps * self.mean_packet_bytes * 8 / 1e9
        return min(target.line_rate_gbps, gbps)

    def summary(self, target: TargetModel | None = None) -> dict[str, float]:
        data = {
            "packets": float(self.packets),
            "mean_latency_ns": self.mean_latency_ns,
            "p99_latency_ns": self.percentile_latency_ns(99.0),
            "drop_rate": self.drop_rate,
            "migrations": float(self.migrations),
        }
        if target is not None:
            data["throughput_gbps"] = self.throughput_gbps(target)
        return data
