"""Latency/throughput aggregation for emulator runs.

``RunStats`` is *mergeable*: a run can be split across shards (the
sharded replay engine partitions traffic by flow hash) and the per-shard
stats recombined with :meth:`RunStats.merge` into exactly the aggregate a
single-core run would have produced. To make that exact, order-sensitive
accumulation is avoided: totals are computed with :func:`math.fsum` over
the per-packet samples, which is correctly rounded and therefore
independent of the order packets were recorded in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ir.tables import Pipeline
from repro.nic.targets import TargetModel


@dataclass
class PacketResult:
    """Per-packet outcome from the emulator."""

    latency_ns: float
    dropped: bool
    egress_port: int | None
    migrations: int = 0
    busy_ns: dict[Pipeline, float] = field(default_factory=dict)
    path: tuple[str, ...] = ()


class PacketResultPool:
    """Free-list of reusable :class:`PacketResult` objects.

    The fast-path replay engine fills a recycled result in place
    (including its ``busy_ns`` dict) instead of allocating one per
    packet. Results handed out by ``acquire`` are blank; callers that
    keep a result must not ``release`` it.
    """

    def __init__(self, prealloc: int = 0):
        self._free: list[PacketResult] = [
            PacketResult(0.0, False, None) for _ in range(prealloc)
        ]

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self) -> PacketResult:
        if self._free:
            result = self._free.pop()
            result.latency_ns = 0.0
            result.dropped = False
            result.egress_port = None
            result.migrations = 0
            result.busy_ns.clear()
            result.path = ()
            return result
        return PacketResult(0.0, False, None)

    def release(self, result: PacketResult) -> None:
        self._free.append(result)


class RunStats:
    """Aggregates packet results and converts them to Gbps.

    Throughput model: each core pool is a set of run-to-completion
    processors; a pool's capacity is ``cores / mean busy time per packet``
    and the NIC's capacity is the bottleneck pool, capped at line rate.
    This is the natural model for the paper's architecture (Figure 1) and
    reduces to ``cores / mean latency`` for homogeneous programs.

    Per-packet latency and busy samples are retained; totals are derived
    with ``math.fsum`` (exactly rounded, hence permutation-invariant), so
    :meth:`merge`-ing the stats of any partition of a packet stream
    yields the same aggregates as recording the unsplit stream.
    """

    def __init__(self) -> None:
        self.packets = 0
        self.dropped = 0
        self.migrations = 0
        self.total_bytes = 0
        #: Packets whose results died with a degraded shard worker
        #: (sharded replay under ``recovery="degraded"`` only); always
        #: 0 for single-core and fault-free runs.
        self.lost_packets = 0
        self._latencies: list[float] = []
        self._busy_samples: dict[Pipeline, list[float]] = {}
        # Memoized fsum results, invalidated by packet-count change.
        self._total_cache: tuple[int, float] = (-1, 0.0)
        self._busy_cache: tuple[int, dict[Pipeline, float]] = (-1, {})

    def record(self, result: PacketResult, size_bytes: int) -> None:
        self.packets += 1
        self.total_bytes += size_bytes
        self.migrations += result.migrations
        if result.dropped:
            self.dropped += 1
        self._latencies.append(result.latency_ns)
        samples = self._busy_samples
        for pipeline, busy in result.busy_ns.items():
            bucket = samples.get(pipeline)
            if bucket is None:
                bucket = samples[pipeline] = []
            bucket.append(busy)

    def record_fast(
        self,
        latency_ns: float,
        size_bytes: int,
        dropped: bool,
        migrations: int,
        asic_busy_ns: float | None = None,
        cpu_busy_ns: float | None = None,
    ) -> None:
        """Record one packet without materialising a PacketResult.

        Aggregation must stay arithmetically identical to
        :meth:`record` — the same per-packet samples land in the same
        lists, so interpreter and fast-path runs produce the same
        statistics bit for bit.
        """
        self.packets += 1
        self.total_bytes += size_bytes
        self.migrations += migrations
        if dropped:
            self.dropped += 1
        self._latencies.append(latency_ns)
        samples = self._busy_samples
        if asic_busy_ns is not None:
            bucket = samples.get(Pipeline.ASIC)
            if bucket is None:
                bucket = samples[Pipeline.ASIC] = []
            bucket.append(asic_busy_ns)
        if cpu_busy_ns is not None:
            bucket = samples.get(Pipeline.CPU)
            if bucket is None:
                bucket = samples[Pipeline.CPU] = []
            bucket.append(cpu_busy_ns)

    def record_block(
        self,
        latencies,
        total_bytes: int,
        dropped: int,
        migrations: int,
        asic_busy=None,
        cpu_busy=None,
    ) -> None:
        """Record a contiguous block of packets at once.

        ``latencies`` and the busy sequences must carry the same
        per-packet values, in the same order, that a sequence of
        :meth:`record_fast` calls would have appended — the lists are
        simply extended, so the resulting stats are bit-identical.
        """
        self.packets += len(latencies)
        self.total_bytes += total_bytes
        self.migrations += migrations
        self.dropped += dropped
        self._latencies.extend(latencies)
        samples = self._busy_samples
        if asic_busy is not None and len(asic_busy):
            bucket = samples.get(Pipeline.ASIC)
            if bucket is None:
                bucket = samples[Pipeline.ASIC] = []
            bucket.extend(asic_busy)
        if cpu_busy is not None and len(cpu_busy):
            bucket = samples.get(Pipeline.CPU)
            if bucket is None:
                bucket = samples[Pipeline.CPU] = []
            bucket.extend(cpu_busy)

    # -- merging -------------------------------------------------------------

    def merge(self, other: "RunStats") -> "RunStats":
        """Fold ``other`` into this stats object (associative).

        Because every aggregate is either an integer sum or an
        ``fsum``/order-insensitive reduction over per-packet samples,
        merging the stats of any split of a packet stream reproduces
        the unsplit stream's aggregates exactly.
        """
        self.packets += other.packets
        self.dropped += other.dropped
        self.migrations += other.migrations
        self.total_bytes += other.total_bytes
        # getattr: stats pickled by an older worker may predate the field.
        self.lost_packets += getattr(other, "lost_packets", 0)
        self._latencies.extend(other._latencies)
        samples = self._busy_samples
        for pipeline, values in other._busy_samples.items():
            bucket = samples.get(pipeline)
            if bucket is None:
                samples[pipeline] = list(values)
            else:
                bucket.extend(values)
        return self

    # -- latency -------------------------------------------------------------

    @property
    def total_latency_ns(self) -> float:
        cached_at, value = self._total_cache
        if cached_at != self.packets:
            value = math.fsum(self._latencies)
            self._total_cache = (self.packets, value)
        return value

    @property
    def _busy_ns(self) -> dict[Pipeline, float]:
        """Per-pool busy totals (fsum over per-packet samples)."""
        cached_at, totals = self._busy_cache
        if cached_at != self.packets:
            totals = {
                pipeline: math.fsum(values)
                for pipeline, values in self._busy_samples.items()
            }
            self._busy_cache = (self.packets, totals)
        return totals

    @property
    def mean_latency_ns(self) -> float:
        if not self.packets:
            return 0.0
        return self.total_latency_ns / self.packets

    def percentile_latency_ns(self, percentile: float) -> float:
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = min(
            len(ordered) - 1,
            max(0, math.ceil(percentile / 100.0 * len(ordered)) - 1),
        )
        return ordered[rank]

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.packets if self.packets else 0.0

    @property
    def mean_packet_bytes(self) -> float:
        return self.total_bytes / self.packets if self.packets else 0.0

    def mean_busy_ns(self, pipeline: Pipeline) -> float:
        if not self.packets:
            return 0.0
        return self._busy_ns.get(pipeline, 0.0) / self.packets

    # -- throughput -------------------------------------------------------------

    def capacity_pps(self, target: TargetModel) -> float:
        """Sustainable packets/second given per-pool busy times."""
        if not self.packets:
            return 0.0
        capacities = []
        for pipeline, total_busy in self._busy_ns.items():
            mean_busy_ns = total_busy / self.packets
            if mean_busy_ns <= 0:
                continue
            cores = target.n_cores(pipeline)
            if cores <= 0:
                # Work assigned to a pool the target doesn't have: treat a
                # single borrowed core as the bottleneck.
                cores = 1
            capacities.append(cores / (mean_busy_ns * 1e-9))
        if not capacities:
            return math.inf
        return min(capacities)

    def throughput_gbps(self, target: TargetModel) -> float:
        """Offered-load processing rate in Gbps, capped at line rate."""
        if not self.packets:
            return 0.0
        pps = self.capacity_pps(target)
        if math.isinf(pps):
            return target.line_rate_gbps
        gbps = pps * self.mean_packet_bytes * 8 / 1e9
        return min(target.line_rate_gbps, gbps)

    def summary(self, target: TargetModel | None = None) -> dict[str, float]:
        data = {
            "packets": float(self.packets),
            "mean_latency_ns": self.mean_latency_ns,
            "p99_latency_ns": self.percentile_latency_ns(99.0),
            "drop_rate": self.drop_rate,
            "migrations": float(self.migrations),
        }
        if self.lost_packets:
            data["lost_packets"] = float(self.lost_packets)
        if target is not None:
            data["throughput_gbps"] = self.throughput_gbps(target)
        return data
