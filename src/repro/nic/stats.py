"""Latency/throughput aggregation for emulator runs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ir.tables import Pipeline
from repro.nic.targets import TargetModel


@dataclass
class PacketResult:
    """Per-packet outcome from the emulator."""

    latency_ns: float
    dropped: bool
    egress_port: int | None
    migrations: int = 0
    busy_ns: dict[Pipeline, float] = field(default_factory=dict)
    path: tuple[str, ...] = ()


class PacketResultPool:
    """Free-list of reusable :class:`PacketResult` objects.

    The fast-path replay engine fills a recycled result in place
    (including its ``busy_ns`` dict) instead of allocating one per
    packet. Results handed out by ``acquire`` are blank; callers that
    keep a result must not ``release`` it.
    """

    def __init__(self, prealloc: int = 0):
        self._free: list[PacketResult] = [
            PacketResult(0.0, False, None) for _ in range(prealloc)
        ]

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self) -> PacketResult:
        if self._free:
            result = self._free.pop()
            result.latency_ns = 0.0
            result.dropped = False
            result.egress_port = None
            result.migrations = 0
            result.busy_ns.clear()
            result.path = ()
            return result
        return PacketResult(0.0, False, None)

    def release(self, result: PacketResult) -> None:
        self._free.append(result)


class RunStats:
    """Aggregates packet results and converts them to Gbps.

    Throughput model: each core pool is a set of run-to-completion
    processors; a pool's capacity is ``cores / mean busy time per packet``
    and the NIC's capacity is the bottleneck pool, capped at line rate.
    This is the natural model for the paper's architecture (Figure 1) and
    reduces to ``cores / mean latency`` for homogeneous programs.
    """

    def __init__(self) -> None:
        self.packets = 0
        self.dropped = 0
        self.migrations = 0
        self.total_latency_ns = 0.0
        self.total_bytes = 0
        self._latencies: list[float] = []
        self._busy_ns: dict[Pipeline, float] = {}

    def record(self, result: PacketResult, size_bytes: int) -> None:
        self.packets += 1
        self.total_latency_ns += result.latency_ns
        self.total_bytes += size_bytes
        self.migrations += result.migrations
        if result.dropped:
            self.dropped += 1
        self._latencies.append(result.latency_ns)
        for pipeline, busy in result.busy_ns.items():
            self._busy_ns[pipeline] = (
                self._busy_ns.get(pipeline, 0.0) + busy
            )

    def record_fast(
        self,
        latency_ns: float,
        size_bytes: int,
        dropped: bool,
        migrations: int,
        asic_busy_ns: float | None = None,
        cpu_busy_ns: float | None = None,
    ) -> None:
        """Record one packet without materialising a PacketResult.

        Aggregation must stay arithmetically identical to
        :meth:`record` — per-pool busy time is accumulated in the same
        per-packet order, so interpreter and fast-path runs produce the
        same statistics bit for bit.
        """
        self.packets += 1
        self.total_latency_ns += latency_ns
        self.total_bytes += size_bytes
        self.migrations += migrations
        if dropped:
            self.dropped += 1
        self._latencies.append(latency_ns)
        busy = self._busy_ns
        if asic_busy_ns is not None:
            busy[Pipeline.ASIC] = (
                busy.get(Pipeline.ASIC, 0.0) + asic_busy_ns
            )
        if cpu_busy_ns is not None:
            busy[Pipeline.CPU] = busy.get(Pipeline.CPU, 0.0) + cpu_busy_ns

    # -- latency -------------------------------------------------------------

    @property
    def mean_latency_ns(self) -> float:
        if not self.packets:
            return 0.0
        return self.total_latency_ns / self.packets

    def percentile_latency_ns(self, percentile: float) -> float:
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = min(
            len(ordered) - 1,
            max(0, math.ceil(percentile / 100.0 * len(ordered)) - 1),
        )
        return ordered[rank]

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.packets if self.packets else 0.0

    @property
    def mean_packet_bytes(self) -> float:
        return self.total_bytes / self.packets if self.packets else 0.0

    def mean_busy_ns(self, pipeline: Pipeline) -> float:
        if not self.packets:
            return 0.0
        return self._busy_ns.get(pipeline, 0.0) / self.packets

    # -- throughput -------------------------------------------------------------

    def capacity_pps(self, target: TargetModel) -> float:
        """Sustainable packets/second given per-pool busy times."""
        if not self.packets:
            return 0.0
        capacities = []
        for pipeline, total_busy in self._busy_ns.items():
            mean_busy_ns = total_busy / self.packets
            if mean_busy_ns <= 0:
                continue
            cores = target.n_cores(pipeline)
            if cores <= 0:
                # Work assigned to a pool the target doesn't have: treat a
                # single borrowed core as the bottleneck.
                cores = 1
            capacities.append(cores / (mean_busy_ns * 1e-9))
        if not capacities:
            return math.inf
        return min(capacities)

    def throughput_gbps(self, target: TargetModel) -> float:
        """Offered-load processing rate in Gbps, capped at line rate."""
        if not self.packets:
            return 0.0
        pps = self.capacity_pps(target)
        if math.isinf(pps):
            return target.line_rate_gbps
        gbps = pps * self.mean_packet_bytes * 8 / 1e9
        return min(target.line_rate_gbps, gbps)

    def summary(self, target: TargetModel | None = None) -> dict[str, float]:
        data = {
            "packets": float(self.packets),
            "mean_latency_ns": self.mean_latency_ns,
            "p99_latency_ns": self.percentile_latency_ns(99.0),
            "drop_rate": self.drop_rate,
            "migrations": float(self.migrations),
        }
        if target is not None:
            data["throughput_gbps"] = self.throughput_gbps(target)
        return data
