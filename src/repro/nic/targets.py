"""SmartNIC target models.

The paper evaluates on three targets; none of them is available here, so
each is modelled by the constants its cost model needs (§3.1): the latency
of one exact-match memory access (``Lmat``), of one action primitive
(``Lact``), branch and counter-update costs, core counts, and line rate.
The emulator charges exactly these costs, which makes optimizer decisions
and relative speedups target-faithful even though absolute nanoseconds are
synthetic (calibrated so headline Gbps numbers land in the paper's ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Optional

from repro.errors import EmulationError
from repro.ir.tables import MatchType, MemoryTier, Pipeline

_UNIT_MULTIPLIERS: Mapping[MatchType, float] = MappingProxyType(
    {
        MatchType.EXACT: 1.0,
        MatchType.LPM: 1.0,
        MatchType.TERNARY: 1.0,
        MatchType.RANGE: 1.0,
    }
)

#: Relative lookup cost per memory tier (EMEM is the §3.1 baseline).
DEFAULT_TIER_MULTIPLIERS: Mapping[MemoryTier, float] = MappingProxyType(
    {
        MemoryTier.EMEM: 1.0,
        MemoryTier.IMEM: 0.5,
        MemoryTier.LMEM: 0.25,
    }
)


@dataclass(frozen=True)
class CoreModel:
    """Per-core-type cost constants.

    ``use_entry_m`` selects how the per-lookup probe count ``m`` is
    obtained: from the installed entries (distinct masks / prefix lengths,
    the BlueField2 behaviour from §3.1) or purely from the per-match-type
    multiplier (the emulated NIC in §5.3.3, where "LPM and ternary matches
    have the same cost, which is 3x slower than exact matches").
    """

    lookup_ns: float
    action_ns: float
    branch_ns: float
    counter_update_ns: float
    #: Datapath cost of installing one table entry (flow-cache inserts
    #: consume entry-insertion bandwidth, §3.2.2).
    table_insert_ns: float = 0.0
    match_multiplier: Mapping[MatchType, float] = field(
        default_factory=lambda: _UNIT_MULTIPLIERS
    )
    tier_multiplier: Mapping[MemoryTier, float] = field(
        default_factory=lambda: DEFAULT_TIER_MULTIPLIERS
    )
    use_entry_m: bool = True

    def match_cost_ns(
        self,
        match_type: MatchType,
        entry_m: int,
        tier: MemoryTier = MemoryTier.EMEM,
    ) -> float:
        """Cost of one key match with ``entry_m`` engine probes."""
        multiplier = self.match_multiplier.get(match_type, 1.0)
        m = entry_m if self.use_entry_m else 1
        tier_mult = self.tier_multiplier.get(tier, 1.0)
        return self.lookup_ns * multiplier * max(1, m) * tier_mult


@dataclass(frozen=True)
class TargetModel:
    """A SmartNIC: core pools, their models, and link parameters."""

    name: str
    line_rate_gbps: float
    asic: Optional[CoreModel] = None
    cpu: Optional[CoreModel] = None
    asic_cores: int = 0
    cpu_cores: int = 0
    migration_ns: float = 500.0
    native_flow_cache: bool = False
    native_cache_capacity: int = 65536

    def core(self, pipeline: Pipeline) -> CoreModel:
        model = self.asic if pipeline is Pipeline.ASIC else self.cpu
        if model is None:
            raise EmulationError(
                f"Target {self.name!r} has no {pipeline.value} cores"
            )
        return model

    def n_cores(self, pipeline: Pipeline) -> int:
        return self.asic_cores if pipeline is Pipeline.ASIC else self.cpu_cores

    def has(self, pipeline: Pipeline) -> bool:
        return (
            self.asic if pipeline is Pipeline.ASIC else self.cpu
        ) is not None

    @property
    def default_pipeline(self) -> Pipeline:
        return Pipeline.ASIC if self.asic is not None else Pipeline.CPU

    def replace(self, **overrides: object) -> "TargetModel":
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)  # type: ignore[arg-type]


#: Nvidia BlueField2-like model: disaggregated-RMT ASIC cores whose MA
#: lookups dominate, plus a smaller pool of slower ARM CPU cores.
BLUEFIELD2 = TargetModel(
    name="bluefield2",
    line_rate_gbps=100.0,
    asic=CoreModel(
        lookup_ns=36.0,
        action_ns=4.0,
        branch_ns=2.0,
        counter_update_ns=1.5,
        table_insert_ns=1000.0,
    ),
    cpu=CoreModel(
        lookup_ns=150.0,
        action_ns=20.0,
        branch_ns=10.0,
        counter_update_ns=10.0,
        table_insert_ns=2000.0,
    ),
    asic_cores=12,
    cpu_cores=8,
    migration_ns=500.0,
)

#: Netronome Agilio CX-like model: a pool of micro-engine CPU cores with
#: far-memory table lookups and a vendor-native whole-program flow cache.
AGILIO_CX = TargetModel(
    name="agilio_cx",
    line_rate_gbps=40.0,
    asic=None,
    cpu=CoreModel(
        lookup_ns=450.0,
        action_ns=60.0,
        branch_ns=45.0,
        counter_update_ns=50.0,
        table_insert_ns=4000.0,
    ),
    asic_cores=0,
    cpu_cores=54,
    migration_ns=0.0,
    native_flow_cache=True,
)

#: The paper's BMv2-based emulator configured as in §5.3.3: LPM and
#: ternary cost 3x an exact match regardless of entries, and conditional
#: branches cost 1/10 of an exact table.
EMULATED_NIC = TargetModel(
    name="emulated_nic",
    line_rate_gbps=10.0,
    asic=CoreModel(
        lookup_ns=100.0,
        action_ns=10.0,
        branch_ns=10.0,
        counter_update_ns=5.0,
        table_insert_ns=800.0,
        match_multiplier=MappingProxyType(
            {
                MatchType.EXACT: 1.0,
                MatchType.LPM: 3.0,
                MatchType.TERNARY: 3.0,
                MatchType.RANGE: 3.0,
            }
        ),
        use_entry_m=False,
    ),
    cpu=CoreModel(
        lookup_ns=300.0,
        action_ns=30.0,
        branch_ns=30.0,
        counter_update_ns=15.0,
        table_insert_ns=1600.0,
        match_multiplier=MappingProxyType(
            {
                MatchType.EXACT: 1.0,
                MatchType.LPM: 3.0,
                MatchType.TERNARY: 3.0,
                MatchType.RANGE: 3.0,
            }
        ),
        use_entry_m=False,
    ),
    asic_cores=4,
    cpu_cores=4,
    migration_ns=200.0,
)

TARGETS: Mapping[str, TargetModel] = MappingProxyType(
    {t.name: t for t in (BLUEFIELD2, AGILIO_CX, EMULATED_NIC)}
)


def get_target(name: str) -> TargetModel:
    try:
        return TARGETS[name]
    except KeyError:
        raise EmulationError(
            f"Unknown target {name!r}; known: {sorted(TARGETS)}"
        ) from None
