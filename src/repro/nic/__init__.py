"""SmartNIC emulator substrate: packets, engines, caches, targets."""

from repro.nic.control_plane import ControlPlane, SimClock, UpdateEvent
from repro.nic.counters import (
    CounterBank,
    action_counter,
    branch_counter,
    cache_counter,
)
from repro.nic.emulator import NicEmulator
from repro.nic.fastpath import FastPathEngine
from repro.nic.flow_cache import CacheStats, FlowCache, TokenBucket
from repro.nic.match_engine import (
    ExactEngine,
    LpmEngine,
    MatchEngine,
    RangeEngine,
    TernaryEngine,
    build_engine,
)
from repro.nic.packet import (
    DEFAULT_PACKET_BYTES,
    FIVE_TUPLE,
    NEXT_TAB_ID,
    Packet,
    PacketPool,
    ipv4,
    make_packet,
)
from repro.nic.sharding import (
    ShardedEmulator,
    decode_batch,
    encode_batch,
    flow_shard,
    shard_seed,
)
from repro.nic.stats import PacketResult, PacketResultPool, RunStats
from repro.nic.table_runtime import LookupResult, RuntimeTable
from repro.nic.targets import (
    AGILIO_CX,
    BLUEFIELD2,
    EMULATED_NIC,
    TARGETS,
    CoreModel,
    TargetModel,
    get_target,
)

__all__ = [
    "AGILIO_CX",
    "BLUEFIELD2",
    "CacheStats",
    "ControlPlane",
    "CoreModel",
    "CounterBank",
    "DEFAULT_PACKET_BYTES",
    "EMULATED_NIC",
    "ExactEngine",
    "FIVE_TUPLE",
    "FastPathEngine",
    "FlowCache",
    "LookupResult",
    "LpmEngine",
    "MatchEngine",
    "NEXT_TAB_ID",
    "NicEmulator",
    "Packet",
    "PacketPool",
    "PacketResult",
    "PacketResultPool",
    "RangeEngine",
    "RunStats",
    "RuntimeTable",
    "ShardedEmulator",
    "SimClock",
    "TARGETS",
    "TargetModel",
    "TernaryEngine",
    "TokenBucket",
    "UpdateEvent",
    "action_counter",
    "branch_counter",
    "build_engine",
    "cache_counter",
    "decode_batch",
    "encode_batch",
    "flow_shard",
    "get_target",
    "ipv4",
    "make_packet",
    "shard_seed",
]
