"""Primitive execution: binding action data and applying effects."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import EmulationError
from repro.ir.actions import Action, ActionPrimitive, Param
from repro.nic.packet import Packet

#: A bound primitive ready to apply (and to store in a flow cache).
BoundPrimitive = tuple[str, tuple[Any, ...]]


def bind_primitive(
    primitive: ActionPrimitive, action_data: tuple[Any, ...]
) -> BoundPrimitive:
    """Substitute Param placeholders with the entry's action data."""
    args = []
    for arg in primitive.args:
        if isinstance(arg, Param):
            if arg.index >= len(action_data):
                raise EmulationError(
                    f"Primitive {primitive.op} wants action-data index "
                    f"{arg.index} but entry has {len(action_data)} values"
                )
            args.append(action_data[arg.index])
        else:
            args.append(arg)
    return primitive.op, tuple(args)


def bind_action(
    action: Action, action_data: tuple[Any, ...]
) -> list[BoundPrimitive]:
    return [bind_primitive(p, action_data) for p in action.primitives]


def apply_primitive(
    packet: Packet,
    op: str,
    args: tuple[Any, ...],
    explicit_counters: Optional[dict[str, int]] = None,
) -> None:
    """Apply one bound primitive to the packet (mutates it)."""
    if op == "set_field":
        packet.set(str(args[0]), int(args[1]))
    elif op == "add_to_field":
        packet.add(str(args[0]), int(args[1]))
    elif op == "copy_field":
        packet.set(str(args[0]), packet.get(str(args[1])) or 0)
    elif op == "set_meta":
        key = str(args[0])
        if not key.startswith("meta."):
            key = f"meta.{key}"
        packet.set(key, int(args[1]))
    elif op == "forward":
        packet.egress_port = int(args[0])
    elif op == "drop":
        packet.dropped = True
    elif op == "no_op":
        pass
    elif op == "count":
        if explicit_counters is not None:
            name = str(args[0])
            explicit_counters[name] = explicit_counters.get(name, 0) + 1
    else:
        raise EmulationError(f"Unknown primitive op {op!r}")
