"""Primitive execution: binding action data and applying effects."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import EmulationError
from repro.ir.actions import Action, ActionPrimitive, Param
from repro.nic.packet import Packet

#: A bound primitive ready to apply (and to store in a flow cache).
BoundPrimitive = tuple[str, tuple[Any, ...]]

#: A compiled primitive: mutates the packet directly, or ``None`` for a
#: no-op (the caller still charges its action cost).
CompiledPrimitive = Optional[Callable[[Packet], None]]


def bind_primitive(
    primitive: ActionPrimitive, action_data: tuple[Any, ...]
) -> BoundPrimitive:
    """Substitute Param placeholders with the entry's action data."""
    args = []
    for arg in primitive.args:
        if isinstance(arg, Param):
            if arg.index >= len(action_data):
                raise EmulationError(
                    f"Primitive {primitive.op} wants action-data index "
                    f"{arg.index} but entry has {len(action_data)} values"
                )
            args.append(action_data[arg.index])
        else:
            args.append(arg)
    return primitive.op, tuple(args)


def bind_action(
    action: Action, action_data: tuple[Any, ...]
) -> list[BoundPrimitive]:
    return [bind_primitive(p, action_data) for p in action.primitives]


def apply_primitive(
    packet: Packet,
    op: str,
    args: tuple[Any, ...],
    explicit_counters: Optional[dict[str, int]] = None,
) -> None:
    """Apply one bound primitive to the packet (mutates it)."""
    if op == "set_field":
        packet.set(str(args[0]), int(args[1]))
    elif op == "add_to_field":
        packet.add(str(args[0]), int(args[1]))
    elif op == "copy_field":
        packet.set(str(args[0]), packet.get(str(args[1])) or 0)
    elif op == "set_meta":
        key = str(args[0])
        if not key.startswith("meta."):
            key = f"meta.{key}"
        packet.set(key, int(args[1]))
    elif op == "forward":
        packet.egress_port = int(args[0])
    elif op == "drop":
        packet.dropped = True
    elif op == "no_op":
        pass
    elif op == "count":
        if explicit_counters is not None:
            name = str(args[0])
            explicit_counters[name] = explicit_counters.get(name, 0) + 1
    else:
        raise EmulationError(f"Unknown primitive op {op!r}")


def compile_primitive(
    op: str,
    args: tuple[Any, ...],
    explicit_counters: dict[str, int],
) -> CompiledPrimitive:
    """Specialize one bound primitive into a direct packet mutator.

    The returned closure has the string dispatch, argument coercion and
    field-namespace resolution of :func:`apply_primitive` already done,
    so the per-packet cost is a single dict store. Must stay
    behaviourally identical to :func:`apply_primitive` — the fast-path
    differential tests enforce this.
    """
    if op == "set_field":
        name, value = str(args[0]), int(args[1])
        if name.startswith("meta."):
            def apply_set_meta_field(packet: Packet) -> None:
                packet.metadata[name] = value

            return apply_set_meta_field

        def apply_set_field(packet: Packet) -> None:
            packet.fields[name] = value

        return apply_set_field
    if op == "add_to_field":
        name, delta = str(args[0]), int(args[1])
        if name.startswith("meta."):
            def apply_add_meta(packet: Packet) -> None:
                store = packet.metadata
                store[name] = (store.get(name) or 0) + delta

            return apply_add_meta

        def apply_add(packet: Packet) -> None:
            store = packet.fields
            store[name] = (store.get(name) or 0) + delta

        return apply_add
    if op == "copy_field":
        dst, src = str(args[0]), str(args[1])
        dst_meta = dst.startswith("meta.")
        src_meta = src.startswith("meta.")

        def apply_copy(packet: Packet) -> None:
            value = (
                packet.metadata.get(src)
                if src_meta
                else packet.fields.get(src)
            ) or 0
            if dst_meta:
                packet.metadata[dst] = value
            else:
                packet.fields[dst] = value

        return apply_copy
    if op == "set_meta":
        key = str(args[0])
        if not key.startswith("meta."):
            key = f"meta.{key}"
        value = int(args[1])

        def apply_meta(packet: Packet) -> None:
            packet.metadata[key] = value

        return apply_meta
    if op == "forward":
        port = int(args[0])

        def apply_forward(packet: Packet) -> None:
            packet.egress_port = port

        return apply_forward
    if op == "drop":
        def apply_drop(packet: Packet) -> None:
            packet.dropped = True

        return apply_drop
    if op == "no_op":
        return None
    if op == "count":
        counter_name = str(args[0])

        def apply_count(packet: Packet) -> None:
            explicit_counters[counter_name] = (
                explicit_counters.get(counter_name, 0) + 1
            )

        return apply_count
    raise EmulationError(f"Unknown primitive op {op!r}")


def compile_effect(
    bound: list[BoundPrimitive] | tuple[BoundPrimitive, ...],
    explicit_counters: dict[str, int],
) -> tuple[CompiledPrimitive, ...]:
    """Compile a bound-primitive list into direct mutators (Nones kept
    so the caller charges one action cost per primitive, no-ops
    included, exactly like the interpreter)."""
    return tuple(
        compile_primitive(op, args, explicit_counters)
        for op, args in bound
    )
