"""The SmartNIC emulator: a dual-pipeline run-to-completion interpreter.

This is the reproduction's stand-in for the paper's three hardware setups.
It walks a packet through the program DAG, charging each node the cost the
target's core model assigns to it (match = ``m * Lmat``, action =
``n * Lact``, branches, counter updates), executes Pipeleon's special node
kinds (flow caches, merged tables, navigation/migration tables), migrates
packets between the ASIC and CPU pipelines, and aggregates the per-pool
busy time that the throughput model converts to Gbps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Optional

from repro.errors import EmulationError
from repro.ir.conditionals import ConditionalNode
from repro.ir.entries import TableEntry
from repro.ir.program import Program
from repro.ir.tables import Pipeline, TableKind, TableNode
from repro.nic.control_plane import SimClock
from repro.nic.counters import (
    CounterBank,
    action_counter,
    branch_counter,
    cache_counter,
)
from repro.nic.flow_cache import Effect, FlowCache
from repro.nic.packet import NEXT_TAB_ID, Packet
from repro.nic.pipeline import BoundPrimitive, apply_primitive, bind_action
from repro.nic.stats import PacketResult, RunStats
from repro.nic.table_runtime import RuntimeTable
from repro.nic.targets import TargetModel
from repro.telemetry.tracing import NATIVE_CACHE_STEP, PARSER_STEP

#: Span-kind names for the tracer, by table kind.
_TRACE_KINDS = {
    TableKind.PLAIN: "table",
    TableKind.MERGED: "merged",
    TableKind.NAVIGATION: "nav",
    TableKind.MIGRATION: "migration",
    TableKind.CACHE: "cache",
}


@dataclass
class _CacheRecording:
    """Miss-path effect recording for one flow cache.

    Effects of covered tables accumulate until execution reaches the
    cache's ``hit_next`` node (or the packet terminates), at which point
    the recording is committed. Committing on reaching ``hit_next``
    rather than on "all covered tables executed" lets caches span branch
    diamonds (pipelet groups, §4.1.1) where only one side executes.
    """

    cache_name: str
    key: tuple[int, ...]
    covers: set[str]  # {"*"} means record everything (native cache)
    hit_next: Optional[str] = None
    effects: list[BoundPrimitive] = field(default_factory=list)
    finished: bool = False


class NicEmulator:
    """Executes a deployed program on a modelled SmartNIC target."""

    def __init__(
        self,
        program: Program,
        target: TargetModel,
        clock: Optional[SimClock] = None,
        sample_stride: int = 1,
        instrument: bool = True,
        native_cache: Optional[bool] = None,
        max_steps: int = 100000,
    ):
        self.program = program
        self.target = target
        self.clock = clock or SimClock()
        self.instrument = instrument
        self.counters = CounterBank(sample_stride=sample_stride)
        self.explicit_counters: dict[str, int] = {}
        self.max_steps = max_steps

        # Nodes assigned to a pool the target doesn't have execute on
        # the pool it does have (e.g. ASIC-annotated tables on the
        # CPU-only Agilio CX).
        self._pipeline_map: dict[str, Pipeline] = {}
        for name, node in program.nodes.items():
            pipeline = node.pipeline
            if not target.has(pipeline):
                pipeline = target.default_pipeline
            self._pipeline_map[name] = pipeline

        # Numeric node ids for navigation tables (metadata is int-typed).
        self.node_ids: dict[str, int] = {
            name: i + 1
            for i, name in enumerate(sorted(program.nodes))
        }
        self._id_nodes = {v: k for k, v in self.node_ids.items()}

        self.runtime_tables: dict[str, RuntimeTable] = {}
        self.flow_caches: dict[str, FlowCache] = {}
        for table in program.tables():
            if table.kind is TableKind.CACHE and table.cache_info:
                if table.cache_info.mode == "flow":
                    self.flow_caches[table.name] = FlowCache(
                        capacity=table.cache_info.capacity,
                        insertion_limit_pps=(
                            table.cache_info.insertion_limit_pps
                        ),
                    )
                    continue
            if table.kind in (
                TableKind.PLAIN,
                TableKind.MERGED,
                TableKind.MIGRATION,
            ) or (
                table.kind is TableKind.CACHE
                and table.cache_info
                and table.cache_info.mode == "merge"
            ):
                self.runtime_tables[table.name] = RuntimeTable(table)

        if native_cache is None:
            native_cache = target.native_flow_cache and program.metadata.get(
                "native_cache_compatible", True
            )
        self.native_cache: Optional[FlowCache] = (
            FlowCache(capacity=target.native_cache_capacity)
            if native_cache
            else None
        )

        # Reverse index for cache invalidation: original-table name ->
        # flow caches whose covered run includes it. Built once here so
        # control-plane updates don't rescan the program per event.
        self._cache_cover_index: dict[str, list[str]] = {}
        for name in self.flow_caches:
            info = program.table(name).cache_info
            if info is None:
                continue
            for covered in info.covers:
                self._cache_cover_index.setdefault(covered, []).append(
                    name
                )
        # Tables whose updates can change what the whole-program native
        # cache would replay: everything on the datapath, plus the
        # sources that merged/copied tables were derived from.
        self._native_relevant: set[str] = set(program.nodes)
        for node in program.nodes.values():
            annotations = node.annotations
            info = getattr(node, "cache_info", None)
            if info is not None:
                self._native_relevant.update(info.covers)
            self._native_relevant.update(
                str(c) for c in annotations.get("naive_merge_of", ())
            )
            source = annotations.get("copy_of")
            if source:
                self._native_relevant.add(str(source))

        self._fastpath = None
        self._columnar = None
        #: Cumulative columnar-tier demotion counts by reason, and the
        #: number of packets the batch kernels retired themselves. Owned
        #: here (not by the engine) so recompiles don't reset them and
        #: shard workers can ship them home for merging.
        self.columnar_demotions: dict[str, int] = {}
        self.columnar_packets = 0
        #: Flow-key partitions the batch kernels resolved (one table
        #: lookup each) — the partition-count bottleneck metric.
        self.columnar_partitions = 0
        #: Optional sampled-span recorder (attach a PacketTracer to
        #: trace; the disabled path costs one branch per packet here
        #: and one per batch in the compiled fast path).
        self.tracer = None

    # -- state management -------------------------------------------------------

    def set_table_entries(
        self, table: str, entries: Iterable[TableEntry]
    ) -> None:
        runtime = self.runtime_tables.get(table)
        if runtime is None:
            raise EmulationError(
                f"Emulator has no runtime table {table!r}"
            )
        runtime.clear()
        for entry in entries:
            runtime.insert(entry)

    def invalidate_caches_covering(self, table: str) -> list[str]:
        """Invalidate flow caches whose covered run includes ``table``.

        The paper: "an update in any of the original tables will
        invalidate the entire cache". Covered caches come from the
        precomputed reverse index; the native whole-program cache is
        flushed only when the updated table actually feeds this
        program's datapath (previously any update — even to a table
        this program never reads — cold-started it).
        """
        invalidated = []
        for name in self._cache_cover_index.get(table, ()):
            self.flow_caches[name].invalidate_all()
            invalidated.append(name)
        if (
            self.native_cache is not None
            and table in self._native_relevant
        ):
            self.native_cache.invalidate_all()
        return invalidated

    def flush_caches(self) -> None:
        """Cold-start every flow cache (and the native cache).

        The data-plane half of :meth:`repro.nic.control_plane.
        ControlPlane.flush_caches`; sharded workers apply it when the
        flush broadcast reaches them.
        """
        for cache in self.flow_caches.values():
            cache.invalidate_all()
        if self.native_cache is not None:
            self.native_cache.invalidate_all()

    def table_memory_bytes(self) -> dict[str, int]:
        return {
            name: runtime.memory_bytes
            for name, runtime in self.runtime_tables.items()
        }

    # -- data path ----------------------------------------------------------------

    def process(self, packet: Packet, trace=None) -> PacketResult:
        """Run one packet to completion; returns its cost breakdown.

        ``trace`` is an already-begun :class:`~repro.telemetry.tracing.
        PacketTrace` (the fast path samples before delegating here);
        when None and a tracer is attached, the tracer's 1-in-N sampler
        decides whether this packet gets one.
        """
        busy: dict[Pipeline, float] = {}
        path: list[str] = []
        migrations = 0
        recordings: list[_CacheRecording] = []
        sampled = self.counters.begin_packet() if self.instrument else False
        tracer = self.tracer
        if trace is None and tracer is not None:
            trace = tracer.try_begin(self.clock.now_s)
        if trace is not None:
            trace.enter(PARSER_STEP, "parser", 0.0)

        def charge(pipeline: Pipeline, ns: float) -> None:
            busy[pipeline] = busy.get(pipeline, 0.0) + ns

        current = self.program.root
        if current is None:
            if trace is not None and tracer is not None:
                tracer.finish(trace, 0.0, False, None)
            return PacketResult(0.0, False, None, 0, busy, ())
        entry_pipeline = self._pipeline_map[current]

        # Vendor-native whole-program flow cache (Agilio CX).
        if self.native_cache is not None:
            core = self.target.core(entry_pipeline)
            if trace is not None:
                trace.enter(
                    NATIVE_CACHE_STEP, "cache", sum(busy.values())
                )
            charge(entry_pipeline, core.lookup_ns)
            effect = self.native_cache.lookup(packet.flow_key())
            if effect is not None:
                if trace is not None:
                    trace.note("hit")
                for op, args in effect:
                    charge(entry_pipeline, core.action_ns)
                    apply_primitive(
                        packet, op, args, self.explicit_counters
                    )
                return self._finish(packet, busy, path, migrations, trace)
            if trace is not None:
                trace.note("miss")
            recordings.append(
                _CacheRecording(
                    "__native__", packet.flow_key(), {"*"}, hit_next=None
                )
            )

        previous_pipeline: Optional[Pipeline] = None
        steps = 0
        while current is not None:
            steps += 1
            if steps > self.max_steps:
                raise EmulationError(
                    f"Packet exceeded {self.max_steps} steps; "
                    f"program {self.program.name!r} likely has a cycle"
                )
            for recording in recordings:
                if (
                    not recording.finished
                    and recording.hit_next == current
                ):
                    if self._commit_recording(recording):
                        self._charge_insert(recording, charge)
            node = self.program.node(current)
            pipeline = self._pipeline_map[current]
            core = self.target.core(pipeline)
            if trace is not None:
                trace.enter(
                    current,
                    "branch"
                    if isinstance(node, ConditionalNode)
                    else _TRACE_KINDS.get(node.kind, "table"),
                    sum(busy.values()),
                )
            if (
                previous_pipeline is not None
                and pipeline is not previous_pipeline
            ):
                charge(pipeline, self.target.migration_ns)
                migrations += 1
            previous_pipeline = pipeline
            path.append(current)

            if isinstance(node, ConditionalNode):
                charge(pipeline, core.branch_ns)
                taken = node.condition.evaluate(packet.get)
                if trace is not None:
                    trace.note("true" if taken else "false")
                if sampled:
                    self.counters.bump(
                        branch_counter(node.name, taken),
                        packet.size_bytes,
                    )
                    charge(pipeline, core.counter_update_ns)
                current = node.true_next if taken else node.false_next
                continue

            current = self._execute_table(
                node, packet, pipeline, core, charge, sampled, recordings,
                trace,
            )
            if packet.dropped:
                break

        self._finalize_recordings(packet, recordings, charge)
        return self._finish(packet, busy, path, migrations, trace)

    def _execute_table(self, node, packet, pipeline, core, charge,
                       sampled, recordings, trace=None):
        """Dispatch on table kind; returns the next node name."""
        kind = node.kind

        if kind is TableKind.NAVIGATION:
            charge(pipeline, core.lookup_ns)
            node_id = packet.metadata.get(NEXT_TAB_ID)
            if node_id is None:
                # First entry into the component: fall through.
                return node.next_map[node.default_action]
            target_name = self._id_nodes.get(node_id)
            if target_name is None:
                raise EmulationError(
                    f"Navigation table {node.name!r}: unknown "
                    f"next_tab_id {node_id}"
                )
            packet.metadata.pop(NEXT_TAB_ID, None)
            return target_name

        if kind is TableKind.MIGRATION:
            charge(pipeline, core.action_ns)
            resume = node.annotations.get("resume")
            if resume is not None:
                packet.set(NEXT_TAB_ID, self.node_ids[resume])
            return node.next_map[node.default_action]

        if (
            kind is TableKind.CACHE
            and node.cache_info
            and node.cache_info.mode == "flow"
        ):
            return self._execute_flow_cache(
                node, packet, pipeline, core, charge, sampled, recordings,
                trace,
            )

        if kind is TableKind.MERGED or (
            kind is TableKind.CACHE
            and node.cache_info
            and node.cache_info.mode == "merge"
        ):
            return self._execute_merged(
                node, packet, pipeline, core, charge, sampled, recordings,
                trace,
            )

        # Plain table.
        runtime = self.runtime_tables[node.name]
        charge(
            pipeline,
            core.match_cost_ns(
                node.worst_match_type,
                runtime.memory_accesses,
                node.memory_tier,
            ),
        )
        result = runtime.lookup(packet)
        if trace is not None:
            trace.note(result.action.name)
        if sampled:
            self.counters.bump(
                action_counter(node.name, result.action.name),
                packet.size_bytes,
            )
            charge(pipeline, core.counter_update_ns)
        bound = bind_action(result.action, result.action_data)
        for op, args in bound:
            charge(pipeline, core.action_ns)
            apply_primitive(packet, op, args, self.explicit_counters)
        self._record(node.name, bound, packet, recordings)
        if packet.dropped:
            return None
        return node.next_map[result.action.name]

    def _execute_flow_cache(self, node, packet, pipeline, core, charge,
                            sampled, recordings, trace=None):
        info = node.cache_info
        cache = self.flow_caches[node.name]
        charge(pipeline, core.lookup_ns)
        key = packet.key(node.match_fields)
        effect = cache.lookup(key)
        if trace is not None:
            trace.note("hit" if effect is not None else "miss")
        if sampled:
            self.counters.bump(
                cache_counter(node.name, effect is not None),
                packet.size_bytes,
            )
            charge(pipeline, core.counter_update_ns)
        if effect is not None:
            for op, args in effect:
                charge(pipeline, core.action_ns)
                apply_primitive(packet, op, args, self.explicit_counters)
            # Replayed effects also belong in any outer recording.
            self._record(node.name, list(effect), packet, recordings,
                         covered_names=set(info.covers))
            if packet.dropped:
                return None
            return info.hit_next
        recordings.append(
            _CacheRecording(
                node.name,
                key,
                set(info.covers),
                hit_next=info.hit_next,
            )
        )
        return info.miss_next

    def _execute_merged(self, node, packet, pipeline, core, charge,
                        sampled, recordings, trace=None):
        info = node.cache_info
        runtime = self.runtime_tables[node.name]
        charge(
            pipeline,
            core.match_cost_ns(
                node.worst_match_type,
                runtime.memory_accesses,
                node.memory_tier,
            ),
        )
        result = runtime.lookup(packet)
        if trace is not None:
            trace.note("hit" if result.hit else "miss")
        if sampled:
            self.counters.bump(
                cache_counter(node.name, result.hit), packet.size_bytes
            )
            charge(pipeline, core.counter_update_ns)
        if not result.hit:
            # Fall back to the original tables (merge-as-cache, §3.2.3).
            return info.miss_next if info else None
        bound = bind_action(result.action, result.action_data)
        for op, args in bound:
            charge(pipeline, core.action_ns)
            apply_primitive(packet, op, args, self.explicit_counters)
        covered = set(info.covers) if info else set()
        self._record(node.name, bound, packet, recordings,
                     covered_names=covered)
        if packet.dropped:
            return None
        return info.hit_next if info else None

    # -- cache recording ------------------------------------------------------------

    def _record(self, table_name, bound, packet, recordings,
                covered_names=None):
        """Feed executed primitives into any active miss recordings."""
        names = covered_names or {table_name}
        for recording in recordings:
            if recording.finished:
                continue
            if "*" in recording.covers or recording.covers & names:
                recording.effects.extend(bound)

    def _finalize_recordings(self, packet, recordings, charge):
        """Commit whatever is still open once the packet terminates."""
        for recording in recordings:
            if not recording.finished:
                if self._commit_recording(recording):
                    self._charge_insert(recording, charge)

    def _charge_insert(self, recording: _CacheRecording, charge) -> None:
        """Bill a cache insertion to the owning pipeline (§3.2.2:
        cache inserts consume entry-insertion bandwidth)."""
        pipeline = self._pipeline_map.get(
            recording.cache_name,
            self._pipeline_map[self.program.root]
            if self.program.root
            else self.target.default_pipeline,
        )
        charge(pipeline, self.target.core(pipeline).table_insert_ns)

    def _commit_recording(self, recording: _CacheRecording) -> bool:
        """Install the recorded effect; True if an insert happened."""
        recording.finished = True
        effect: Effect = tuple(recording.effects)
        if recording.cache_name == "__native__":
            if self.native_cache is not None:
                return self.native_cache.insert(
                    recording.key, effect, self.clock.now_s
                )
            return False
        cache = self.flow_caches.get(recording.cache_name)
        if cache is not None:
            return cache.insert(recording.key, effect, self.clock.now_s)
        return False

    def _finish(
        self, packet, busy, path, migrations, trace=None
    ) -> PacketResult:
        result = PacketResult(
            latency_ns=sum(busy.values()),
            dropped=packet.dropped,
            egress_port=packet.egress_port,
            migrations=migrations,
            busy_ns=busy,
            path=tuple(path),
        )
        if trace is not None and self.tracer is not None:
            self.tracer.finish(
                trace,
                result.latency_ns,
                result.dropped,
                result.egress_port,
            )
        return result

    # -- batch runs --------------------------------------------------------------------

    def run(
        self,
        packets: Iterable[Packet],
        offered_pps: Optional[float] = None,
    ) -> RunStats:
        """Process packets; optionally advance the sim clock per packet."""
        stats = RunStats()
        dt = 1.0 / offered_pps if offered_pps else 0.0
        for packet in packets:
            if dt:
                self.clock.advance(dt)
            result = self.process(packet)
            stats.record(result, packet.size_bytes)
        return stats

    # -- compiled fast path ------------------------------------------------------------

    @property
    def fastpath(self):
        """The compiled replay engine for the current installed state.

        Compiled lazily and recompiled automatically whenever a runtime
        table's entries changed or a cache object was swapped (see
        :meth:`repro.nic.fastpath.FastPathEngine.stale`). Replay through
        it is bit-identical to :meth:`process`.
        """
        from repro.nic.fastpath import FastPathEngine

        engine = self._fastpath
        if engine is None or engine.stale():
            engine = self._fastpath = FastPathEngine(self)
        return engine

    @property
    def columnar(self):
        """The columnar batch-kernel engine for the installed state.

        Same lifecycle as :attr:`fastpath`: compiled lazily, recompiled
        whenever the staleness fingerprint moves. Batches it cannot
        express demote (per packet, counted in
        :attr:`columnar_demotions`) to the closure tier, so replay
        through it is bit-identical to :meth:`process` regardless.
        """
        from repro.nic.columnar import ColumnarEngine

        engine = self._columnar
        if engine is None or engine.stale():
            engine = self._columnar = ColumnarEngine(self)
        return engine

    def replay_one(self, packet: Packet, into=None) -> PacketResult:
        """Fast-path equivalent of :meth:`process` for one packet."""
        return self.fastpath.replay_one(packet, into=into)

    def replay_batch(
        self,
        packets,
        stats: RunStats,
        dt_s: float = 0.0,
        timestamps=None,
        engine: str = "auto",
    ):
        """Replay one batch through the selected execution tier.

        ``engine`` picks the tier: ``"columnar"``/``"auto"`` run the
        batch kernels (returning a ``BatchOutcome`` with per-packet
        latency/egress/dropped columns), ``"fastpath"`` the closure
        chains, ``"interp"`` the reference interpreter; the latter two
        return None. All tiers are bit-identical on stats, counters,
        caches and per-packet results.
        """
        if engine == "auto" or engine == "columnar":
            return self.columnar.replay_batch(
                packets, stats, dt_s, timestamps
            )
        if engine == "fastpath":
            self.fastpath.replay_batch(packets, stats, dt_s, timestamps)
            return None
        if engine == "interp":
            clock = self.clock
            if timestamps is not None:
                for packet, now_s in zip(packets, timestamps):
                    clock.now_s = now_s
                    result = self.process(packet)
                    stats.record(result, packet.size_bytes)
                return None
            for packet in packets:
                if dt_s:
                    clock.advance(dt_s)
                result = self.process(packet)
                stats.record(result, packet.size_bytes)
            return None
        raise ValueError(f"Unknown engine {engine!r}")

    def replay(
        self,
        packets: Iterable[Packet],
        offered_pps: Optional[float] = None,
        batch: int = 256,
        packet_pool=None,
        stats: Optional[RunStats] = None,
        engine: str = "auto",
    ) -> RunStats:
        """Batch replay through a compiled execution tier.

        Equivalent to :meth:`run` (same stats, counters and cache
        state), but packets are driven through the selected engine in
        ``batch``-sized chunks with no per-packet result allocation.
        ``engine`` is ``"auto"`` (columnar batch kernels with closure
        demotion), ``"columnar"``, ``"fastpath"`` or ``"interp"``.
        Pass a :class:`~repro.nic.packet.PacketPool` as ``packet_pool``
        to recycle consumed packets back to the generator's free list.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if stats is None:
            stats = RunStats()
        dt = 1.0 / offered_pps if offered_pps else 0.0
        iterator = iter(packets)
        buffer: list[Packet] = []
        while True:
            buffer.clear()
            buffer.extend(islice(iterator, batch))
            if not buffer:
                return stats
            self.replay_batch(buffer, stats, dt, engine=engine)
            if packet_pool is not None:
                for packet in buffer:
                    packet_pool.release(packet)
