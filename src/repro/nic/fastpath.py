"""Compiled fast-path replay engine for the NIC emulator.

:meth:`NicEmulator.process` is a per-packet *interpreter*: every step
re-resolves the current node from the program dict, its pipeline from the
pipeline map, its core model from the target, re-derives the match cost
from the engine's probe count, binds the hit entry's action data and
string-dispatches every primitive. That cost is pure Python overhead —
none of it depends on the packet.

The fast path moves all of that work to *deploy time*. Compiling walks
the program DAG once and emits one specialized step closure per node:

* per-node costs (``lookup_ns``, match cost with the frozen probe count
  ``m``, ``action_ns``, counter-update and migration penalties) are baked
  in as floats;
* key extraction is a pre-split header/metadata tuple builder;
* action primitives are pre-bound (``bind_action``) and pre-compiled to
  direct dict mutators (:func:`repro.nic.pipeline.compile_primitive`),
  memoized per table entry;
* next-node pointers are resolved to direct closure references (nodes
  are compiled in reverse topological order so successors exist when
  their predecessors compile; cyclic programs fall back to late-bound
  trampolines and still hit the interpreter-identical ``max_steps``
  guard).

The per-packet loop is then plain closure chaining:
``fn = fn(ctx)`` until ``None``.

The engine is a *replica*, not a replacement: the interpreter remains
the reference semantics, and the fast path must be bit-identical on
counter banks, execution paths, per-pool busy time, flow-cache contents
and statistics (differential tests in ``tests/test_nic_fastpath.py``
and ``tests/test_fastpath_property.py`` enforce this). It is also the
middle tier of the emulator's execution stack: the columnar engine
(:mod:`repro.nic.columnar`) runs whole batches per DAG node and demotes
the packets its kernels can't express to :meth:`FastPathEngine.
replay_one`, so this module's per-packet semantics anchor both faster
tiers. Compiled state
freezes table entries and probe counts, so the engine records the
version of every runtime table at compile time; :attr:`NicEmulator.
fastpath` recompiles automatically when any version moved (entry
insert/delete/modify/clear) or a cache object was swapped out (e.g.
warm-cache carry-over across redeployments).

Not thread-safe: each engine owns a single mutable replay context.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import EmulationError, IrError
from repro.ir.conditionals import _OPS, ConditionalNode
from repro.ir.tables import Pipeline, TableKind, TableNode
from repro.nic.counters import (
    action_counter,
    branch_counter,
    cache_counter,
)
from repro.nic.emulator import NicEmulator, _CacheRecording
from repro.nic.packet import FIVE_TUPLE, NEXT_TAB_ID, Packet
from repro.nic.pipeline import apply_primitive, bind_action, compile_effect
from repro.nic.stats import PacketResult, RunStats

#: A compiled step: runs one node against the context and returns the
#: next step closure (or ``None`` at the end of the pipeline / a drop).
StepFn = Callable[["ReplayContext"], Optional[Callable]]

_ASIC = Pipeline.ASIC
_CPU = Pipeline.CPU


class ReplayContext:
    """Mutable per-packet state threaded through the step closures.

    ``busy``/``used`` are two-slot lists indexed by pool (0 = ASIC,
    1 = CPU); accumulation order within a pool matches the interpreter's
    charge order exactly, so per-pool busy times agree bit for bit.
    """

    __slots__ = (
        "packet",
        "busy",
        "used",
        "path",
        "migrations",
        "recordings",
        "sampled",
        "prev",
    )

    def __init__(self) -> None:
        self.packet: Optional[Packet] = None
        self.busy = [0.0, 0.0]
        self.used = [False, False]
        self.path: list[str] = []
        self.migrations = 0
        self.recordings: list[_CacheRecording] = []
        self.sampled = False
        self.prev: Optional[Pipeline] = None


def _pool_index(pipeline: Pipeline) -> int:
    return 0 if pipeline is _ASIC else 1


def _make_extractor(
    field_names: tuple[str, ...],
) -> Callable[[Packet], tuple[int, ...]]:
    """Precompiled ``Packet.key``: namespace split done at compile time."""
    metas = tuple(name.startswith("meta.") for name in field_names)
    if not any(metas):
        if len(field_names) == 1:
            (n0,) = field_names

            def extract1(packet: Packet) -> tuple[int, ...]:
                return (packet.fields.get(n0) or 0,)

            return extract1
        if len(field_names) == 2:
            n0, n1 = field_names

            def extract2(packet: Packet) -> tuple[int, ...]:
                fields = packet.fields
                return (fields.get(n0) or 0, fields.get(n1) or 0)

            return extract2

        def extract_headers(
            packet: Packet, _names=field_names
        ) -> tuple[int, ...]:
            fields = packet.fields
            return tuple(fields.get(name) or 0 for name in _names)

        return extract_headers

    pairs = tuple(zip(metas, field_names))

    def extract_mixed(packet: Packet) -> tuple[int, ...]:
        fields = packet.fields
        metadata = packet.metadata
        return tuple(
            (metadata.get(name) if is_meta else fields.get(name)) or 0
            for is_meta, name in pairs
        )

    return extract_mixed


def _record(recordings, bound, names) -> None:
    """Mirror of ``NicEmulator._record`` over precomputed name sets."""
    for recording in recordings:
        if recording.finished:
            continue
        covers = recording.covers
        if "*" in covers or not covers.isdisjoint(names):
            recording.effects.extend(bound)


class FastPathEngine:
    """A program compiled against one emulator's installed state."""

    def __init__(self, emulator: NicEmulator):
        self._em = emulator
        self._ctx = ReplayContext()
        self._instrument = emulator.instrument
        self._counter_bank = emulator.counters
        self._max_steps = emulator.max_steps
        self._program_name = emulator.program.name
        self._native_cache_obj = emulator.native_cache
        # Sampled tracing: captured at compile time so the replay loops
        # branch on a local, and a tracer attach/detach recompiles.
        self._tracer = emulator.tracer
        self._fns: dict[str, StepFn] = {}
        self._by_id: dict[int, StepFn] = {}
        # Staleness fingerprints: runtime-table versions and cache object
        # identities as of compile time.
        self._table_versions = [
            (name, runtime, runtime.version)
            for name, runtime in emulator.runtime_tables.items()
        ]
        self._cache_objs = list(emulator.flow_caches.items())
        self._compile()

    # -- staleness ---------------------------------------------------------

    def stale(self) -> bool:
        """True if the emulator's state diverged from compiled state."""
        em = self._em
        if (
            em.instrument != self._instrument
            or em.counters is not self._counter_bank
            or em.native_cache is not self._native_cache_obj
            or em.max_steps != self._max_steps
            or em.tracer is not self._tracer
        ):
            return True
        for name, runtime, version in self._table_versions:
            current = em.runtime_tables.get(name)
            if current is not runtime or current.version != version:
                return True
        for name, cache in self._cache_objs:
            if em.flow_caches.get(name) is not cache:
                return True
        return False

    # -- compilation -------------------------------------------------------

    def _compile(self) -> None:
        em = self._em
        program = em.program
        try:
            order = list(reversed(program.topological_order()))
        except IrError:
            order = []  # cyclic program: trampolines keep it runnable
        ordered = set(order)
        names = order + [
            name for name in sorted(program.nodes) if name not in ordered
        ]
        for name in names:
            self._fns[name] = self._compile_node(program.nodes[name])
        # Navigation jump table (ids are dynamic next pointers).
        for name, node_id in em.node_ids.items():
            fn = self._fns.get(name)
            if fn is not None:
                self._by_id[node_id] = fn
        self._root_fn = (
            self._fns.get(program.root) if program.root else None
        )
        # Insert-billing: pipeline slot + cost per cache, mirroring
        # NicEmulator._charge_insert (unknown names bill the root pool).
        if program.root is not None:
            root_pipeline = em._pipeline_map[program.root]
        else:
            root_pipeline = em.target.default_pipeline
        self._root_charge = (
            _pool_index(root_pipeline),
            em.target.core(root_pipeline).table_insert_ns,
        )
        self._insert_charge = {}
        for name in em.flow_caches:
            pipeline = em._pipeline_map.get(name, root_pipeline)
            self._insert_charge[name] = (
                _pool_index(pipeline),
                em.target.core(pipeline).table_insert_ns,
            )
        self._native_fn = self._compile_native()

    def _resolve(self, name: Optional[str]) -> Optional[StepFn]:
        """Direct closure reference, or a late-bound trampoline for
        edges whose target is not compiled yet (cycles only)."""
        if name is None:
            return None
        fn = self._fns.get(name)
        if fn is not None:
            return fn
        fns = self._fns

        def trampoline(ctx: ReplayContext, _name=name):
            return fns[_name](ctx)

        return trampoline

    def _compile_node(self, node) -> StepFn:
        if isinstance(node, ConditionalNode):
            return self._compile_conditional(node)
        kind = node.kind
        if kind is TableKind.NAVIGATION:
            return self._compile_navigation(node)
        if kind is TableKind.MIGRATION:
            return self._compile_migration(node)
        if (
            kind is TableKind.CACHE
            and node.cache_info
            and node.cache_info.mode == "flow"
        ):
            return self._compile_flow_cache(node)
        if kind is TableKind.MERGED or (
            kind is TableKind.CACHE
            and node.cache_info
            and node.cache_info.mode == "merge"
        ):
            return self._compile_merged(node)
        return self._compile_plain(node)

    def _node_consts(self, node):
        """Shared per-node constants: pipeline slot, core, penalties."""
        em = self._em
        pipeline = em._pipeline_map[node.name]
        return (
            pipeline,
            _pool_index(pipeline),
            em.target.core(pipeline),
            em.target.migration_ns,
        )

    def _make_runner(self, bound, pool, action_ns):
        """Compile one bound-primitive list into a charged applier."""
        compiled = compile_effect(bound, self._em.explicit_counters)
        if not compiled:
            def run_nothing(ctx: ReplayContext, packet: Packet) -> None:
                return None

            return run_nothing

        def run(ctx: ReplayContext, packet: Packet) -> None:
            busy = ctx.busy
            for applier in compiled:
                busy[pool] += action_ns
                if applier is not None:
                    applier(packet)

        return run

    # -- node compilers ----------------------------------------------------

    def _compile_conditional(self, node: ConditionalNode) -> StepFn:
        name = node.name
        pipeline, pool, core, migration_ns = self._node_consts(node)
        branch_ns = core.branch_ns
        counter_ns = core.counter_update_ns
        condition = node.condition
        field = condition.field
        is_meta = field.startswith("meta.")
        is_valid = condition.op == "valid"
        op_fn = _OPS.get(condition.op)
        value = condition.value
        true_key = branch_counter(name, True)
        false_key = branch_counter(name, False)
        true_fn = self._resolve(node.true_next)
        false_fn = self._resolve(node.false_next)
        bump = self._counter_bank.bump
        commit_open = self._commit_open

        def step(ctx: ReplayContext):
            if ctx.recordings:
                commit_open(ctx, name)
            busy = ctx.busy
            prev = ctx.prev
            if prev is not pipeline:
                if prev is not None:
                    busy[pool] += migration_ns
                    ctx.migrations += 1
                ctx.prev = pipeline
            busy[pool] += branch_ns
            ctx.used[pool] = True
            ctx.path.append(name)
            packet = ctx.packet
            packet_value = (
                packet.metadata if is_meta else packet.fields
            ).get(field)
            if is_valid:
                taken = packet_value is not None
            else:
                taken = packet_value is not None and op_fn(
                    packet_value, value
                )
            if ctx.sampled:
                bump(true_key if taken else false_key, packet.size_bytes)
                busy[pool] += counter_ns
            return true_fn if taken else false_fn

        return step

    def _compile_navigation(self, node: TableNode) -> StepFn:
        name = node.name
        pipeline, pool, core, migration_ns = self._node_consts(node)
        lookup_ns = core.lookup_ns
        default_fn = self._resolve(node.next_map[node.default_action])
        by_id = self._by_id  # filled after all nodes compile
        commit_open = self._commit_open

        def step(ctx: ReplayContext):
            if ctx.recordings:
                commit_open(ctx, name)
            busy = ctx.busy
            prev = ctx.prev
            if prev is not pipeline:
                if prev is not None:
                    busy[pool] += migration_ns
                    ctx.migrations += 1
                ctx.prev = pipeline
            busy[pool] += lookup_ns
            ctx.used[pool] = True
            ctx.path.append(name)
            metadata = ctx.packet.metadata
            node_id = metadata.get(NEXT_TAB_ID)
            if node_id is None:
                return default_fn
            target_fn = by_id.get(node_id)
            if target_fn is None:
                raise EmulationError(
                    f"Navigation table {name!r}: unknown "
                    f"next_tab_id {node_id}"
                )
            metadata.pop(NEXT_TAB_ID, None)
            return target_fn

        return step

    def _compile_migration(self, node: TableNode) -> StepFn:
        name = node.name
        pipeline, pool, core, migration_ns = self._node_consts(node)
        action_ns = core.action_ns
        resume = node.annotations.get("resume")
        resume_id = (
            self._em.node_ids[resume] if resume is not None else None
        )
        next_fn = self._resolve(node.next_map[node.default_action])
        commit_open = self._commit_open

        def step(ctx: ReplayContext):
            if ctx.recordings:
                commit_open(ctx, name)
            busy = ctx.busy
            prev = ctx.prev
            if prev is not pipeline:
                if prev is not None:
                    busy[pool] += migration_ns
                    ctx.migrations += 1
                ctx.prev = pipeline
            busy[pool] += action_ns
            ctx.used[pool] = True
            ctx.path.append(name)
            if resume_id is not None:
                ctx.packet.metadata[NEXT_TAB_ID] = resume_id
            return next_fn

        return step

    def _compile_flow_cache(self, node: TableNode) -> StepFn:
        name = node.name
        info = node.cache_info
        pipeline, pool, core, migration_ns = self._node_consts(node)
        lookup_ns = core.lookup_ns
        action_ns = core.action_ns
        counter_ns = core.counter_update_ns
        extract = _make_extractor(node.match_fields)
        cache_lookup = self._em.flow_caches[name].lookup
        hit_key = cache_counter(name, True)
        miss_key = cache_counter(name, False)
        hit_fn = self._resolve(info.hit_next)
        miss_fn = self._resolve(info.miss_next)
        hit_next_name = info.hit_next
        covers_set = set(info.covers)
        covers_frozen = frozenset(info.covers)
        explicit_counters = self._em.explicit_counters
        bump = self._counter_bank.bump
        commit_open = self._commit_open

        def step(ctx: ReplayContext):
            recordings = ctx.recordings
            if recordings:
                commit_open(ctx, name)
            busy = ctx.busy
            prev = ctx.prev
            if prev is not pipeline:
                if prev is not None:
                    busy[pool] += migration_ns
                    ctx.migrations += 1
                ctx.prev = pipeline
            busy[pool] += lookup_ns
            ctx.used[pool] = True
            ctx.path.append(name)
            packet = ctx.packet
            key = extract(packet)
            effect = cache_lookup(key)
            if ctx.sampled:
                bump(
                    hit_key if effect is not None else miss_key,
                    packet.size_bytes,
                )
                busy[pool] += counter_ns
            if effect is not None:
                for op, args in effect:
                    busy[pool] += action_ns
                    apply_primitive(packet, op, args, explicit_counters)
                if recordings:
                    _record(recordings, effect, covers_frozen)
                if packet.dropped:
                    return None
                return hit_fn
            recordings.append(
                _CacheRecording(
                    name, key, covers_set, hit_next=hit_next_name
                )
            )
            return miss_fn

        return step

    def _compile_merged(self, node: TableNode) -> StepFn:
        name = node.name
        info = node.cache_info
        pipeline, pool, core, migration_ns = self._node_consts(node)
        runtime = self._em.runtime_tables[name]
        match_ns = core.match_cost_ns(
            node.worst_match_type,
            runtime.memory_accesses,
            node.memory_tier,
        )
        action_ns = core.action_ns
        counter_ns = core.counter_update_ns
        extract = _make_extractor(node.match_fields)
        lookup = runtime.engine.lookup
        hit_key = cache_counter(name, True)
        miss_key = cache_counter(name, False)
        hit_fn = self._resolve(info.hit_next) if info else None
        miss_fn = self._resolve(info.miss_next) if info else None
        record_names = (
            frozenset(info.covers) if info else frozenset((name,))
        )
        actions = node.actions
        bump = self._counter_bank.bump
        commit_open = self._commit_open
        make_runner = self._make_runner
        plans: dict[int, tuple] = {}

        def step(ctx: ReplayContext):
            recordings = ctx.recordings
            if recordings:
                commit_open(ctx, name)
            busy = ctx.busy
            prev = ctx.prev
            if prev is not pipeline:
                if prev is not None:
                    busy[pool] += migration_ns
                    ctx.migrations += 1
                ctx.prev = pipeline
            busy[pool] += match_ns
            ctx.used[pool] = True
            ctx.path.append(name)
            packet = ctx.packet
            entry = lookup(extract(packet))
            if entry is None:
                if ctx.sampled:
                    bump(miss_key, packet.size_bytes)
                    busy[pool] += counter_ns
                return miss_fn
            plan = plans.get(entry.entry_id)
            if plan is None:
                bound = bind_action(
                    actions[entry.action_name], entry.action_data
                )
                plan = plans[entry.entry_id] = (
                    make_runner(bound, pool, action_ns),
                    bound,
                )
            if ctx.sampled:
                bump(hit_key, packet.size_bytes)
                busy[pool] += counter_ns
            runner, bound = plan
            runner(ctx, packet)
            if recordings:
                _record(recordings, bound, record_names)
            if packet.dropped:
                return None
            return hit_fn

        return step

    def _compile_plain(self, node: TableNode) -> StepFn:
        name = node.name
        pipeline, pool, core, migration_ns = self._node_consts(node)
        runtime = self._em.runtime_tables[name]
        match_ns = core.match_cost_ns(
            node.worst_match_type,
            runtime.memory_accesses,
            node.memory_tier,
        )
        action_ns = core.action_ns
        counter_ns = core.counter_update_ns
        extract = _make_extractor(node.match_fields)
        lookup = runtime.engine.lookup
        record_names = frozenset((name,))
        actions = node.actions
        next_fns = {
            action_name: self._resolve(next_name)
            for action_name, next_name in node.next_map.items()
        }
        bump = self._counter_bank.bump
        commit_open = self._commit_open
        make_runner = self._make_runner

        default_action = actions[node.default_action]
        default_bound = bind_action(default_action, ())
        default_plan = (
            make_runner(default_bound, pool, action_ns),
            action_counter(name, default_action.name),
            next_fns[default_action.name],
            default_bound,
        )
        plans: dict[int, tuple] = {}

        def step(ctx: ReplayContext):
            recordings = ctx.recordings
            if recordings:
                commit_open(ctx, name)
            busy = ctx.busy
            prev = ctx.prev
            if prev is not pipeline:
                if prev is not None:
                    busy[pool] += migration_ns
                    ctx.migrations += 1
                ctx.prev = pipeline
            busy[pool] += match_ns
            ctx.used[pool] = True
            ctx.path.append(name)
            packet = ctx.packet
            entry = lookup(extract(packet))
            if entry is None:
                plan = default_plan
            else:
                plan = plans.get(entry.entry_id)
                if plan is None:
                    action = actions[entry.action_name]
                    bound = bind_action(action, entry.action_data)
                    plan = plans[entry.entry_id] = (
                        make_runner(bound, pool, action_ns),
                        action_counter(name, action.name),
                        next_fns[action.name],
                        bound,
                    )
            runner, counter_key, next_fn, bound = plan
            if ctx.sampled:
                bump(counter_key, packet.size_bytes)
                busy[pool] += counter_ns
            runner(ctx, packet)
            if recordings:
                _record(recordings, bound, record_names)
            if packet.dropped:
                return None
            return next_fn

        return step

    def _compile_native(self) -> Optional[Callable]:
        """Whole-program native-cache pre-step (Agilio CX model)."""
        em = self._em
        if em.native_cache is None or em.program.root is None:
            return None
        entry_pipeline = em._pipeline_map[em.program.root]
        pool = _pool_index(entry_pipeline)
        core = em.target.core(entry_pipeline)
        lookup_ns = core.lookup_ns
        action_ns = core.action_ns
        extract = _make_extractor(FIVE_TUPLE)
        native_lookup = em.native_cache.lookup
        explicit_counters = em.explicit_counters
        star = {"*"}

        def native_step(ctx: ReplayContext) -> bool:
            busy = ctx.busy
            busy[pool] += lookup_ns
            ctx.used[pool] = True
            packet = ctx.packet
            key = extract(packet)
            effect = native_lookup(key)
            if effect is not None:
                for op, args in effect:
                    busy[pool] += action_ns
                    apply_primitive(packet, op, args, explicit_counters)
                return True
            ctx.recordings.append(
                _CacheRecording("__native__", key, star, hit_next=None)
            )
            return False

        return native_step

    # -- cache recording ---------------------------------------------------

    def _commit_open(self, ctx: ReplayContext, node_name: str) -> None:
        """Commit recordings whose ``hit_next`` is the arriving node."""
        commit = self._em._commit_recording
        insert_charge = self._insert_charge
        root_charge = self._root_charge
        for recording in ctx.recordings:
            if not recording.finished and recording.hit_next == node_name:
                if commit(recording):
                    pool, insert_ns = insert_charge.get(
                        recording.cache_name, root_charge
                    )
                    ctx.busy[pool] += insert_ns
                    ctx.used[pool] = True

    def _finalize(self, ctx: ReplayContext) -> None:
        recordings = ctx.recordings
        if not recordings:
            return
        commit = self._em._commit_recording
        insert_charge = self._insert_charge
        root_charge = self._root_charge
        busy = ctx.busy
        used = ctx.used
        for recording in recordings:
            if not recording.finished and commit(recording):
                pool, insert_ns = insert_charge.get(
                    recording.cache_name, root_charge
                )
                busy[pool] += insert_ns
                used[pool] = True

    # -- replay ------------------------------------------------------------

    def _begin_packet(self) -> bool:
        if self._instrument:
            return self._counter_bank.begin_packet()
        return False

    def _run(self, packet: Packet) -> ReplayContext:
        """Drive one packet through the compiled program."""
        ctx = self._ctx
        ctx.sampled = self._begin_packet()
        ctx.packet = packet
        busy = ctx.busy
        busy[0] = 0.0
        busy[1] = 0.0
        used = ctx.used
        used[0] = False
        used[1] = False
        ctx.path.clear()
        ctx.migrations = 0
        ctx.recordings.clear()
        ctx.prev = None

        native = self._native_fn
        if native is not None and native(ctx):
            return ctx  # served from the native cache
        fn = self._root_fn
        max_steps = self._max_steps
        steps = 0
        while fn is not None:
            steps += 1
            if steps > max_steps:
                raise EmulationError(
                    f"Packet exceeded {max_steps} steps; "
                    f"program {self._program_name!r} likely has a cycle"
                )
            fn = fn(ctx)
        self._finalize(ctx)
        return ctx

    def replay_one(
        self, packet: Packet, into: Optional[PacketResult] = None
    ) -> PacketResult:
        """Process one packet; bit-identical to ``process()``.

        Pass ``into`` (e.g. from a :class:`~repro.nic.stats.
        PacketResultPool`) to fill a recycled result instead of
        allocating one.
        """
        tracer = self._tracer
        if tracer is not None:
            trace = tracer.try_begin(self._em.clock.now_s)
            if trace is not None:
                # Traced packets run through the interpreter, which is
                # bit-identical to this engine (differential contract),
                # so tracing can't perturb state or results.
                result = self._em.process(packet, trace=trace)
                if into is None:
                    return result
                into.latency_ns = result.latency_ns
                into.dropped = result.dropped
                into.egress_port = result.egress_port
                into.migrations = result.migrations
                into.busy_ns = result.busy_ns
                into.path = result.path
                return into
        if self._root_fn is None:
            self._begin_packet()
            if into is None:
                return PacketResult(0.0, False, None, 0, {}, ())
            into.latency_ns = 0.0
            into.dropped = False
            into.egress_port = None
            into.migrations = 0
            into.busy_ns = {}
            into.path = ()
            return into
        ctx = self._run(packet)
        busy_list = ctx.busy
        used = ctx.used
        busy: dict[Pipeline, float] = {}
        latency = 0.0
        if used[0]:
            busy[_ASIC] = busy_list[0]
            latency += busy_list[0]
        if used[1]:
            busy[_CPU] = busy_list[1]
            latency += busy_list[1]
        if into is None:
            return PacketResult(
                latency,
                packet.dropped,
                packet.egress_port,
                ctx.migrations,
                busy,
                tuple(ctx.path),
            )
        into.latency_ns = latency
        into.dropped = packet.dropped
        into.egress_port = packet.egress_port
        into.migrations = ctx.migrations
        into.busy_ns = busy
        into.path = tuple(ctx.path)
        return into

    def replay_batch(
        self,
        packets: Iterable[Packet],
        stats: RunStats,
        dt_s: float = 0.0,
        timestamps: Optional[Iterable[float]] = None,
    ) -> None:
        """Replay packets straight into ``stats`` (no result objects).

        ``timestamps``, when given, sets the sim clock to the provided
        absolute time before each packet instead of advancing it by
        ``dt_s``. Sharded replay uses this so every worker observes the
        same per-packet clock the single-core engine would (cache
        insertion rate limiting is clock-driven).
        """
        if self._tracer is not None:
            # One branch per batch: the traced loop lives elsewhere so
            # the untraced loops below stay exactly as fast as before.
            self._replay_batch_traced(packets, stats, dt_s, timestamps)
            return
        clock = self._em.clock
        record = stats.record_fast
        if timestamps is not None:
            packets = zip(packets, timestamps)
        if self._root_fn is None:
            if timestamps is not None:
                for packet, now_s in packets:
                    clock.now_s = now_s
                    self._begin_packet()
                    record(0.0, packet.size_bytes, False, 0, None, None)
                return
            for packet in packets:
                if dt_s:
                    clock.advance(dt_s)
                self._begin_packet()
                record(0.0, packet.size_bytes, False, 0, None, None)
            return
        run = self._run
        if timestamps is not None:
            for packet, now_s in packets:
                clock.now_s = now_s
                ctx = run(packet)
                busy = ctx.busy
                used = ctx.used
                asic = busy[0] if used[0] else None
                cpu = busy[1] if used[1] else None
                latency = 0.0
                if asic is not None:
                    latency += asic
                if cpu is not None:
                    latency += cpu
                record(
                    latency,
                    packet.size_bytes,
                    packet.dropped,
                    ctx.migrations,
                    asic,
                    cpu,
                )
            return
        for packet in packets:
            if dt_s:
                clock.advance(dt_s)
            ctx = run(packet)
            busy = ctx.busy
            used = ctx.used
            asic = busy[0] if used[0] else None
            cpu = busy[1] if used[1] else None
            latency = 0.0
            if asic is not None:
                latency += asic
            if cpu is not None:
                latency += cpu
            record(
                latency,
                packet.size_bytes,
                packet.dropped,
                ctx.migrations,
                asic,
                cpu,
            )

    def _replay_batch_traced(
        self,
        packets: Iterable[Packet],
        stats: RunStats,
        dt_s: float = 0.0,
        timestamps: Optional[Iterable[float]] = None,
    ) -> None:
        """Batch loop with a tracer attached: sample before each packet.

        Sampled packets run through the interpreter with the trace
        pre-begun (bit-identical by the differential contract, and
        ``RunStats.record`` lands the same samples ``record_fast``
        would), so tracing never perturbs stats, counters or cache
        state; every other packet takes the compiled path.
        """
        em = self._em
        clock = em.clock
        tracer = self._tracer
        record = stats.record_fast
        run = self._run
        root_missing = self._root_fn is None
        if timestamps is not None:
            pairs = zip(packets, timestamps)
        else:
            pairs = ((packet, None) for packet in packets)
        for packet, now_s in pairs:
            if now_s is not None:
                clock.now_s = now_s
            elif dt_s:
                clock.advance(dt_s)
            trace = tracer.try_begin(clock.now_s)
            if trace is not None:
                result = em.process(packet, trace=trace)
                stats.record(result, packet.size_bytes)
                continue
            if root_missing:
                self._begin_packet()
                record(0.0, packet.size_bytes, False, 0, None, None)
                continue
            ctx = run(packet)
            busy = ctx.busy
            used = ctx.used
            asic = busy[0] if used[0] else None
            cpu = busy[1] if used[1] else None
            latency = 0.0
            if asic is not None:
                latency += asic
            if cpu is not None:
                latency += cpu
            record(
                latency,
                packet.size_bytes,
                packet.dropped,
                ctx.migrations,
                asic,
                cpu,
            )
