"""Wire-format packet parsing and serialization.

The emulator mostly works on pre-parsed field maps, but a SmartNIC's
first pipeline stage is a parser: this module implements the
Ethernet(+802.1Q)/IPv4/TCP|UDP subset the evaluation programs match on,
in both directions (bytes -> :class:`Packet` and back). Round-tripping
is property-tested.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import EmulationError
from repro.nic.packet import DEFAULT_PACKET_BYTES, Packet

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100
PROTO_TCP = 6
PROTO_UDP = 17

_ETH = struct.Struct("!6s6sH")
_VLAN = struct.Struct("!HH")
_IPV4 = struct.Struct("!BBHHHBBH4s4s")
_PORTS = struct.Struct("!HH")

ETH_HEADER_LEN = _ETH.size  # 14
VLAN_HEADER_LEN = _VLAN.size  # 4
IPV4_HEADER_LEN = 20
MIN_L4_LEN = 4


def _mac_to_int(raw: bytes) -> int:
    return int.from_bytes(raw, "big")


def _int_to_mac(value: int) -> bytes:
    return (value & 0xFFFFFFFFFFFF).to_bytes(6, "big")


def parse_packet(data: bytes) -> Packet:
    """Parse an Ethernet frame into a :class:`Packet`.

    Raises :class:`EmulationError` on truncated or unsupported frames
    (only IPv4 with TCP/UDP payloads carry L4 fields; other ethertypes
    stop after L2).
    """
    if len(data) < ETH_HEADER_LEN:
        raise EmulationError(
            f"Frame too short for Ethernet: {len(data)} bytes"
        )
    dst, src, ethertype = _ETH.unpack_from(data, 0)
    packet = Packet(size_bytes=max(len(data), 1))
    packet.set("eth.dst", _mac_to_int(dst))
    packet.set("eth.src", _mac_to_int(src))
    offset = ETH_HEADER_LEN

    if ethertype == ETHERTYPE_VLAN:
        if len(data) < offset + VLAN_HEADER_LEN:
            raise EmulationError("Frame truncated inside 802.1Q tag")
        tci, ethertype = _VLAN.unpack_from(data, offset)
        packet.set("vlan.id", tci & 0x0FFF)
        packet.set("vlan.pcp", tci >> 13)
        offset += VLAN_HEADER_LEN
    packet.set("eth.type", ethertype)

    if ethertype != ETHERTYPE_IPV4:
        return packet

    if len(data) < offset + IPV4_HEADER_LEN:
        raise EmulationError("Frame truncated inside IPv4 header")
    (
        version_ihl,
        tos,
        _total_len,
        _ident,
        _flags_frag,
        ttl,
        proto,
        _checksum,
        src_ip,
        dst_ip,
    ) = _IPV4.unpack_from(data, offset)
    version = version_ihl >> 4
    if version != 4:
        raise EmulationError(f"Not an IPv4 packet (version {version})")
    ihl_bytes = (version_ihl & 0x0F) * 4
    if ihl_bytes < IPV4_HEADER_LEN:
        raise EmulationError(f"Bad IPv4 IHL: {ihl_bytes} bytes")
    packet.set("ipv4.tos", tos)
    packet.set("ipv4.ttl", ttl)
    packet.set("ipv4.proto", proto)
    packet.set("ipv4.src", int.from_bytes(src_ip, "big"))
    packet.set("ipv4.dst", int.from_bytes(dst_ip, "big"))
    offset += ihl_bytes

    if proto in (PROTO_TCP, PROTO_UDP):
        if len(data) < offset + MIN_L4_LEN:
            raise EmulationError("Frame truncated inside L4 ports")
        sport, dport = _PORTS.unpack_from(data, offset)
        packet.set("l4.sport", sport)
        packet.set("l4.dport", dport)
    return packet


def serialize_packet(
    packet: Packet, pad_to: Optional[int] = None
) -> bytes:
    """Serialize a packet's parsed fields back to an Ethernet frame.

    Headers present in the field map are emitted; the payload is zero
    padding up to ``pad_to`` (default: the packet's ``size_bytes``).
    """
    get = packet.get
    parts: list[bytes] = []
    ethertype = get("eth.type") or 0
    has_vlan = get("vlan.id") is not None
    parts.append(
        _ETH.pack(
            _int_to_mac(get("eth.dst") or 0),
            _int_to_mac(get("eth.src") or 0),
            ETHERTYPE_VLAN if has_vlan else ethertype,
        )
    )
    if has_vlan:
        tci = ((get("vlan.pcp") or 0) << 13) | (
            (get("vlan.id") or 0) & 0x0FFF
        )
        parts.append(_VLAN.pack(tci, ethertype))
    if ethertype == ETHERTYPE_IPV4 and get("ipv4.src") is not None:
        proto = get("ipv4.proto") or 0
        has_l4 = proto in (PROTO_TCP, PROTO_UDP) and (
            get("l4.sport") is not None
        )
        total_len = IPV4_HEADER_LEN + (MIN_L4_LEN if has_l4 else 0)
        parts.append(
            _IPV4.pack(
                (4 << 4) | 5,
                get("ipv4.tos") or 0,
                total_len,
                0,
                0,
                get("ipv4.ttl") or 64,
                proto,
                0,  # checksum left zero (the emulator never checks it)
                ((get("ipv4.src") or 0) & 0xFFFFFFFF).to_bytes(4, "big"),
                ((get("ipv4.dst") or 0) & 0xFFFFFFFF).to_bytes(4, "big"),
            )
        )
        if has_l4:
            parts.append(
                _PORTS.pack(
                    (get("l4.sport") or 0) & 0xFFFF,
                    (get("l4.dport") or 0) & 0xFFFF,
                )
            )
    frame = b"".join(parts)
    target = pad_to if pad_to is not None else max(
        packet.size_bytes, len(frame)
    )
    if target < len(frame):
        raise EmulationError(
            f"pad_to {target} smaller than headers ({len(frame)})"
        )
    return frame + b"\x00" * (target - len(frame))


def parse_stream(frames: list[bytes]) -> list[Packet]:
    """Parse a batch of frames (drops unparseable ones silently is NOT
    what a NIC does — errors propagate)."""
    return [parse_packet(frame) for frame in frames]
