"""Runtime state of one table: its entries in a match engine."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import TableFullError, UnknownEntryError
from repro.ir.actions import Action
from repro.ir.entries import TableEntry
from repro.ir.tables import TableNode
from repro.nic.match_engine import MatchEngine, build_engine
from repro.nic.packet import Packet


class LookupResult:
    """Outcome of a table lookup: the chosen action and its binding."""

    __slots__ = ("entry", "action", "action_data", "hit")

    def __init__(
        self,
        entry: Optional[TableEntry],
        action: Action,
        action_data: tuple,
        hit: bool,
    ):
        self.entry = entry
        self.action = action
        self.action_data = action_data
        self.hit = hit


class RuntimeTable:
    """A table node bound to its installed entries."""

    def __init__(
        self, node: TableNode, entries: Iterable[TableEntry] = ()
    ):
        self.node = node
        self.engine: MatchEngine = build_engine(node.keys)
        #: Bumped on every entry mutation; the fast-path replay engine
        #: uses it to detect that its compiled state went stale.
        self.version = 0
        for entry in entries:
            self.insert(entry)

    @property
    def name(self) -> str:
        return self.node.name

    def __len__(self) -> int:
        return len(self.engine)

    # -- entry management ------------------------------------------------------

    def insert(self, entry: TableEntry) -> None:
        if len(self.engine) >= self.node.size:
            raise TableFullError(
                f"Table {self.name!r} is full ({self.node.size} entries)"
            )
        if entry.action_name not in self.node.actions:
            raise UnknownEntryError(
                f"Table {self.name!r} has no action "
                f"{entry.action_name!r}"
            )
        self.engine.add(entry)
        self.version += 1

    def delete(self, entry_id: int) -> TableEntry:
        entry = self.engine.remove(entry_id)
        self.version += 1
        return entry

    def modify(self, entry_id: int, new_entry: TableEntry) -> None:
        self.engine.remove(entry_id)
        self.engine.add(new_entry)
        self.version += 1

    def clear(self) -> None:
        self.engine.clear()
        self.version += 1

    def entries(self) -> list[TableEntry]:
        return self.engine.entries()

    # -- data path ---------------------------------------------------------------

    def lookup(self, packet: Packet) -> LookupResult:
        values = packet.key(self.node.match_fields)
        entry = self.engine.lookup(values)
        if entry is None:
            action = self.node.actions[self.node.default_action]
            return LookupResult(None, action, (), hit=False)
        action = self.node.actions[entry.action_name]
        return LookupResult(entry, action, entry.action_data, hit=True)

    # -- accounting ----------------------------------------------------------------

    @property
    def memory_accesses(self) -> int:
        """The cost-model ``m`` derived from the installed entries."""
        return self.engine.memory_accesses

    @property
    def memory_bytes(self) -> int:
        """Paper's M(v): entry bytes scaled by the hash-table count m."""
        total = sum(e.size_bytes for e in self.engine.entries())
        return total * self.memory_accesses
