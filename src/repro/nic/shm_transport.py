"""Zero-copy shared-memory transport for the sharded replay engine.

The pipe transport (PR 2) pickles every packet batch into a worker's
command pipe and unpickles it on the other side: at the packet rates the
sharded engine targets, those copies and syscalls *are* the workload —
``BENCH_sharded.json``'s wall-clock throughput fell below single-core
while its modeled speedup said 2.79x. This module removes the
serialization tax: per-shard **single-producer/single-consumer ring
buffers** in ``multiprocessing.shared_memory``, carrying
struct-of-arrays packet batches that the parent writes in place and the
worker reads in place. No per-packet Python objects and no pickle bytes
cross the process boundary on the hot path; pipes remain for the
control plane (broadcasts, supervision, journal replay — see
:mod:`repro.nic.sharding`).

Ring layout (one shared-memory segment per ring)::

    [ control block: 128 B ]  word 0: produced count, word 8: consumed
    [ slot 0: slot_bytes    ]  record headers are 64 B (8 int64 words)
    [ slot 1: slot_bytes    ]
    ...

Records live at ``slot = index % slots``; the ring holds at most
``slots`` uncommitted-to-consumed records, so producer and consumer
never touch the same slot concurrently. A record is *published* by the
producer's single aligned ``produced`` store after its payload and
header are fully written; the consumer additionally validates two
stamps — the record's own index (word 0) and a commit word
(``index ^ COMMIT_MAGIC``, written last) — so a torn or stale slot is
detected (:class:`TornRecordError`) instead of silently decoded.

Batch records are struct-of-arrays: one contiguous ``int64`` row per
packet *field* (a ``(n_fields, n_packets)`` field-major matrix — each
field a contiguous numpy slice, exactly the substrate the columnar
execution tier consumes: :class:`repro.nic.columnar.ColumnBatch.
from_matrix` wraps these views in place, and workers running the
columnar engine replay them with no row -> ``Packet`` materialisation
at all), plus ``int32`` sizes and optional ``float64`` timestamps. Field names travel as one small utf-8 blob per batch (not
per packet) and are memoized by the consumer. Result records flow the
other way on a second ring: per-packet latency/egress/dropped columns
so the parent can observe outcomes and progress without a single
pickled reply.

Cleanup: every segment created here is registered in a process-local
table and unlinked both on :meth:`ShmRing.close` and from an ``atexit``
hook, so an interrupted run (Ctrl-C mid-replay, a CI job killed between
steps) does not leak ``/dev/shm`` segments. Forked workers inherit the
mapping but never unlink — the hook is a no-op outside the creating
process.
"""

from __future__ import annotations

import atexit
import os
from multiprocessing import shared_memory
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import EmulationError
from repro.nic.packet import Packet

__all__ = [
    "BATCH_RECORD",
    "RESULT_RECORD",
    "ShardChannel",
    "ShmRing",
    "TornRecordError",
    "batch_record_bytes",
    "data_slot_bytes",
    "result_slot_bytes",
    "soa_encode",
]

#: Record kinds (header word 1).
BATCH_RECORD = 1
RESULT_RECORD = 2

#: XOR'd into a record's index to form its commit stamp (header word 7).
#: Any value with high bits set works; it only needs to make a stale or
#: half-written header fail the ``commit == index ^ MAGIC`` check.
COMMIT_MAGIC = 0x5A5AC3C3A5A53C3C

#: Ring control block size (producer and consumer words a cache line
#: apart) and per-record header size.
CTRL_BYTES = 128
RECORD_HEADER_BYTES = 64

#: Default ring depth: batches in flight per shard before the producer
#: stalls. Deep enough to keep a worker fed across scheduling jitter,
#: shallow enough that backpressure reaches the dispatcher quickly.
DEFAULT_RING_SLOTS = 8

#: Sizing assumptions for :func:`data_slot_bytes`. A batch whose
#: geometry exceeds the slot falls back to the pipe (counted, loud) —
#: the ring never rejects traffic, it just stops being the fast path.
DEFAULT_MAX_FIELDS = 32
NAMES_BUDGET_BYTES = 512


class TornRecordError(EmulationError):
    """A ring record failed its integrity stamps (torn or stale write)."""


def _align8(n: int) -> int:
    return (n + 7) & ~7


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------


def batch_record_bytes(
    n_packets: int,
    n_fields: int,
    names_len: int,
    timestamps: bool,
) -> int:
    """Payload bytes one SoA batch record needs (excluding the header)."""
    total = _align8(names_len)
    total += 8 * n_fields * n_packets  # field-major int64 value matrix
    total += _align8(4 * n_packets)  # int32 sizes
    if timestamps:
        total += 8 * n_packets  # float64 absolute clock times
    return total


def data_slot_bytes(
    batch: int,
    max_fields: int = DEFAULT_MAX_FIELDS,
    names_budget: int = NAMES_BUDGET_BYTES,
) -> int:
    """Slot size fitting a ``batch``-packet SoA record with headroom."""
    payload = batch_record_bytes(batch, max_fields, names_budget, True)
    return RECORD_HEADER_BYTES + _align8(payload)


def result_slot_bytes(batch: int) -> int:
    """Slot size for one batch's per-packet outcome columns."""
    payload = 8 * batch + _align8(4 * batch) + _align8(batch)
    return RECORD_HEADER_BYTES + _align8(payload)


# ---------------------------------------------------------------------------
# Segment cleanup registry
# ---------------------------------------------------------------------------

#: Segments created by this process, unlinked on close or at exit.
_CREATED: dict[str, shared_memory.SharedMemory] = {}
_CREATOR_PID = os.getpid()
_ATEXIT_ARMED = False


def _cleanup_segments() -> None:
    """Unlink every segment this process created and never closed.

    Forked children inherit this hook (and the ``_CREATED`` table) but
    must not unlink segments the parent still uses, hence the pid guard.
    """
    if os.getpid() != _CREATOR_PID:
        return
    for segment in list(_CREATED.values()):
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass
    _CREATED.clear()


def _register_segment(segment: shared_memory.SharedMemory) -> None:
    global _ATEXIT_ARMED
    if not _ATEXIT_ARMED:
        atexit.register(_cleanup_segments)
        _ATEXIT_ARMED = True
    _CREATED[segment.name] = segment


# ---------------------------------------------------------------------------
# The ring
# ---------------------------------------------------------------------------


class RecordView:
    """A zero-copy view of the ring's head record (valid until advance)."""

    __slots__ = ("index", "kind", "meta", "payload")

    def __init__(
        self,
        index: int,
        kind: int,
        meta: tuple[int, int, int, int, int],
        payload: memoryview,
    ):
        self.index = index
        self.kind = kind
        #: Five int64 header words (meaning depends on ``kind``).
        self.meta = meta
        self.payload = payload


class ShmRing:
    """Fixed-slot SPSC record ring over one shared-memory segment.

    Exactly one producer process and one consumer process; with the
    ``fork`` start method both sides use the very same mapping, so a
    push is a header write plus in-place payload stores — no copies, no
    syscalls, no pickling. ``try_push`` returns ``False`` when all
    ``slots`` are occupied (backpressure is the caller's policy);
    ``peek``/``advance`` consume without copying the payload.
    """

    def __init__(
        self,
        slots: int,
        slot_bytes: int,
        *,
        _segment: Optional[shared_memory.SharedMemory] = None,
    ):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if slot_bytes < RECORD_HEADER_BYTES + 8 or slot_bytes % 8:
            raise ValueError(
                "slot_bytes must be a multiple of 8 and leave payload "
                f"room past the {RECORD_HEADER_BYTES}-byte header"
            )
        self.slots = slots
        self.slot_bytes = slot_bytes
        size = CTRL_BYTES + slots * slot_bytes
        if _segment is None:
            _segment = shared_memory.SharedMemory(create=True, size=size)
            _register_segment(_segment)
            # Fresh segments are zero-filled by the kernel; produced ==
            # consumed == 0 and no slot can pass the commit check.
        self._segment = _segment
        self.name = _segment.name
        self._closed = False
        buf = _segment.buf
        self._ctrl = np.ndarray((16,), dtype=np.int64, buffer=buf)
        self._data = buf

    # -- cursors -----------------------------------------------------------

    @property
    def produced(self) -> int:
        return int(self._ctrl[0])

    @property
    def consumed(self) -> int:
        return int(self._ctrl[8])

    def __len__(self) -> int:
        return max(0, self.produced - self.consumed)

    @property
    def free_slots(self) -> int:
        return self.slots - len(self)

    def occupancy(self) -> float:
        """Occupied fraction in [0, 1] (sampled; racy by one record)."""
        return min(1.0, len(self) / self.slots)

    @property
    def payload_capacity(self) -> int:
        return self.slot_bytes - RECORD_HEADER_BYTES

    def _slot(self, index: int) -> memoryview:
        start = CTRL_BYTES + (index % self.slots) * self.slot_bytes
        return self._data[start : start + self.slot_bytes]

    # -- producer ----------------------------------------------------------

    def try_push(
        self,
        kind: int,
        meta: Sequence[int],
        payload_bytes: int,
        writer: Callable[[memoryview], None],
    ) -> bool:
        """Publish one record; ``False`` when the ring is full.

        ``writer`` receives the slot's payload view and must fill the
        first ``payload_bytes`` of it. The record becomes visible to
        the consumer only after the commit stamp and the ``produced``
        store, both of which happen after ``writer`` returns — a
        consumer can never observe a half-written payload through the
        cursor protocol, and the stamps catch corruption that bypasses
        it.
        """
        if self._closed:
            raise EmulationError(f"ring {self.name} is closed")
        if payload_bytes > self.payload_capacity:
            raise ValueError(
                f"record payload {payload_bytes} B exceeds slot "
                f"capacity {self.payload_capacity} B"
            )
        meta5 = tuple(meta)
        if len(meta5) != 5:
            raise ValueError("meta must carry exactly 5 int64 words")
        index = self.produced
        if index - self.consumed >= self.slots:
            return False
        slot = self._slot(index)
        header = np.ndarray(
            (8,), dtype=np.int64, buffer=slot[:RECORD_HEADER_BYTES]
        )
        writer(slot[RECORD_HEADER_BYTES:])
        header[0] = index
        header[1] = kind
        header[2:7] = meta5
        header[7] = index ^ COMMIT_MAGIC
        # The publish: a single aligned 8-byte store.
        self._ctrl[0] = index + 1
        return True

    # -- consumer ----------------------------------------------------------

    def peek(self) -> Optional[RecordView]:
        """The head record without consuming it; ``None`` when empty."""
        if self._closed:
            raise EmulationError(f"ring {self.name} is closed")
        index = self.consumed
        if index >= self.produced:
            return None
        slot = self._slot(index)
        header = np.ndarray(
            (8,), dtype=np.int64, buffer=slot[:RECORD_HEADER_BYTES]
        )
        if int(header[0]) != index or int(header[7]) != (
            index ^ COMMIT_MAGIC
        ):
            raise TornRecordError(
                f"ring {self.name}: record {index} failed integrity "
                f"stamps (saw index {int(header[0])}, commit "
                f"{int(header[7]) ^ COMMIT_MAGIC}); torn write or "
                "stale slot"
            )
        return RecordView(
            index,
            int(header[1]),
            tuple(int(w) for w in header[2:7]),
            slot[RECORD_HEADER_BYTES:],
        )

    def advance(self) -> None:
        """Consume the head record (its views become reusable space)."""
        self._ctrl[8] = self.consumed + 1

    # -- lifecycle ---------------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        """Release the mapping; ``unlink`` destroys the segment.

        Unlink is idempotent and only meaningful in the creating
        process (forked consumers just drop their mapping).
        """
        if self._closed:
            return
        self._closed = True
        # Drop numpy views before closing the mmap or SharedMemory
        # raises BufferError("cannot close exported pointers exist").
        self._ctrl = None
        self._data = None
        _CREATED.pop(self.name, None)
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
        if unlink:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass


# ---------------------------------------------------------------------------
# SoA batch codec
# ---------------------------------------------------------------------------

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def soa_encode(packets: Sequence[Packet]):
    """Struct-of-arrays encode: ``(names, rows, sizes)`` or ``None``.

    Encodable batches are uniform (one header set, no metadata, not
    dropped, no egress) with int64-range values — the same regime as
    :func:`repro.nic.sharding.encode_batch`'s numpy fast path.
    ``rows`` is the packet-major ``(n_packets, n_fields)`` matrix; the
    ring writer transposes it into the field-major slot layout with one
    C-level copy. Returns ``None`` when the batch needs the pipe
    fallback.
    """
    if not packets:
        return None
    first = packets[0]
    names = tuple(first.fields)
    if first.metadata or first.dropped:
        return None
    for packet in packets:
        if (
            packet.metadata
            or packet.dropped
            or packet.egress_port is not None
            or tuple(packet.fields) != names
        ):
            return None
    try:
        rows = np.array(
            [list(p.fields.values()) for p in packets], dtype=np.int64
        )
    except (OverflowError, ValueError):
        return None
    sizes = np.array([p.size_bytes for p in packets], dtype=np.int32)
    return names, rows, sizes


def _names_blob(names: tuple[str, ...]) -> bytes:
    return "\x00".join(names).encode("utf-8")


def write_batch_record(
    ring: ShmRing,
    names_blob: bytes,
    rows: np.ndarray,
    sizes: np.ndarray,
    timestamps: Optional[Sequence[float]],
    pipe_watermark: int,
) -> bool:
    """Push one SoA batch; ``False`` when the ring is full.

    Raises ``ValueError`` when the record cannot fit a slot at all —
    callers check :func:`batch_record_bytes` against
    ``ring.payload_capacity`` first and fall back to the pipe.
    """
    n_packets, n_fields = rows.shape
    ts = (
        np.asarray(timestamps, dtype=np.float64)
        if timestamps is not None
        else None
    )
    payload_bytes = batch_record_bytes(
        n_packets, n_fields, len(names_blob), ts is not None
    )

    def writer(payload: memoryview) -> None:
        offset = 0
        payload[: len(names_blob)] = names_blob
        offset += _align8(len(names_blob))
        values = np.ndarray(
            (n_fields, n_packets),
            dtype=np.int64,
            buffer=payload[offset : offset + 8 * n_fields * n_packets],
        )
        # One C-level transpose copy: each field lands as a contiguous
        # int64 row the consumer (or a columnar engine) slices in place.
        values[:] = rows.T
        offset += 8 * n_fields * n_packets
        size_view = np.ndarray(
            (n_packets,),
            dtype=np.int32,
            buffer=payload[offset : offset + 4 * n_packets],
        )
        size_view[:] = sizes
        offset += _align8(4 * n_packets)
        if ts is not None:
            ts_view = np.ndarray(
                (n_packets,),
                dtype=np.float64,
                buffer=payload[offset : offset + 8 * n_packets],
            )
            ts_view[:] = ts

    meta = (
        n_packets,
        n_fields,
        pipe_watermark,
        1 if ts is not None else 0,
        len(names_blob),
    )
    return ring.try_push(BATCH_RECORD, meta, payload_bytes, writer)


def read_batch_record(record: RecordView):
    """In-place views of a batch record's columns.

    Returns ``(pipe_watermark, names_blob, values, sizes, timestamps)``
    where ``values`` is the field-major ``(n_fields, n_packets)`` int64
    matrix — every row a contiguous slice of the ring — and
    ``timestamps`` is ``None`` when the batch was unpaced. Views stay
    valid until ``ring.advance()``.
    """
    n_packets, n_fields, pipe_watermark, has_ts, names_len = record.meta
    payload = record.payload
    offset = 0
    names_blob = bytes(payload[:names_len])
    offset += _align8(names_len)
    values = np.ndarray(
        (n_fields, n_packets),
        dtype=np.int64,
        buffer=payload[offset : offset + 8 * n_fields * n_packets],
    )
    offset += 8 * n_fields * n_packets
    sizes = np.ndarray(
        (n_packets,),
        dtype=np.int32,
        buffer=payload[offset : offset + 4 * n_packets],
    )
    offset += _align8(4 * n_packets)
    timestamps = None
    if has_ts:
        timestamps = np.ndarray(
            (n_packets,),
            dtype=np.float64,
            buffer=payload[offset : offset + 8 * n_packets],
        )
    return pipe_watermark, names_blob, values, sizes, timestamps


# ---------------------------------------------------------------------------
# Result records (worker -> parent outcome columns)
# ---------------------------------------------------------------------------


def write_result_record(
    ring: ShmRing,
    batch_index: int,
    latencies_ns: Iterable[float],
    egress_ports: Iterable[int],
    dropped: Iterable[bool],
    n_packets: int,
) -> bool:
    """Push one batch's per-packet outcomes; ``False`` when full."""
    lat = np.fromiter(latencies_ns, dtype=np.float64, count=n_packets)
    egress = np.fromiter(
        (-1 if p is None else p for p in egress_ports),
        dtype=np.int32,
        count=n_packets,
    )
    drop = np.fromiter(dropped, dtype=np.uint8, count=n_packets)
    payload_bytes = (
        8 * n_packets + _align8(4 * n_packets) + _align8(n_packets)
    )

    def writer(payload: memoryview) -> None:
        offset = 0
        lat_view = np.ndarray(
            (n_packets,),
            dtype=np.float64,
            buffer=payload[offset : offset + 8 * n_packets],
        )
        lat_view[:] = lat
        offset += 8 * n_packets
        egress_view = np.ndarray(
            (n_packets,),
            dtype=np.int32,
            buffer=payload[offset : offset + 4 * n_packets],
        )
        egress_view[:] = egress
        offset += _align8(4 * n_packets)
        drop_view = np.ndarray(
            (n_packets,),
            dtype=np.uint8,
            buffer=payload[offset : offset + n_packets],
        )
        drop_view[:] = drop

    meta = (n_packets, batch_index, 0, 0, int(drop.sum()))
    return ring.try_push(RESULT_RECORD, meta, payload_bytes, writer)


def read_result_record(record: RecordView):
    """``(batch_index, latencies, egress, dropped, n_dropped)`` views."""
    n_packets, batch_index, _r0, _r1, n_dropped = record.meta
    payload = record.payload
    offset = 0
    lat = np.ndarray(
        (n_packets,),
        dtype=np.float64,
        buffer=payload[offset : offset + 8 * n_packets],
    )
    offset += 8 * n_packets
    egress = np.ndarray(
        (n_packets,),
        dtype=np.int32,
        buffer=payload[offset : offset + 4 * n_packets],
    )
    offset += _align8(4 * n_packets)
    drop = np.ndarray(
        (n_packets,),
        dtype=np.uint8,
        buffer=payload[offset : offset + n_packets],
    )
    return batch_index, lat, egress, drop, n_dropped


# ---------------------------------------------------------------------------
# Per-shard channel
# ---------------------------------------------------------------------------


class ShardChannel:
    """One shard's data ring (parent -> worker) plus result ring back.

    Created by the parent *before* the worker forks, so both processes
    map the same segments with no attach handshake. The result ring is
    deeper than the data ring: the worker acknowledges every batch (one
    result record each, including pipe-fallback batches) and must not
    stall just because the parent is between drain opportunities.
    """

    def __init__(
        self,
        batch: int,
        slots: int = DEFAULT_RING_SLOTS,
        max_fields: int = DEFAULT_MAX_FIELDS,
    ):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.batch = batch
        self.max_fields = max_fields
        self.data = ShmRing(slots, data_slot_bytes(batch, max_fields))
        self.results = ShmRing(2 * slots, result_slot_bytes(batch))
        self._names_cache: dict[tuple[str, ...], bytes] = {}

    # -- parent side -------------------------------------------------------

    def batch_fits(
        self, n_packets: int, n_fields: int, names_len: int
    ) -> bool:
        return (
            batch_record_bytes(n_packets, n_fields, names_len, True)
            <= self.data.payload_capacity
        )

    def names_blob(self, names: tuple[str, ...]) -> bytes:
        blob = self._names_cache.get(names)
        if blob is None:
            blob = self._names_cache[names] = _names_blob(names)
        return blob

    def try_push_batch(
        self,
        names: tuple[str, ...],
        rows: np.ndarray,
        sizes: np.ndarray,
        timestamps: Optional[Sequence[float]],
        pipe_watermark: int,
    ) -> bool:
        return write_batch_record(
            self.data,
            self.names_blob(names),
            rows,
            sizes,
            timestamps,
            pipe_watermark,
        )

    def drain_results(self, sink=None) -> tuple[int, int]:
        """Consume ready result records; ``(batches, packets)`` counts.

        ``sink(batch_index, latencies, egress, dropped)`` — when given —
        receives *copies* of the outcome columns (the views die with
        ``advance``).
        """
        batches = 0
        packets = 0
        while True:
            record = self.results.peek()
            if record is None:
                return batches, packets
            index, lat, egress, drop, _nd = read_result_record(record)
            if sink is not None:
                sink(index, lat.copy(), egress.copy(), drop.copy())
            batches += 1
            packets += record.meta[0]
            self.results.advance()

    def close(self, unlink: bool = True) -> None:
        self.data.close(unlink=unlink)
        self.results.close(unlink=unlink)


def decode_names(blob: bytes) -> tuple[str, ...]:
    """Field-name tuple from a batch record's name blob."""
    if not blob:
        return ()
    return tuple(blob.decode("utf-8").split("\x00"))
