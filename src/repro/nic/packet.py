"""Packets as processed by the SmartNIC emulator.

Headers are flattened to ``"header.field" -> int`` maps; metadata lives in
a parallel namespace addressed as ``"meta.<key>"`` (this mirrors how the
paper's migration mechanism piggybacks ``next_tab_id`` metadata on the
packet between ASIC and CPU cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Default payload size used by every experiment in the paper (§5.1).
DEFAULT_PACKET_BYTES = 512

#: Metadata key used by navigation/migration tables (§3.2.4).
NEXT_TAB_ID = "meta.next_tab_id"

#: Canonical five-tuple fields, used by whole-program flow caches.
FIVE_TUPLE = (
    "ipv4.src",
    "ipv4.dst",
    "ipv4.proto",
    "l4.sport",
    "l4.dport",
)


@dataclass
class Packet:
    """A mutable packet traversing the emulator."""

    fields: dict[str, int] = field(default_factory=dict)
    metadata: dict[str, int] = field(default_factory=dict)
    size_bytes: int = DEFAULT_PACKET_BYTES
    dropped: bool = False
    egress_port: Optional[int] = None

    def get(self, name: str) -> Optional[int]:
        """Read a header or metadata field; None if absent."""
        if name.startswith("meta."):
            return self.metadata.get(name)
        return self.fields.get(name)

    def set(self, name: str, value: int) -> None:
        if name.startswith("meta."):
            self.metadata[name] = value
        else:
            self.fields[name] = value

    def add(self, name: str, delta: int) -> None:
        current = self.get(name) or 0
        self.set(name, current + delta)

    def key(self, field_names: tuple[str, ...]) -> tuple[int, ...]:
        """Tuple of field values (absent fields read as 0) for cache keys."""
        return tuple(self.get(name) or 0 for name in field_names)

    def flow_key(self) -> tuple[int, ...]:
        return self.key(FIVE_TUPLE)

    def clone(self) -> "Packet":
        return Packet(
            fields=dict(self.fields),
            metadata=dict(self.metadata),
            size_bytes=self.size_bytes,
            dropped=self.dropped,
            egress_port=self.egress_port,
        )

    def reset(self, size_bytes: int = DEFAULT_PACKET_BYTES) -> "Packet":
        """Return this packet to a blank state (for pooled reuse)."""
        self.fields.clear()
        self.metadata.clear()
        self.size_bytes = size_bytes
        self.dropped = False
        self.egress_port = None
        return self


class PacketPool:
    """Free-list of reusable :class:`Packet` objects.

    High-rate replay allocates one packet (plus two dicts) per stimulus;
    the pool recycles them so the steady-state loop allocates nothing.
    ``acquire`` hands out a blank packet, ``release`` takes it back.
    """

    def __init__(self, prealloc: int = 0):
        self._free: list[Packet] = [Packet() for _ in range(prealloc)]
        self.allocated = len(self._free)
        self.reused = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, size_bytes: int = DEFAULT_PACKET_BYTES) -> Packet:
        if self._free:
            self.reused += 1
            return self._free.pop().reset(size_bytes)
        self.allocated += 1
        return Packet(size_bytes=size_bytes)

    def release(self, packet: Packet) -> None:
        self._free.append(packet)


def ipv4(a: int, b: int, c: int, d: int) -> int:
    """Build a 32-bit address from dotted-quad octets."""
    return (a << 24) | (b << 16) | (c << 8) | d


def make_packet(
    src: int = ipv4(10, 0, 0, 1),
    dst: int = ipv4(192, 168, 0, 1),
    proto: int = 6,
    sport: int = 1234,
    dport: int = 80,
    size_bytes: int = DEFAULT_PACKET_BYTES,
    extra: Optional[dict[str, int]] = None,
) -> Packet:
    """A TCP/IPv4-shaped packet with the canonical five-tuple fields."""
    fields = {
        "eth.src": 0x020000000001,
        "eth.dst": 0x020000000002,
        "eth.type": 0x0800,
        "ipv4.src": src,
        "ipv4.dst": dst,
        "ipv4.proto": proto,
        "ipv4.ttl": 64,
        "ipv4.tos": 0,
        "l4.sport": sport,
        "l4.dport": dport,
    }
    if extra:
        fields.update(extra)
    return Packet(fields=fields, size_bytes=size_bytes)
