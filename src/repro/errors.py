"""Exception hierarchy shared across the Pipeleon reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IrError(ReproError):
    """Malformed or inconsistent program IR."""


class ValidationError(IrError):
    """Program failed structural validation.

    Carries the full list of problems so callers can report all of them
    at once instead of fixing one at a time.
    """

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


class DependencyError(ReproError):
    """A transformation would violate table dependencies."""


class TransformError(ReproError):
    """A program transformation could not be applied."""


class ControlPlaneError(ReproError):
    """Invalid control-plane operation (unknown table, full table, ...)."""


class TableFullError(ControlPlaneError):
    """Entry insertion rejected because the table is at capacity."""


class UnknownTableError(ControlPlaneError):
    """Operation addressed a table that does not exist."""


class UnknownEntryError(ControlPlaneError):
    """Operation addressed an entry id that does not exist."""


class SearchError(ReproError):
    """Optimization search was given inconsistent inputs."""


class EmulationError(ReproError):
    """The emulator hit an inconsistent runtime state."""


class CalibrationError(ReproError):
    """Cost-model calibration failed (not enough points, singular fit...)."""
