"""The Agilio CX packet-routing case study (§5.3.2, Figure 11b).

Follows the DASH pipeline's main functionality: "direction lookup,
metadata setup including appliance ID, ENI, and VNI, connection
tracking, three levels of ACLs, and routing". Connection tracking
changes per-flow behaviour, so the program is marked incompatible with
Netronome's native whole-program flow cache (the paper disables it).
"""

from __future__ import annotations

from repro.ir.actions import (
    Action,
    Param,
    drop_action,
    noop_action,
    prim,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.entries import (
    ExactValue,
    LpmValue,
    TableEntry,
    TernaryValue,
)
from repro.ir.program import Program
from repro.ir.tables import MatchType
from repro.nic.packet import ipv4

#: The "small and static" front tables that Pipeleon merges (§5.3.2).
METADATA_TABLES = ("direction_lookup", "appliance_id", "eni", "vni")

ACL_TABLES = ("acl_level1", "acl_level2", "acl_level3")


def build_program() -> Program:
    builder = ProgramBuilder("dash_routing")
    names: list[str] = []

    builder.table(
        "direction_lookup",
        ["eth.type"],
        [
            Action(
                "set_outbound",
                (prim("set_field", "meta.direction", 1),),
            ),
            Action(
                "set_inbound",
                (prim("set_field", "meta.direction", 2),),
            ),
        ],
        default_action="set_inbound",
        size=8,
    )
    builder.table(
        "appliance_id",
        ["vlan.id"],
        [
            Action(
                "set_appliance",
                (prim("set_field", "meta.appliance_id", Param(0)),),
            ),
            noop_action("appliance_miss"),
        ],
        default_action="appliance_miss",
        size=16,
    )
    builder.table(
        "eni",
        ["eth.src"],
        [
            Action(
                "set_eni",
                (prim("set_field", "meta.eni_id", Param(0)),),
            ),
            noop_action("eni_miss"),
        ],
        default_action="eni_miss",
        size=64,
    )
    builder.table(
        "vni",
        ["vxlan.vni"],
        [
            Action(
                "set_vni",
                (prim("set_field", "meta.vni", Param(0)),),
            ),
            noop_action("vni_miss"),
        ],
        default_action="vni_miss",
        size=64,
    )
    names.extend(METADATA_TABLES)

    builder.table(
        "conntrack",
        ["ipv4.src", "ipv4.dst", "l4.sport", "l4.dport"],
        [
            Action(
                "track_hit",
                (prim("set_field", "meta.conn_state", 1),),
            ),
            Action(
                "track_new",
                (prim("set_field", "meta.conn_state", 2),),
            ),
        ],
        default_action="track_new",
        size=262144,
        annotations={"stateful": True},
    )
    names.append("conntrack")

    # DASH ACLs are prefix/mask rule sets -> ternary keys, which cost
    # one probe per distinct mask on BlueField-style targets.
    for name, field in zip(
        ACL_TABLES, ("ipv4.src", "ipv4.dst", "l4.dport")
    ):
        builder.table(
            name,
            [(field, MatchType.TERNARY)],
            [drop_action(f"{name}_deny"), noop_action(f"{name}_permit")],
            default_action=f"{name}_permit",
            annotations={"role": "acl"},
            size=4096,
        )
        names.append(name)

    builder.table(
        "routing",
        [("ipv4.dst", MatchType.LPM)],
        [
            Action(
                "route",
                (
                    prim("set_field", "eth.dst", Param(0)),
                    prim("add_to_field", "ipv4.ttl", -1),
                    prim("forward", Param(1)),
                ),
            ),
            drop_action("route_miss_drop"),
        ],
        default_action="route_miss_drop",
        size=16384,
    )
    names.append("routing")
    builder.chain(names)
    program = builder.build(root=names[0])
    # Connection tracking breaks whole-program flow caching (§5.3.2).
    program.metadata["native_cache_compatible"] = False
    return program


def install_base_entries(control_plane, n_routes: int = 32) -> None:
    control_plane.insert_entry(
        "direction_lookup",
        TableEntry((ExactValue(0x0800),), "set_outbound"),
    )
    control_plane.insert_entry(
        "appliance_id", TableEntry((ExactValue(0),), "set_appliance", (42,))
    )
    control_plane.insert_entry(
        "eni",
        TableEntry((ExactValue(0x020000000001),), "set_eni", (7,)),
    )
    control_plane.insert_entry(
        "vni", TableEntry((ExactValue(0),), "set_vni", (1000,))
    )
    for name, deny in zip(
        ACL_TABLES, (ipv4(10, 66, 0, 1), ipv4(192, 168, 66, 1), 6666)
    ):
        control_plane.insert_entry(
            name,
            TableEntry(
                (TernaryValue(deny, 0xFFFFFFFF),),
                f"{name}_deny",
                priority=10,
            ),
        )
        # Additional mask groups (realistic rule sets mix prefix
        # widths); these permit, so they only affect the probe count.
        for i, mask in enumerate((0xFFFFFF00, 0xFFFF0000, 0xFF000000)):
            control_plane.insert_entry(
                name,
                TableEntry(
                    (TernaryValue(deny & mask, mask),),
                    f"{name}_permit",
                    priority=i,
                ),
            )
    for i in range(n_routes):
        control_plane.insert_entry(
            "routing",
            TableEntry(
                (LpmValue(ipv4(192, 168, i, 0), 24),),
                "route",
                (0x020000000100 + i, i % 8),
            ),
        )
    # A default route so generic traffic is forwarded, not dropped.
    control_plane.insert_entry(
        "routing",
        TableEntry((LpmValue(0, 0),), "route", (0x02FFFFFFFFFF, 0)),
    )
