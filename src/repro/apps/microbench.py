"""Microbenchmark programs (§5.2.1, Figure 9).

The paper constructs microbenchmarks from "pipelets with four tables,
replicated with a scale factor N". Three variants:

* reorder benchmark — a chain of exact tables with one freely-movable
  ACL table whose position is the swept parameter (Fig. 9a/9b);
* caching benchmark — replicas of a four-ternary-table pipelet, each
  table matching a different five-tuple field (Fig. 9c);
* merging benchmark — replicas of a four-small-exact-table pipelet
  (Fig. 9d).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import IrError
from repro.ir.actions import drop_action, noop_action
from repro.ir.builder import ProgramBuilder
from repro.ir.entries import ExactValue, TableEntry, TernaryValue
from repro.ir.program import Program
from repro.ir.tables import MatchType

ACL_FIELD = "l4.dport"
#: Destination port whose packets the benchmark ACL drops.
DENY_PORT = 6666

#: The four distinct match fields of the caching/merging pipelet.
PIPELET_FIELDS = ("ipv4.src", "ipv4.dst", "l4.sport", "l4.dport")


def reorder_benchmark_program(
    n_tables: int = 22,
    acl_position: int = 21,
    n_actions: int = 2,
    n_primitives: int = 1,
) -> Program:
    """A chain of exact tables with an ACL at ``acl_position``.

    The ACL matches on a field no other table reads or writes, so it has
    no dependencies and can sit anywhere (0 = front).
    """
    if not 0 <= acl_position < n_tables:
        raise IrError(
            f"acl_position {acl_position} out of range [0, {n_tables})"
        )
    builder = ProgramBuilder(f"reorder_bench_{acl_position}")
    names: list[str] = []
    regular_index = 0
    for position in range(n_tables):
        if position == acl_position:
            name = "acl"
            builder.table(
                name,
                [ACL_FIELD],
                [drop_action("acl_deny"), noop_action("acl_permit")],
                default_action="acl_permit",
                annotations={"role": "acl"},
            )
        else:
            name = f"t{regular_index}"
            regular_index += 1
            builder.table(
                name,
                [f"ipv4.f{regular_index}"],
                [
                    noop_action(f"{name}_a{j}", n_primitives)
                    for j in range(n_actions)
                ],
            )
        names.append(name)
    builder.chain(names)
    return builder.build(root=names[0])


def install_acl_deny_entry(
    control_plane, deny_port: int = DENY_PORT, table: str = "acl"
) -> int:
    """Install the drop rule the benchmark traffic mixes against."""
    return control_plane.insert_entry(
        table,
        TableEntry((ExactValue(deny_port),), "acl_deny"),
    )


def pipelet_benchmark_program(
    n_copies: int = 1,
    match_type: MatchType = MatchType.TERNARY,
    n_actions: int = 2,
    n_primitives: int = 1,
    table_size: int = 65536,
) -> Program:
    """N replicas of the four-table pipelet (caching/merging benchmark).

    Tables within a replica match different five-tuple fields, so a
    single cache over them needs the cross product of their keys — the
    setting of Fig. 9c's [1,2,3,4] discussion.
    """
    builder = ProgramBuilder(f"pipelet_bench_{match_type.value}")
    names: list[str] = []
    for copy in range(n_copies):
        for i, field in enumerate(PIPELET_FIELDS):
            name = f"p{copy}_t{i + 1}"
            builder.table(
                name,
                [(field, match_type)],
                [
                    noop_action(f"{name}_a{j}", n_primitives)
                    for j in range(n_actions)
                ],
                size=table_size,
            )
            names.append(name)
    builder.chain(names)
    return builder.build(root=names[0])


def pipelet_tables(program: Program, copy: int = 0) -> list[str]:
    """Names of one replica's four tables, in order."""
    return [f"p{copy}_t{i}" for i in range(1, 5)]


def install_ternary_mask_entries(
    control_plane,
    program: Program,
    n_masks: int = 8,
) -> None:
    """Give each ternary table ``n_masks`` distinct masks (sets its m)."""
    for table in program.plain_tables():
        if table.worst_match_type is not MatchType.TERNARY:
            continue
        action = next(iter(table.actions))
        for i in range(n_masks):
            control_plane.insert_entry(
                table.name,
                TableEntry(
                    (TernaryValue(i + 1, 0x3F << (2 * i)),),
                    action,
                    priority=i,
                ),
            )


def install_small_exact_entries(
    control_plane,
    program: Program,
    values: Sequence[int] = (1, 2, 3),
    action_index: int = 0,
) -> None:
    """A few static exact entries per table (the merging workload)."""
    for table in program.plain_tables():
        if table.worst_match_type is not MatchType.EXACT:
            continue
        if len(table.keys) != 1:
            continue
        action = list(table.actions)[action_index]
        for value in values:
            control_plane.insert_entry(
                table.name,
                TableEntry((ExactValue(value),), action),
            )
