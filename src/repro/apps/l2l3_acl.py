"""A PISCES-style L2/L3/ACL program (used by the NF composition study).

Smac learning check, dmac switching, an IPv4 LPM route step and an ACL,
with a conditional choosing the L2 or L3 path on ethertype.
"""

from __future__ import annotations

from repro.ir.actions import (
    Action,
    Param,
    drop_action,
    noop_action,
    prim,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.conditionals import Condition
from repro.ir.entries import ExactValue, LpmValue, TableEntry
from repro.ir.program import Program
from repro.ir.tables import MatchType
from repro.nic.packet import ipv4


def build_program(prefix: str = "l2l3") -> Program:
    builder = ProgramBuilder(prefix)
    smac = f"{prefix}_smac"
    is_ip = f"{prefix}_is_ipv4"
    dmac = f"{prefix}_dmac"
    route = f"{prefix}_route"
    acl = f"{prefix}_acl"

    builder.table(
        smac,
        ["eth.src"],
        [noop_action("smac_known"), noop_action("smac_learn", 2)],
        default_action="smac_learn",
    )
    builder.conditional(
        is_ip,
        Condition("eth.type", "eq", 0x0800),
        true_next=route,
        false_next=dmac,
    )
    builder.table(
        dmac,
        ["eth.dst"],
        [
            Action("l2_forward", (prim("forward", Param(0)),)),
            drop_action("l2_miss_drop"),
        ],
        default_action="l2_miss_drop",
        next_node=acl,
    )
    builder.table(
        route,
        [("ipv4.dst", MatchType.LPM)],
        [
            Action(
                "set_nhop",
                (
                    prim("set_field", "eth.dst", Param(0)),
                    prim("add_to_field", "ipv4.ttl", -1),
                    prim("forward", Param(1)),
                ),
            ),
            drop_action("route_miss"),
        ],
        default_action="route_miss",
        next_node=acl,
    )
    builder.table(
        acl,
        ["l4.dport"],
        [drop_action("acl_deny"), noop_action("acl_permit")],
        default_action="acl_permit",
        annotations={"role": "acl"},
    )
    builder.chain([smac, is_ip])
    return builder.build(root=smac)


def install_base_entries(
    control_plane, prefix: str = "l2l3", n_routes: int = 16
) -> None:
    control_plane.insert_entry(
        f"{prefix}_smac",
        TableEntry((ExactValue(0x020000000001),), "smac_known"),
    )
    control_plane.insert_entry(
        f"{prefix}_dmac",
        TableEntry((ExactValue(0x020000000002),), "l2_forward", (3,)),
    )
    for i in range(n_routes):
        control_plane.insert_entry(
            f"{prefix}_route",
            TableEntry(
                (LpmValue(ipv4(192, 168, i, 0), 24),),
                "set_nhop",
                (0x020000000200 + i, i % 4),
            ),
        )
    control_plane.insert_entry(
        f"{prefix}_route",
        TableEntry((LpmValue(0, 0),), "set_nhop", (0x02FFFFFFFF00, 0)),
    )
    control_plane.insert_entry(
        f"{prefix}_acl",
        TableEntry((ExactValue(6666),), "acl_deny"),
    )
