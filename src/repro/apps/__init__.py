"""Evaluation programs: the P4 pipelines the paper's experiments use."""

from repro.apps import (
    acl_chain,
    calibration_suite,
    dash_routing,
    l2l3_acl,
    load_balancer,
    microbench,
    migration,
    nf_composition,
)

__all__ = [
    "acl_chain",
    "calibration_suite",
    "dash_routing",
    "l2l3_acl",
    "load_balancer",
    "microbench",
    "migration",
    "nf_composition",
]
