"""Evaluation programs: the P4 pipelines the paper's experiments use."""

from repro.apps import (
    acl_chain,
    calibration_suite,
    dash_routing,
    l2l3_acl,
    load_balancer,
    microbench,
    migration,
    nf_composition,
)

#: The five example applications with base table entries, as
#: ``name -> (build_program, install_entries)``. ``install_entries``
#: takes a :class:`~repro.nic.ControlPlane` for the built program.
#: Consumers: the ``replay`` CLI subcommand, the differential sharding
#: suite and the throughput benchmarks.
EXAMPLE_APPS = {
    "l2l3_acl": (l2l3_acl.build_program, l2l3_acl.install_base_entries),
    "acl_chain": (acl_chain.build_program, acl_chain.install_acl_entries),
    "dash_routing": (
        dash_routing.build_program,
        dash_routing.install_base_entries,
    ),
    "load_balancer": (
        load_balancer.build_program,
        load_balancer.install_base_entries,
    ),
    "nf_composition": (
        nf_composition.build_program,
        nf_composition.install_base_entries,
    ),
}

__all__ = [
    "EXAMPLE_APPS",
    "acl_chain",
    "calibration_suite",
    "dash_routing",
    "l2l3_acl",
    "load_balancer",
    "microbench",
    "migration",
    "nf_composition",
]
