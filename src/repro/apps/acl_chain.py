"""The Figure 2 motivating program: an ACL cascade then routing.

"a P4 program which starts with multiple access control list (ACL)
tables, then a few regular packet processing tables (not shown), and
ends with a routing table." The four ACL levels mirror the figure:
Cloud, Tenant, Subnet, VM.
"""

from __future__ import annotations

from repro.ir.actions import drop_action, noop_action
from repro.ir.builder import ProgramBuilder
from repro.ir.entries import TableEntry, TernaryValue
from repro.ir.program import Program
from repro.ir.tables import MatchType

#: (table name, match field, deny value) per ACL level. Each level
#: matches a different header field so the levels are reorderable.
ACL_LEVELS = (
    ("acl_cloud", "ipv4.tos", 1),
    ("acl_tenant", "vlan.id", 7),
    ("acl_subnet", "ipv4.src", 0x0A0A0A0A),
    ("acl_vm", "ipv4.dst", 0xC0A80101),
)

REGULAR_TABLES = 4


def build_program(n_regular: int = REGULAR_TABLES) -> Program:
    builder = ProgramBuilder("acl_chain")
    names: list[str] = []
    for name, field, _deny in ACL_LEVELS:
        # ACL rule sets mix masks, so the tables are ternary; each
        # distinct mask costs one memory probe on BlueField-style NICs.
        builder.table(
            name,
            [(field, MatchType.TERNARY)],
            [drop_action(f"{name}_deny"), noop_action(f"{name}_permit")],
            default_action=f"{name}_permit",
            annotations={"role": "acl"},
        )
        names.append(name)
    for i in range(n_regular):
        name = f"proc{i}"
        builder.table(
            name,
            [f"ipv4.reg{i}"],
            [noop_action(f"{name}_a0"), noop_action(f"{name}_a1")],
        )
        names.append(name)
    builder.table(
        "routing",
        ["ipv4.dst"],
        [
            noop_action("route_set_nhop", 2),
            noop_action("route_default"),
        ],
        default_action="route_default",
    )
    names.append("routing")
    builder.chain(names)
    return builder.build(root=names[0])


def install_acl_entries(control_plane, n_masks: int = 4) -> None:
    """Deny rules plus mask diversity (traffic mix decides drop rates).

    The exact-mask rule drops; the wider-mask rows permit, existing only
    to give the rule set its realistic multi-mask probe count.
    """
    for name, _field, deny in ACL_LEVELS:
        control_plane.insert_entry(
            name,
            TableEntry(
                (TernaryValue(deny, 0xFFFFFFFF),),
                f"{name}_deny",
                priority=100,
            ),
        )
        masks = (0xFFFFFF00, 0xFFFF0000, 0xFF000000)
        for i, mask in enumerate(masks[: max(0, n_masks - 1)]):
            control_plane.insert_entry(
                name,
                TableEntry(
                    (TernaryValue(deny & mask, mask),),
                    f"{name}_permit",
                    priority=i,
                ),
            )


def acl_table_names() -> list[str]:
    return [name for name, _f, _d in ACL_LEVELS]
