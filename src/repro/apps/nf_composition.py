"""Network-function composition (§5.3.3, Figure 11c).

Composes a load balancer, a DASH-style routing function, and the
L2/L3/ACL program behind ToS-based steering conditionals, yielding nine
pipelets. Evaluated on the EMULATED_NIC model where LPM/ternary cost 3x
an exact match and branches 1/10 of an exact table.
"""

from __future__ import annotations

from repro.ir.actions import (
    Action,
    Param,
    drop_action,
    noop_action,
    prim,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.conditionals import Condition
from repro.ir.entries import ExactValue, LpmValue, TableEntry
from repro.ir.program import Program
from repro.ir.tables import MatchType
from repro.nic.packet import ipv4

#: ToS values steering traffic to each network function.
TOS_LB = 1
TOS_ROUTING = 2  # anything else goes to the L2/L3 function


def build_program() -> Program:
    builder = ProgramBuilder("nf_composition")

    # Steering.
    builder.conditional(
        "steer_lb",
        Condition("ipv4.tos", "eq", TOS_LB),
        true_next="nf1_proc0",
        false_next="steer_routing",
    )
    builder.conditional(
        "steer_routing",
        Condition("ipv4.tos", "eq", TOS_ROUTING),
        true_next="nf2_direction",
        false_next="nf3_smac",
    )

    # NF1: load balancer (regular processing, VIP/backends, ACL).
    nf1_names = []
    for i in range(4):
        name = f"nf1_proc{i}"
        builder.table(
            name,
            [f"ipv4.reg{i}"],
            [noop_action(f"{name}_a0"), noop_action(f"{name}_a1")],
        )
        nf1_names.append(name)
    builder.table(
        "nf1_vip",
        ["ipv4.dst"],
        [
            Action(
                "vip_hit",
                (prim("set_field", "meta.vip_id", Param(0)),),
            ),
            noop_action("vip_miss"),
        ],
        default_action="vip_miss",
    )
    builder.table(
        "nf1_backend",
        ["ipv4.dst", "l4.sport"],
        [
            Action(
                "pick_backend",
                (prim("set_field", "ipv4.dst", Param(0)),),
            ),
            noop_action("no_backend"),
        ],
        default_action="no_backend",
        size=65536,
    )
    builder.table(
        "nf1_acl",
        ["l4.dport"],
        [drop_action("nf1_acl_deny"), noop_action("nf1_acl_permit")],
        default_action="nf1_acl_permit",
        annotations={"role": "acl"},
    )
    nf1_names += ["nf1_vip", "nf1_backend", "nf1_acl"]
    builder.chain(nf1_names)

    # NF2: DASH-style routing (metadata setup, ACLs, LPM route).
    builder.table(
        "nf2_direction",
        ["eth.type"],
        [
            Action(
                "outbound", (prim("set_field", "meta.direction", 1),)
            ),
            Action(
                "inbound", (prim("set_field", "meta.direction", 2),)
            ),
        ],
        default_action="inbound",
        size=8,
    )
    builder.table(
        "nf2_eni",
        ["eth.src"],
        [
            Action("set_eni", (prim("set_field", "meta.eni_id", Param(0)),)),
            noop_action("eni_miss"),
        ],
        default_action="eni_miss",
        size=64,
    )
    builder.table(
        "nf2_acl1",
        ["ipv4.src"],
        [drop_action("nf2_acl1_deny"), noop_action("nf2_acl1_permit")],
        default_action="nf2_acl1_permit",
        annotations={"role": "acl"},
    )
    builder.table(
        "nf2_acl2",
        ["l4.dport"],
        [drop_action("nf2_acl2_deny"), noop_action("nf2_acl2_permit")],
        default_action="nf2_acl2_permit",
        annotations={"role": "acl"},
    )
    builder.table(
        "nf2_routing",
        [("ipv4.dst", MatchType.LPM)],
        [
            Action(
                "route",
                (
                    prim("set_field", "eth.dst", Param(0)),
                    prim("add_to_field", "ipv4.ttl", -1),
                    prim("forward", Param(1)),
                ),
            ),
            drop_action("nf2_route_miss"),
        ],
        default_action="nf2_route_miss",
        size=16384,
    )
    builder.chain(
        ["nf2_direction", "nf2_eni", "nf2_acl1", "nf2_acl2",
         "nf2_routing"]
    )

    # NF3: L2/L3 with an internal branch.
    builder.table(
        "nf3_smac",
        ["eth.src"],
        [noop_action("smac_known"), noop_action("smac_learn", 2)],
        default_action="smac_learn",
    )
    builder.conditional(
        "nf3_is_ipv4",
        Condition("eth.type", "eq", 0x0800),
        true_next="nf3_route",
        false_next="nf3_dmac",
    )
    builder.table(
        "nf3_dmac",
        ["eth.dst"],
        [
            Action("l2_forward", (prim("forward", Param(0)),)),
            drop_action("l2_miss"),
        ],
        default_action="l2_miss",
        next_node="nf3_acl",
    )
    builder.table(
        "nf3_route",
        [("ipv4.dst", MatchType.LPM)],
        [
            Action(
                "set_nhop",
                (
                    prim("set_field", "eth.dst", Param(0)),
                    prim("forward", Param(1)),
                ),
            ),
            drop_action("nf3_route_miss"),
        ],
        default_action="nf3_route_miss",
        next_node="nf3_acl",
    )
    builder.table(
        "nf3_acl",
        ["l4.sport"],
        [drop_action("nf3_acl_deny"), noop_action("nf3_acl_permit")],
        default_action="nf3_acl_permit",
        annotations={"role": "acl"},
    )
    builder.chain(["nf3_smac", "nf3_is_ipv4"])
    return builder.build(root="steer_lb")


def install_base_entries(control_plane) -> None:
    control_plane.insert_entry(
        "nf1_vip",
        TableEntry((ExactValue(ipv4(10, 200, 0, 1)),), "vip_hit", (1,)),
    )
    for i in range(8):
        control_plane.insert_entry(
            "nf1_backend",
            TableEntry(
                (ExactValue(ipv4(10, 200, 0, 1)), ExactValue(1024 + i)),
                "pick_backend",
                (ipv4(10, 0, 1, i + 1),),
            ),
        )
    control_plane.insert_entry(
        "nf1_acl", TableEntry((ExactValue(6666),), "nf1_acl_deny")
    )
    control_plane.insert_entry(
        "nf2_direction", TableEntry((ExactValue(0x0800),), "outbound")
    )
    control_plane.insert_entry(
        "nf2_eni",
        TableEntry((ExactValue(0x020000000001),), "set_eni", (7,)),
    )
    control_plane.insert_entry(
        "nf2_acl1",
        TableEntry((ExactValue(ipv4(10, 66, 0, 1)),), "nf2_acl1_deny"),
    )
    control_plane.insert_entry(
        "nf2_acl2", TableEntry((ExactValue(6666),), "nf2_acl2_deny")
    )
    control_plane.insert_entry(
        "nf2_routing",
        TableEntry((LpmValue(0, 0),), "route", (0x02FFFFFFFF00, 0)),
    )
    control_plane.insert_entry(
        "nf3_smac",
        TableEntry((ExactValue(0x020000000001),), "smac_known"),
    )
    control_plane.insert_entry(
        "nf3_dmac",
        TableEntry((ExactValue(0x020000000002),), "l2_forward", (3,)),
    )
    control_plane.insert_entry(
        "nf3_route",
        TableEntry((LpmValue(0, 0),), "set_nhop", (0x02FFFFFFFF00, 1)),
    )
    control_plane.insert_entry(
        "nf3_acl", TableEntry((ExactValue(7777),), "nf3_acl_deny")
    )
