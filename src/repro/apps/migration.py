"""Interleaved supported/unsupported program (§A.2, Figure 17).

"a program with two types of tables. One type is fully supported by the
ASIC cores while the other requires CPU cores for unsupported actions.
They are interlaced with each other, so a naive partition [...] will
lead to multiple times of packet migration."
"""

from __future__ import annotations

from repro.core.transform import apply_copies, apply_partition
from repro.ir.actions import noop_action
from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program
from repro.ir.tables import Pipeline


def build_program(n_pairs: int = 4) -> Program:
    """A chain asic0 cpu0 asic1 cpu1 ... (before partitioning)."""
    builder = ProgramBuilder("migration_bench")
    names: list[str] = []
    for i in range(n_pairs):
        asic_name = f"asic{i}"
        builder.table(
            asic_name,
            [f"ipv4.fa{i}"],
            [noop_action(f"{asic_name}_a0"), noop_action(f"{asic_name}_a1")],
        )
        names.append(asic_name)
        cpu_name = f"cpu{i}"
        builder.table(
            cpu_name,
            [f"ipv4.fc{i}"],
            [
                noop_action(f"{cpu_name}_a0", 2),
                noop_action(f"{cpu_name}_a1", 2),
            ],
            annotations={"asic_unsupported": True},
        )
        names.append(cpu_name)
    builder.chain(names)
    return builder.build(root=names[0])


def naive_assignments(program: Program) -> dict[str, Pipeline]:
    """ASIC-supported tables on ASIC, the rest on CPU (the naive split)."""
    return {
        table.name: (
            Pipeline.CPU
            if table.annotations.get("asic_unsupported")
            else Pipeline.ASIC
        )
        for table in program.tables()
    }


def asic_only_program(n_pairs: int = 4) -> Program:
    """The path taken by traffic that needs no software processing."""
    builder = ProgramBuilder("migration_bench_asic")
    names = []
    for i in range(n_pairs):
        name = f"asic{i}"
        builder.table(
            name,
            [f"ipv4.fa{i}"],
            [noop_action(f"{name}_a0"), noop_action(f"{name}_a1")],
        )
        names.append(name)
    builder.chain(names)
    return builder.build(root=names[0])


def partitioned_program(
    n_pairs: int = 4, n_copies: int = 0
) -> Program:
    """Build, copy the first ``n_copies`` ASIC tables to CPU, partition.

    Copying ``asic1..asicK`` (the tables *between* CPU tables) lets
    software-bound packets stay on the CPU instead of bouncing back,
    which is exactly Figure 17's swept parameter.
    """
    program = build_program(n_pairs)
    assignments = naive_assignments(program)
    for name, pipeline in assignments.items():
        program.node(name).pipeline = pipeline
    # Tables worth copying are the ASIC tables sandwiched between CPU
    # tables: asic1 .. asic{n_pairs-1}; copying asic0 alone cannot
    # remove a migration (the paper's "copying only one table" remark).
    copy_order = [f"asic{i}" for i in range(1, n_pairs)]
    to_copy = copy_order[:n_copies]
    result = apply_copies(program, to_copy, Pipeline.CPU)
    result = apply_partition(result.program, {})
    return result.program
