"""Calibration-suite programs (§3.1): re-exported builders.

The calibration benchmarking suite sweeps chain programs over length,
action-primitive count, and match type; the builders live next to the
fitting code in :mod:`repro.core.calibration` and the generic
:func:`repro.ir.builder.linear_program`. This module gives them the
home the system inventory (DESIGN.md) names.
"""

from repro.core.calibration import (
    CalibrationPoint,
    measure_throughput,
    run_suite,
)
from repro.ir.builder import linear_program

__all__ = [
    "CalibrationPoint",
    "linear_program",
    "measure_throughput",
    "run_suite",
]
